"""Extension experiment: union sampling over a cyclic join (§8.2).

The paper's evaluation skips cyclic workloads (the cyclic machinery is
inherited from Zhao et al.); this extension exercises it anyway: a union of
the Fig.-1-style cyclic self-join query and an equivalent acyclic denormalized
query, sampled with Algorithm 1 under exact and histogram parameters.
"""

from repro.core.union_sampler import SetUnionSampler
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.experiments.reporting import SeriesTable
from repro.tpch.cyclic import build_cyclic_bundle_workload


def _run(config, sample_size: int = 100) -> SeriesTable:
    workload = build_cyclic_bundle_workload(
        scale_factor=config.scale_factor,
        overlap_scale=config.default_overlap,
        seed=config.seed,
    )
    table = SeriesTable(title="Extension: cyclic-join union sampling", x_label="warmup")
    for label, estimator in (
        ("full-join", FullJoinUnionEstimator(workload.queries)),
        ("histogram+EW", HistogramUnionEstimator(workload.queries, join_size_method="ew")),
    ):
        sampler = SetUnionSampler(workload.queries, estimator, seed=config.seed)
        result = sampler.sample(sample_size)
        table.add_row(
            label,
            union_size_estimate=sampler.parameters.union_size,
            accepted=result.stats.accepted,
            duplicate_rejections=result.stats.rejected_duplicate,
            warmup_seconds=result.stats.warmup_seconds,
            sampling_seconds=result.stats.sampling_seconds,
        )
    return table


def test_cyclic_union_sampling(benchmark, config, record_table):
    table = benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)
    record_table(table)
    rows = {row["warmup"]: row for row in table.rows}
    assert rows["full-join"]["accepted"] >= 100
    assert rows["histogram+EW"]["accepted"] >= 100
    # The histogram warm-up must be cheaper than executing the full cyclic join.
    assert rows["histogram+EW"]["warmup_seconds"] <= rows["full-join"]["warmup_seconds"]
