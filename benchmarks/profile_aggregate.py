#!/usr/bin/env python
"""cProfile the aggregate hot path; keep the top-25 cumulative profile.

Profiles the full columnar pipeline — ``JoinSampler.sample_block`` (alias
draws over the CSR plans) feeding ``AggregateAccumulator.ingest_block`` —
on the UQ1 SUM workload, and writes the top-25 cumulative-time functions to
``benchmarks/profiles/aggregate_hotpath.txt`` (plus the raw ``.prof`` dump
for ``snakeviz``/``pstats`` drill-downs).  This is the artifact to diff when
a change claims to move the hot path; see docs/performance.md.

Run via ``make profile`` or::

    PYTHONPATH=src python benchmarks/profile_aggregate.py
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path

from common import uq1_workload

from repro.aqp import AggregateAccumulator, AggregateSpec  # noqa: E402
from repro.sampling.blocks import SampleBlock  # noqa: E402
from repro.sampling.join_sampler import JoinSampler  # noqa: E402

PROFILE_DIR = Path(__file__).resolve().parent / "profiles"
BATCH = 4096
ROUNDS = 60
TOP = 25


def aggregate_hot_path() -> int:
    """The loop under profile: draw blocks, ingest columns, estimate once."""
    query = uq1_workload().queries[0]
    spec = AggregateSpec("sum", attribute="totalprice")
    sampler = JoinSampler(query, weights="ew", seed=1)
    accumulator = AggregateAccumulator(spec, query.output_schema)
    total_weight = sampler.weight_function.total_weight
    accepted = 0
    for _ in range(ROUNDS):
        before = sampler.stats.attempts
        blocks = [sampler.sample_block(BATCH)]
        blocks.extend(sampler.pop_buffered_blocks())
        block = SampleBlock.concat(blocks)
        accumulator.ingest_block(
            block.value_columns(query),
            attempts=sampler.stats.attempts - before,
            weight=total_weight,
        )
        accepted += len(block)
    accumulator.estimate()
    return accepted


def main() -> None:
    PROFILE_DIR.mkdir(exist_ok=True)
    profiler = cProfile.Profile()
    accepted = profiler.runcall(aggregate_hot_path)

    raw_path = PROFILE_DIR / "aggregate_hotpath.prof"
    profiler.dump_stats(raw_path)

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(TOP)
    text = (
        f"# Aggregate hot path profile: {ROUNDS} x sample_block({BATCH}) -> "
        f"ingest_block on UQ1 SUM(totalprice), {accepted} accepted samples\n"
        f"# Regenerate with: make profile\n\n" + buffer.getvalue()
    )
    text_path = PROFILE_DIR / "aggregate_hotpath.txt"
    text_path.write_text(text, encoding="utf-8")
    print(text)
    print(f"written to {text_path} (raw dump: {raw_path})")


if __name__ == "__main__":
    main()
