#!/usr/bin/env python
"""Soak-gate the overload layer: overhead, 5x offered load, transport chaos.

Three phases, each with a hard pass/fail gate, written to
``BENCH_overload.json`` at the repository root:

**overhead** — the fault-free tax of the overload layer.  The same serial
warm request mix runs in-process against two services over one shared
workload, overload on vs. off, min-of-N walls; the layer (gate admits,
breaker checks, watchdog tickets, health EWMAs) must cost <= 2% end to end.

**offered load** — a client fleet whose instantaneous priced-seconds demand
is ~5x the gate's ``capacity_seconds``.  The server must *degrade, not
collapse*: every rejection is a structured 429/503 carrying ``retry_after``,
``/health`` answers throughout the storm, goodput stays positive — and every
answer that was served concurrently must be **bit-identical** to the same
request re-run sequentially on the quiesced server (purity is what makes
shedding safe: a shed-and-retried request can never see a different answer).

**transport chaos** — deterministic :class:`~repro.server.chaos.ChaosClient`
strikes (resets, slow-writes, oversize, garbage) interleaved with real
clients; the server must survive every strike and drain to exactly zero
inflight work.

Run via ``make bench-overload`` or::

    PYTHONPATH=src python benchmarks/bench_overload.py [--quick]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time

from common import machine_info, uq1_workload, write_report

from repro.resilience import FaultPlan, HTTP_FAULT_KINDS  # noqa: E402
from repro.server import (  # noqa: E402
    ChaosClient,
    OverloadConfig,
    SamplingService,
    ServerClient,
    start_server,
)
from repro.server.protocol import ERROR_CODES  # noqa: E402

#: error codes an overloaded-but-healthy server may answer with
SHED_CODES = ("admission-rejected", "overloaded", "circuit-open")
OVERHEAD_BUDGET = 0.02


def build_requests(query_names, total: int, sample_count: int):
    """Warm, fully-seeded request mix (samples + online aggregates)."""
    requests = []
    for i in range(total):
        name = query_names[i % len(query_names)]
        if i % 4 == 3:
            requests.append({
                "kind": "aggregate", "query": name, "aggregate": "sum",
                "attribute": "totalprice", "rel_error": 0.3,
                "method": "exact-weight", "seed": 3000 + i,
            })
        else:
            requests.append({
                "kind": "sample", "query": name, "count": sample_count,
                "seed": 3000 + i,
            })
    return requests


# ------------------------------------------------------------- phase: overhead
def measure_serial_wall(service, requests) -> float:
    started = time.perf_counter()
    for request in requests:
        response = service.handle(request)
        assert response["ok"], response
    return time.perf_counter() - started


def phase_overhead(workload, requests, repeats: int):
    """Min-of-N serial walls, overload layer on vs. off, same workload."""
    plain = SamplingService(workload=workload, overload=False)
    guarded = SamplingService(workload=workload, overload=True)
    try:
        # One untimed warmup pass each: prototypes and buffers settle.
        measure_serial_wall(plain, requests)
        measure_serial_wall(guarded, requests)
        walls = {"off": [], "on": []}
        for _ in range(repeats):
            walls["off"].append(measure_serial_wall(plain, requests))
            walls["on"].append(measure_serial_wall(guarded, requests))
        best_off, best_on = min(walls["off"]), min(walls["on"])
        overhead = (best_on - best_off) / best_off
        return {
            "requests": len(requests),
            "repeats": repeats,
            "wall_seconds_overload_off": round(best_off, 4),
            "wall_seconds_overload_on": round(best_on, 4),
            "overhead_fraction": round(overhead, 4),
            "budget_fraction": OVERHEAD_BUDGET,
            "within_budget": overhead <= OVERHEAD_BUDGET,
        }
    finally:
        plain.close()
        guarded.close()


# --------------------------------------------------------- phase: offered load
def probe_health(port: int, stop: threading.Event, record):
    """Hammer GET /health for the whole storm; every probe must answer."""
    while not stop.is_set():
        started = time.perf_counter()
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                conn.request("GET", "/health")
                response = conn.getresponse()
                body = json.loads(response.read())
                ok = response.status == 200 and "status" in body.get(
                    "result", {}
                )
            finally:
                conn.close()
        except Exception:  # noqa: BLE001 - a dropped probe fails the gate
            ok = False
        record.append((ok, time.perf_counter() - started))
        stop.wait(0.05)


def phase_offered_load(workload, requests, clients: int):
    """~5x offered load against a tightly-capacitated server."""
    sizing = SamplingService(workload=workload, overload=False,
                             warm_on_start=False)
    try:
        per_request = max(
            sizing.admission.price(
                [workload.query(r["query"])],
                r.get("count", 200),
                warm=True,
            )
            for r in requests if r["kind"] == "sample"
        )
    finally:
        sizing.close()
    # The fleet's instantaneous demand is ~clients * per_request priced
    # seconds; capacity one fifth of that => offered load is 5x capacity.
    config = OverloadConfig(
        capacity_seconds=max(clients * per_request / 5.0, per_request * 1.5),
        backlog_seconds=max(clients * per_request / 10.0, per_request),
        max_queue_wait=0.05,
    )
    service = SamplingService(workload=workload, overload=config)
    server, _ = start_server(service, port=0, connection_timeout=10.0)
    outcomes = [None] * len(requests)
    malformed = []
    transport_retries = [0]
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker():
        # retries=0: a shed must surface raw so the gate can inspect it.
        # Transport-level failures (a TCP reset under the connect storm,
        # before any structured answer exists) are retried here instead —
        # they are kernel weather, not a server-composed rejection, and
        # purity makes the replay safe.
        client = ServerClient(port=server.port)
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] += 1
            for attempt in range(4):
                try:
                    outcomes[index] = ("ok", client.call(requests[index]))
                except (ConnectionError, TimeoutError, OSError) as error:
                    if attempt == 3:
                        malformed.append((index, repr(error), None))
                        outcomes[index] = ("error", repr(error))
                        break
                    with lock:
                        transport_retries[0] += 1
                    time.sleep(0.01 * (attempt + 1))
                    continue
                except Exception as error:  # noqa: BLE001 - gated below
                    code = getattr(error, "code", None)
                    retry_after = getattr(error, "retry_after", None)
                    if code in SHED_CODES:
                        if retry_after is None or retry_after < 1:
                            malformed.append(
                                (index, "missing retry_after", code)
                            )
                        if ERROR_CODES[code] not in (429, 503):
                            malformed.append((index, "wrong status", code))
                        outcomes[index] = ("shed", code)
                    else:
                        malformed.append((index, repr(error), code))
                        outcomes[index] = ("error", repr(error))
                    break
                else:
                    break

    stop = threading.Event()
    health_record = []
    prober = threading.Thread(
        target=probe_health, args=(server.port, stop, health_record)
    )
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    wall_started = time.perf_counter()
    prober.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    stop.set()
    prober.join()

    served = sum(1 for o in outcomes if o and o[0] == "ok")
    shed = sum(1 for o in outcomes if o and o[0] == "shed")
    health_ok = all(ok for ok, _ in health_record) and bool(health_record)
    health_p99 = (sorted(l for _, l in health_record)
                  [max(int(0.99 * (len(health_record) - 1)), 0)]
                  if health_record else None)

    # Quiesce, then replay every concurrently-served request sequentially:
    # purity demands bit-identical answers on the unchanged snapshot.
    stats = service.handle({"kind": "stats"})["result"]
    drained = (
        stats["admission"]["inflight"] == 0
        and stats["admission"]["inflight_seconds"] == 0.0
        and stats["overload"]["reserved_seconds"] == 0.0
        and stats["overload"]["queued_seconds"] == 0.0
    )
    replay_client = ServerClient(port=server.port, retries=4, max_retry_after=1.0)
    replays_identical = True
    for index, outcome in enumerate(outcomes):
        if not outcome or outcome[0] != "ok":
            continue
        if replay_client.call(requests[index]) != outcome[1]:
            replays_identical = False
            malformed.append((index, "replay diverged", None))
    server.shutdown()
    service.close()
    return {
        "clients": clients,
        "requests": len(requests),
        "capacity_seconds": round(config.capacity_seconds, 6),
        "per_request_priced_seconds": round(per_request, 6),
        "offered_to_capacity_ratio": round(
            clients * per_request / config.capacity_seconds, 2
        ),
        "wall_seconds": round(wall, 3),
        "served": served,
        "shed": shed,
        "transport_retries": transport_retries[0],
        "malformed": malformed[:10],
        "health_probes": len(health_record),
        "health_p99_ms": (round(health_p99 * 1e3, 2)
                          if health_p99 is not None else None),
        "server_state_seen": stats["overload"]["state"],
        "gates": {
            "goodput_positive": served > 0,
            "server_actually_shed": shed > 0,
            "all_rejections_structured": not malformed,
            "health_served_throughout": health_ok,
            "drained_to_zero": drained,
            "served_bit_identical_to_sequential": replays_identical,
        },
    }


# -------------------------------------------------------- phase: transport chaos
def phase_transport_chaos(workload, requests, strikes: int):
    service = SamplingService(workload=workload)
    server, _ = start_server(service, port=0, connection_timeout=0.75)
    errors = []

    def client_worker(offset):
        client = ServerClient(port=server.port, retries=2, retry_seed=offset,
                              max_retry_after=0.2)
        for request in requests[offset::2]:
            try:
                client.call(request)
            except Exception as error:  # noqa: BLE001 - gated below
                if getattr(error, "code", None) not in SHED_CODES:
                    errors.append(repr(error))

    chaos = ChaosClient(
        "127.0.0.1", server.port,
        FaultPlan(seed=13, rate=1.0, kinds=HTTP_FAULT_KINDS),
        slow_write_seconds=1.5,
    )

    def chaos_worker():
        for index in range(strikes):
            chaos.strike(index)

    threads = [threading.Thread(target=client_worker, args=(i,))
               for i in range(2)]
    threads.append(threading.Thread(target=chaos_worker))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    health = service.handle({"kind": "health"})
    stats = service.handle({"kind": "stats"})["result"]
    drained = (
        stats["admission"]["inflight"] == 0
        and stats["admission"]["inflight_seconds"] == 0.0
        and stats["overload"]["reserved_seconds"] == 0.0
    )
    server.shutdown()
    service.close()
    return {
        "strikes": dict(chaos.strikes),
        "client_errors": errors[:10],
        "transport_errors_counted": stats["counters"]["transport_errors"],
        "gates": {
            "no_unstructured_client_errors": not errors,
            "server_survived": bool(health["ok"]),
            "drained_to_zero": drained,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller mix and fleet (CI smoke)")
    args = parser.parse_args()

    workload = uq1_workload()
    total = 16 if args.quick else 40
    sample_count = 120 if args.quick else 300
    clients = 10 if args.quick else 20
    # The per-request tax is microseconds against milliseconds of sampling;
    # min-of-N needs enough N for scheduler noise to cancel out.
    repeats = 6 if args.quick else 8
    requests = build_requests(workload.query_names, total, sample_count)

    report = {
        **machine_info(),
        "workload": workload.name,
        "quick": bool(args.quick),
        "overhead": phase_overhead(workload, requests, repeats),
        "offered_load": phase_offered_load(
            workload, requests * (3 if args.quick else 5), clients
        ),
        "transport_chaos": phase_transport_chaos(
            workload, requests, strikes=6 if args.quick else 12
        ),
    }
    gates = {
        "overhead_within_budget": report["overhead"]["within_budget"],
        **{f"load_{k}": v
           for k, v in report["offered_load"]["gates"].items()},
        **{f"chaos_{k}": v
           for k, v in report["transport_chaos"]["gates"].items()},
    }
    report["gates"] = gates
    report["passed"] = all(gates.values())
    write_report("BENCH_overload.json", report)
    if not report["passed"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"FAILED gates: {failed}", file=sys.stderr)
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
