"""Micro-benchmarks of the core primitives.

These are classic pytest-benchmark measurements (many rounds, statistics) of
the inner-loop operations every experiment depends on: single-join sampling
under EW and EO weights, wander-join walks, membership probes, and the
histogram overlap bound.  They are not paper figures but make performance
regressions in the substrate visible.
"""

import pytest

from repro.estimation.histogram import HistogramUnionEstimator
from repro.joins.membership import JoinMembershipProber
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import WanderJoin
from repro.tpch.workloads import build_uq2


@pytest.fixture(scope="module")
def workload(config):
    return build_uq2(scale_factor=config.scale_factor, seed=config.seed)


@pytest.fixture(scope="module")
def query(workload):
    return workload.queries[0]


def test_join_sampler_ew_throughput(benchmark, query):
    sampler = JoinSampler(query, weights="ew", seed=1)
    benchmark(lambda: sampler.sample_many(20))


def test_join_sampler_eo_throughput(benchmark, query):
    sampler = JoinSampler(query, weights="eo", seed=1)
    benchmark(lambda: sampler.sample_many(20))


def test_join_sampler_ew_scalar_path_throughput(benchmark, query):
    """Scalar reference path (one walk per call), for batch-vs-scalar ratios."""
    sampler = JoinSampler(query, weights="ew", seed=1)
    benchmark(lambda: [sampler.try_sample() for _ in range(20)])


def test_join_sampler_ew_batch_throughput(benchmark, query):
    sampler = JoinSampler(query, weights="ew", seed=1)
    sampler.sample_batch(50)  # build the level plans outside the timing
    benchmark(lambda: sampler.sample_batch(1000))


def test_join_sampler_eo_batch_throughput(benchmark, query):
    sampler = JoinSampler(query, weights="eo", seed=1)
    sampler.sample_batch(50)
    benchmark(lambda: sampler.sample_batch(1000))


def test_wander_join_walk_throughput(benchmark, query):
    walker = WanderJoin(query, seed=1)
    benchmark(lambda: walker.walks(50))


def test_wander_join_batch_walk_throughput(benchmark, query):
    walker = WanderJoin(query, seed=1)
    walker.walk_batch(50)
    benchmark(lambda: walker.walk_batch(1000))


def test_exact_weight_build_throughput(benchmark, query):
    """EW bottom-up weight computation (segment sums over the CSR index)."""
    from repro.sampling.weights import ExactWeightFunction

    benchmark(lambda: ExactWeightFunction(query))


def test_membership_probe_throughput(benchmark, workload, query):
    prober = JoinMembershipProber(workload.queries[1])
    sampler = JoinSampler(query, weights="ew", seed=2)
    values = [draw.value for draw in sampler.sample_many(50)]
    benchmark(lambda: [prober.contains(v) for v in values])


def test_histogram_overlap_bound_throughput(benchmark, workload):
    estimator = HistogramUnionEstimator(workload.queries, join_size_method="eo")
    benchmark(lambda: estimator.overlap(workload.queries[:2]))
