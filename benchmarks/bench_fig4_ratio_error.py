"""Fig. 4a / 4b — error of the |J_i|/|U| ratio estimation (histogram + EO).

Paper shape: the histogram-based estimator's error is larger and less stable
at small overlap scales and shrinks/stabilizes as the overlap scale grows; the
error on UQ3 (shorter joins, fewer of them) is smaller than on UQ1.
"""

from repro.experiments.figures import run_fig4_ratio_error


def test_fig4a_uq1_ratio_error(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig4_ratio_error, args=("UQ1", config), rounds=1, iterations=1
    )
    record_table(table)
    assert len(table.rows) == len(config.overlap_scales)
    assert all(value >= 0.0 for value in table.column("mean_error"))


def test_fig4b_uq3_ratio_error(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig4_ratio_error, args=("UQ3", config), rounds=1, iterations=1
    )
    record_table(table)
    assert len(table.rows) == len(config.overlap_scales)
    assert all(value >= 0.0 for value in table.column("mean_error"))
