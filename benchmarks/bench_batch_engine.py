#!/usr/bin/env python
"""Benchmark the batched sampling engine against the scalar reference path.

Measures accepted samples/second of ``JoinSampler.try_sample`` (scalar walks)
and ``JoinSampler.sample_batch`` (vectorized batched walks) under EW and EO
weights, plus wander-join walk throughput, on the ``bench_micro`` workload
(UQ2 at the benchmark scale).  Results are written to
``BENCH_batch_engine.json`` at the repository root.

Run via ``make bench`` or::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py
"""

from __future__ import annotations

import time

from common import machine_info, uq2_workload, write_report

from repro.sampling.join_sampler import JoinSampler  # noqa: E402
from repro.sampling.wander_join import WanderJoin  # noqa: E402
from repro.sampling.weights import ExactWeightFunction  # noqa: E402

#: Scalar-path throughput of the seed revision (before the vectorized
#: engine), measured with the same workload/scale/seed on the CI container.
SEED_BASELINE = {"ew": 14043.0, "eo": 10751.0}


def _scalar_rate(sampler: JoinSampler, seconds: float = 0.5) -> float:
    accepted = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        for _ in range(200):
            if sampler.try_sample() is not None:
                accepted += 1
    return accepted / (time.perf_counter() - started)


def _batch_rate(sampler: JoinSampler, seconds: float = 0.5) -> float:
    accepted = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        accepted += len(sampler.sample_batch(5000))
    return accepted / (time.perf_counter() - started)


def main() -> None:
    workload = uq2_workload()
    query = workload.queries[0]

    report: dict = {
        "benchmark": "bench_micro sample-rate (UQ2, first join)",
        **machine_info(),
        "seed_baseline_samples_per_sec": SEED_BASELINE,
        "results": {},
    }

    for weights in ("ew", "eo"):
        scalar = JoinSampler(query, weights=weights, seed=1)
        batched = JoinSampler(query, weights=weights, seed=2)
        for _ in range(100):
            scalar.try_sample()
        batched.sample_batch(100)
        scalar_rate = _scalar_rate(scalar)
        batch_rate = _batch_rate(batched)
        report["results"][weights] = {
            "scalar_samples_per_sec": round(scalar_rate, 1),
            "batch_samples_per_sec": round(batch_rate, 1),
            "batch_vs_scalar": round(batch_rate / scalar_rate, 2),
            "batch_vs_seed_baseline": round(batch_rate / SEED_BASELINE[weights], 2),
        }

    walker = WanderJoin(query, seed=3)
    walker.walk_batch(100)
    started = time.perf_counter()
    walks = 0
    while time.perf_counter() - started < 0.5:
        walker.walk_batch(5000)
        walks += 5000
    report["results"]["wander_join_walks_per_sec"] = round(
        walks / (time.perf_counter() - started), 1
    )

    started = time.perf_counter()
    builds = 0
    while time.perf_counter() - started < 0.5:
        ExactWeightFunction(query)
        builds += 1
    report["results"]["ew_weight_builds_per_sec"] = round(
        builds / (time.perf_counter() - started), 2
    )

    write_report("BENCH_batch_engine.json", report)


if __name__ == "__main__":
    main()
