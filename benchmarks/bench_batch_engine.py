#!/usr/bin/env python
"""Benchmark the batched sampling engine against the scalar reference path.

Measures accepted samples/second of ``JoinSampler.try_sample`` (scalar walks)
and ``JoinSampler.sample_batch`` (vectorized batched walks) under EW and EO
weights, plus wander-join walk throughput, on the ``bench_micro`` workload
(UQ2 at the benchmark scale).  Results are written to
``BENCH_batch_engine.json`` at the repository root.

Run via ``make bench`` or::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.config import BENCH_CONFIG  # noqa: E402
from repro.sampling.join_sampler import JoinSampler  # noqa: E402
from repro.sampling.wander_join import WanderJoin  # noqa: E402
from repro.sampling.weights import ExactWeightFunction  # noqa: E402
from repro.tpch.workloads import build_uq2  # noqa: E402

#: Scalar-path throughput of the seed revision (before the vectorized
#: engine), measured with the same workload/scale/seed on the CI container.
SEED_BASELINE = {"ew": 14043.0, "eo": 10751.0}


def _scalar_rate(sampler: JoinSampler, seconds: float = 0.5) -> float:
    accepted = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        for _ in range(200):
            if sampler.try_sample() is not None:
                accepted += 1
    return accepted / (time.perf_counter() - started)


def _batch_rate(sampler: JoinSampler, seconds: float = 0.5) -> float:
    accepted = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        accepted += len(sampler.sample_batch(5000))
    return accepted / (time.perf_counter() - started)


def main() -> None:
    workload = build_uq2(scale_factor=BENCH_CONFIG.scale_factor, seed=BENCH_CONFIG.seed)
    query = workload.queries[0]

    report: dict = {
        "benchmark": "bench_micro sample-rate (UQ2, first join)",
        "scale_factor": BENCH_CONFIG.scale_factor,
        "seed": BENCH_CONFIG.seed,
        "python": platform.python_version(),
        "seed_baseline_samples_per_sec": SEED_BASELINE,
        "results": {},
    }

    for weights in ("ew", "eo"):
        scalar = JoinSampler(query, weights=weights, seed=1)
        batched = JoinSampler(query, weights=weights, seed=2)
        for _ in range(100):
            scalar.try_sample()
        batched.sample_batch(100)
        scalar_rate = _scalar_rate(scalar)
        batch_rate = _batch_rate(batched)
        report["results"][weights] = {
            "scalar_samples_per_sec": round(scalar_rate, 1),
            "batch_samples_per_sec": round(batch_rate, 1),
            "batch_vs_scalar": round(batch_rate / scalar_rate, 2),
            "batch_vs_seed_baseline": round(batch_rate / SEED_BASELINE[weights], 2),
        }

    walker = WanderJoin(query, seed=3)
    walker.walk_batch(100)
    started = time.perf_counter()
    walks = 0
    while time.perf_counter() - started < 0.5:
        walker.walk_batch(5000)
        walks += 5000
    report["results"]["wander_join_walks_per_sec"] = round(
        walks / (time.perf_counter() - started), 1
    )

    started = time.perf_counter()
    builds = 0
    while time.perf_counter() - started < 0.5:
        ExactWeightFunction(query)
        builds += 1
    report["results"]["ew_weight_builds_per_sec"] = round(
        builds / (time.perf_counter() - started), 2
    )

    out_path = REPO_ROOT / "BENCH_batch_engine.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out_path}")


if __name__ == "__main__":
    main()
