#!/usr/bin/env python
"""Benchmark delta maintenance against full cache rebuilds under churn.

Builds the customer ⋈ orders ⋈ lineitem dynamic scenario at a ~100k-row
lineitem scale, then replays the same TPC-H RF1/RF2 refresh stream twice:

* **delta** — the incremental path: every batch goes through
  ``Relation._commit_delta`` (O(Δ) patches to hash/CSR indexes, column
  arrays and statistics), the weight function patches only the segments the
  dirty relations influence, and the sampler refreshes its plans;
* **rebuild** — the seed behaviour: every batch wholesale-invalidates all
  caches and rebuilds indexes, statistics, column arrays, weights and
  sampler plans from scratch on next access.

Both modes draw the same number of samples per epoch, so the measured time
is "apply updates + bring the sampling engine back to serving state + serve".
Results are written to ``BENCH_updates.json`` at the repository root.

Run via ``make bench-updates`` or::

    PYTHONPATH=src python benchmarks/bench_updates.py
"""

from __future__ import annotations

import time

from common import machine_info, write_report

from repro.dynamic.scenario import build_order_stream_scenario  # noqa: E402
from repro.dynamic.stream import apply_batch  # noqa: E402
from repro.sampling.join_sampler import JoinSampler  # noqa: E402

#: lineitem rows ≈ 6,000,000 · scale -> ~100k-row mixed workload substrate
SCALE_FACTOR = 100_000 / 6_000_000
SEED = 2023
EPOCHS = 25
ORDERS_PER_BATCH = 64
SAMPLES_PER_EPOCH = 200


def _prime(tables, sampler: JoinSampler) -> None:
    """Build the caches the serving path uses (outside the timings).

    Warming the sampler builds the join-key hash/CSR indexes, column arrays
    and EW weights; the ``orderkey`` hash indexes route the RF2 deletes.
    Rebuild mode drops all of these each batch and rebuilds them lazily on
    the next delete/sample; delta mode patches them in place.
    """
    sampler.sample_batch(SAMPLES_PER_EPOCH)
    tables["orders"].index_on("orderkey")
    tables["lineitem"].index_on("orderkey")


def run_mode(mode: str) -> dict:
    tables, query, stream = build_order_stream_scenario(
        scale_factor=SCALE_FACTOR,
        seed=SEED,
        orders_per_batch=ORDERS_PER_BATCH,
    )
    sampler = JoinSampler(query, weights="ew", seed=7)
    _prime(tables, sampler)

    epoch_seconds = []
    total_inserted = total_deleted = 0
    for batch in stream.batches(EPOCHS):
        started = time.perf_counter()
        counts = apply_batch(tables, batch)
        if mode == "rebuild":
            # Seed behaviour: caches die with the mutation; everything —
            # indexes, CSR, statistics, column arrays, weights, plans — is
            # rebuilt from the raw rows before the next sample is served.
            for name in query.relation_order:
                query.relation(name)._invalidate()
            sampler = JoinSampler(query, weights="ew", seed=7)
        else:
            sampler.refresh()
        sampler.sample_batch(SAMPLES_PER_EPOCH)
        epoch_seconds.append(time.perf_counter() - started)
        total_inserted += counts["inserted"]
        total_deleted += counts["deleted"]

    total = sum(epoch_seconds)
    return {
        "total_seconds": round(total, 4),
        "mean_epoch_ms": round(1000.0 * total / EPOCHS, 3),
        "rows_churned": total_inserted + total_deleted,
        "inserted_rows": total_inserted,
        "deleted_rows": total_deleted,
        "final_lineitem_rows": len(tables["lineitem"]),
    }


def main() -> None:
    report: dict = {
        "benchmark": "incremental update engine: delta maintenance vs full rebuild",
        "workload": {
            "query": "customer ⋈ orders ⋈ lineitem (EW weights)",
            "scale_factor": SCALE_FACTOR,
            "lineitem_rows": "~100k",
            "seed": SEED,
            "epochs": EPOCHS,
            "orders_per_batch": ORDERS_PER_BATCH,
            "samples_per_epoch": SAMPLES_PER_EPOCH,
            "stream": "TPC-H RF1/RF2 mixed insert/delete refresh batches",
        },
        "python": machine_info()["python"],
        "results": {},
    }
    for mode in ("delta", "rebuild"):
        report["results"][mode] = run_mode(mode)
        print(f"{mode:>8}: {report['results'][mode]}")
    speedup = (
        report["results"]["rebuild"]["total_seconds"]
        / max(report["results"]["delta"]["total_seconds"], 1e-12)
    )
    report["results"]["delta_vs_rebuild_speedup"] = round(speedup, 2)

    write_report("BENCH_updates.json", report)


if __name__ == "__main__":
    main()
