#!/usr/bin/env python
"""Benchmark the cross-query sample cache tier (``repro.cache``).

A repeated-with-variation workload — SUM, AVG, a filtered SUM, and a
GROUP-BY over one join shape — runs twice at the same error target: cold
(every query draws its own samples) and cached (a primed
:class:`~repro.cache.SampleCache` serves every query from one shared
``SampleBlock`` stream).  Both passes run against a pre-warmed prototype
sampler, so the measured cost is the draw/aggregation work the cache
actually removes, not one-off structure builds (the server prices those
separately — see ``docs/cache.md``).  Draws use the Olken backend — the
paper's setting, where every accepted sample pays a string of rejections —
so the cold pass re-pays the rejection tax per query while the cached pass
re-consumes the accepted stream without it.

Two hard gates decide the exit code:

1. **Speedup** — the cached pass must be at least ``SPEEDUP_GATE``× faster
   than the cold pass at the same CI target (median over rounds).
2. **Cold purity** — a cache-enabled server answering with ``"cache": false``
   must produce a payload bit-identical to a server built without a cache.
   Enabling the tier must not perturb the uncached path by so much as a
   confidence bound.

Results are written to ``BENCH_reuse.json`` at the repository root.

Run via ``make bench-reuse`` or::

    PYTHONPATH=src python benchmarks/bench_reuse_cache.py [--quick]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from common import machine_info, uq1_workload, write_report

from repro.aqp import AggregateSpec, OnlineAggregator  # noqa: E402
from repro.cache import SampleCache  # noqa: E402
from repro.sampling.join_sampler import JoinSampler  # noqa: E402
from repro.server import SamplingService  # noqa: E402

SPEEDUP_GATE = 5.0


def variations():
    """The repeated-with-variation workload over one join shape."""
    return [
        ("sum", AggregateSpec("sum", attribute="totalprice")),
        ("avg", AggregateSpec("avg", attribute="totalprice")),
        ("sum_filtered", AggregateSpec(
            "sum", attribute="totalprice",
            where=lambda row: row["totalprice"] > 100_000.0,
        )),
        ("sum_groupby", AggregateSpec(
            "sum", attribute="totalprice", group_by="mktsegment",
        )),
    ]


def run_pass(query, proto, rel_error, cache):
    """One pass over the variation workload; returns (total s, per-query)."""
    per_query = []
    total = 0.0
    for i, (label, spec) in enumerate(variations()):
        clone = proto.split(1, seed=500 + i, share_plans=True)[0]
        started = time.perf_counter()
        aggregator = OnlineAggregator(
            query, spec, method="olken", seed=900 + i,
            join_sampler=clone, cache=cache,
        )
        report = aggregator.until(rel_error)
        elapsed = time.perf_counter() - started
        total += elapsed
        assert report.max_relative_half_width() <= rel_error
        per_query.append({
            "query": label,
            "ms": round(elapsed * 1e3, 3),
            "cached_samples": aggregator.cached_samples,
            "fresh_samples": aggregator.fresh_samples,
        })
    return total, per_query


def measure_speedup(query, rel_error, rounds):
    """Cold vs cached medians over ``rounds`` independent repetitions."""
    proto = JoinSampler(query, weights="eo", seed=0).warm()
    cold_times, cached_times = [], []
    cold_detail = cached_detail = None
    cache_stats = None
    for round_index in range(rounds):
        total, cold_detail = run_pass(query, proto, rel_error, cache=None)
        cold_times.append(total)
    for round_index in range(rounds):
        # Fresh cache per round, primed untimed by earlier traffic.  The
        # primer runs the most sample-hungry variation (the group-by: every
        # group must hit the target) so its stream covers every follow-up's
        # budget.
        cache = SampleCache()
        primer = OnlineAggregator(
            query, AggregateSpec("sum", attribute="totalprice",
                                 group_by="mktsegment"),
            method="olken", seed=800,
            join_sampler=proto.split(1, seed=400, share_plans=True)[0],
            cache=cache,
        )
        primer.until(rel_error)
        total, cached_detail = run_pass(query, proto, rel_error, cache=cache)
        cached_times.append(total)
        cache_stats = cache.stats_dict()
    cold = statistics.median(cold_times)
    cached = statistics.median(cached_times)
    return {
        "rounds": rounds,
        "rel_error": rel_error,
        "cold_ms": round(cold * 1e3, 3),
        "cached_ms": round(cached * 1e3, 3),
        "speedup": round(cold / cached, 2) if cached > 0 else float("inf"),
        "cold_queries": cold_detail,
        "cached_queries": cached_detail,
        "cache": cache_stats,
    }


def check_cold_purity(workload):
    """Gate 2: ``"cache": false`` on a caching server == a cacheless server."""
    request = {
        "kind": "aggregate", "query": workload.query_names[0],
        "aggregate": "sum", "attribute": "totalprice",
        "rel_error": 0.1, "method": "exact-weight", "seed": 77,
    }
    with SamplingService(workload=workload, warm_on_start=False) as plain:
        reference = plain.handle(dict(request))
    with SamplingService(workload=workload, warm_on_start=False,
                         cache=SampleCache()) as caching:
        # Populate the cache first so opting out has something to ignore.
        caching.handle(dict(request, seed=78))
        opted_out = caching.handle(dict(request, cache=False))
    return opted_out == reference and "cache" not in opted_out["result"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="looser target, fewer rounds (CI smoke)")
    args = parser.parse_args()
    # The quick target stays tight enough that the sample demand, not the
    # per-query fixed overhead, dominates both passes — at looser targets
    # the ratio measures aggregator construction, not the cache.
    rel_error = 0.03 if args.quick else 0.02
    rounds = 2 if args.quick else 5

    workload = uq1_workload()
    query = workload.queries[0]

    timing = measure_speedup(query, rel_error, rounds)
    speedup_ok = timing["speedup"] >= SPEEDUP_GATE
    purity_ok = check_cold_purity(workload)

    report = {
        **machine_info(),
        "workload": workload.name,
        "quick": bool(args.quick),
        "note": (
            "gates: the cached pass must beat the cold pass by "
            f"{SPEEDUP_GATE}x at the same CI target, and 'cache': false on "
            "a caching server must be bit-identical to a cacheless server"
        ),
        **timing,
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_passed": speedup_ok,
        "cold_path_bit_identical": purity_ok,
    }
    write_report("BENCH_reuse.json", report)
    if not speedup_ok:
        print(f"FAIL: speedup {timing['speedup']}x below the "
              f"{SPEEDUP_GATE}x gate", file=sys.stderr)
    if not purity_ok:
        print("FAIL: cache-disabled responses diverged from the cacheless "
              "reference", file=sys.stderr)
    return 0 if (speedup_ok and purity_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
