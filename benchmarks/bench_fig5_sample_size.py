"""Fig. 5c / 5d / 5e — SetUnion sampling time vs sample size (UQ1, UQ2, UQ3).

Paper shape: runtime grows roughly linearly with the number of samples;
histogram+EW and random-walk+EW are nearly indistinguishable (the accuracy of
the warm-up bound has little effect on sampling efficiency), while
histogram+EO is slower because EO weights add a per-draw rejection phase.
"""

import pytest

from repro.experiments.figures import INSTANTIATIONS, run_fig5_sample_size


@pytest.mark.parametrize(
    "figure,workload", [("fig5c", "UQ1"), ("fig5d", "UQ2"), ("fig5e", "UQ3")]
)
def test_fig5_sampling_time_vs_sample_size(benchmark, config, record_table, figure, workload):
    table = benchmark.pedantic(
        run_fig5_sample_size, args=(workload, config), rounds=1, iterations=1
    )
    record_table(table, suffix=figure)
    assert [row["samples"] for row in table.rows] == list(config.sample_sizes)
    for label, _, _ in INSTANTIATIONS:
        series = table.column(label)
        assert all(value > 0 for value in series)
    # Shape check: more samples never get cheaper by a large margin (roughly
    # monotone growth, allowing for timer noise at this tiny scale).
    ew = table.column("histogram+EW")
    assert ew[-1] >= ew[0] * 0.5
