#!/usr/bin/env python
"""Benchmark the sampling server: latency/throughput under concurrent load.

A load generator drives the real JSON-over-HTTP stack (one
:class:`~repro.server.service.SamplingService` behind
:class:`~repro.server.http.SamplingHTTPServer`) with a fixed request mix —
warm single-join samples, warm online aggregates, and pool-routed union
samples — at 1, 4, and 16 concurrent clients, and reports p50/p99 request
latency and aggregate qps per level.

The pass/fail gate is not speed but **purity**: every response under every
concurrency level must be bit-identical to the same request served
sequentially (the level-1 pass is the reference).  A response is a pure
function of ``(request, snapshot)``; if concurrency can change so much as a
confidence bound, the server is broken no matter how fast it is.

Results are written to ``BENCH_server.json`` at the repository root.

Run via ``make bench-server`` or::

    PYTHONPATH=src python benchmarks/bench_server.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from common import machine_info, write_report

from repro.server import SamplingService, ServerClient, start_server  # noqa: E402
from repro.tpch.workloads import build_uq1  # noqa: E402

CLIENT_LEVELS = (1, 4, 16)


def build_requests(query_names, quick: bool):
    """The fixed request mix; every request is fully seeded (purity gate)."""
    total = 18 if quick else 60
    sample_count = 40 if quick else 150
    union_count = 24 if quick else 80
    requests = []
    for i in range(total):
        name = query_names[i % len(query_names)]
        if i % 4 == 3:
            requests.append({
                "kind": "aggregate", "query": name, "aggregate": "sum",
                "attribute": "totalprice", "rel_error": 0.3,
                "method": "exact-weight", "seed": 1000 + i,
            })
        elif i % 8 == 5:
            requests.append({
                "kind": "sample", "query": "union", "count": union_count,
                "seed": 1000 + i,
            })
        else:
            requests.append({
                "kind": "sample", "query": name, "count": sample_count,
                "seed": 1000 + i,
            })
    return requests


def run_level(port: int, requests, clients: int):
    """Drive all requests through ``clients`` concurrent connections."""
    latencies = [0.0] * len(requests)
    responses = [None] * len(requests)
    errors = []
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker():
        client = ServerClient(port=port)
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] += 1
            started = time.perf_counter()
            try:
                responses[index] = client.call(requests[index])
            except Exception as error:  # noqa: BLE001 - reported in the gate
                errors.append((index, repr(error)))
            latencies[index] = time.perf_counter() - started

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    wall_started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_started
    return latencies, responses, errors, wall


def percentile(sorted_values, fraction: float) -> float:
    index = min(int(round(fraction * (len(sorted_values) - 1))),
                len(sorted_values) - 1)
    return sorted_values[index]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller request mix (CI smoke)")
    args = parser.parse_args()

    workload = build_uq1(scale_factor=0.001, overlap_scale=0.3, seed=2023)
    warm_started = time.perf_counter()
    service = SamplingService(workload=workload)
    warm_seconds = time.perf_counter() - warm_started
    server, _thread = start_server(service, port=0)
    requests = build_requests(workload.query_names, args.quick)

    report = {
        **machine_info(),
        "workload": workload.name,
        "quick": bool(args.quick),
        "requests_per_level": len(requests),
        "warm_startup_seconds": round(warm_seconds, 4),
        "note": (
            "bit-identical is the pass/fail gate: every response at every "
            "client count must equal the sequential (1-client) reference"
        ),
        "levels": [],
    }

    reference = None
    all_identical = True
    try:
        for clients in CLIENT_LEVELS:
            latencies, responses, errors, wall = run_level(
                server.port, requests, clients
            )
            if errors:
                print(f"request errors at {clients} clients: {errors[:3]}",
                      file=sys.stderr)
                all_identical = False
            if reference is None:
                reference = responses
                identical = True
            else:
                identical = responses == reference
            all_identical = all_identical and identical
            ordered = sorted(latencies)
            report["levels"].append({
                "clients": clients,
                "requests": len(requests),
                "errors": len(errors),
                "p50_latency_ms": round(percentile(ordered, 0.50) * 1e3, 3),
                "p99_latency_ms": round(percentile(ordered, 0.99) * 1e3, 3),
                "qps": round(len(requests) / wall, 2),
                "wall_seconds": round(wall, 4),
                "bit_identical_to_sequential": identical,
            })
        stats = service.handle({"kind": "stats"})["result"]
        report["server_counters"] = stats["counters"]
        report["admission"] = stats["admission"]
    finally:
        server.shutdown()
        service.close()

    report["all_bit_identical"] = all_identical
    write_report("BENCH_server.json", report)
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
