"""Shared fixtures for the benchmark harness.

Every benchmark regenerates the data behind one of the paper's figures (or an
ablation) at the laptop-scale :data:`repro.experiments.config.BENCH_CONFIG`.
The resulting series tables — the same rows the paper plots — are printed and
written to ``benchmarks/results/<benchmark>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced figures on
disk next to the timing data.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import BENCH_CONFIG
from repro.experiments.reporting import SeriesTable

RESULTS_DIR = Path(__file__).parent / "results"

#: Plain scripts (own `main()`, run via the make bench-* targets), not
#: pytest-benchmark suites — keep them out of `pytest benchmarks/`.
collect_ignore = [
    "bench_batch_engine.py",
    "bench_aqp.py",
    "bench_parallel.py",
    "bench_pipeline.py",
    "bench_resilience.py",
    "bench_reuse_cache.py",
    "bench_server.py",
    "bench_updates.py",
    "profile_aggregate.py",
    "common.py",
]


@pytest.fixture(scope="session")
def config():
    """The experiment configuration used by all benchmarks."""
    return BENCH_CONFIG


@pytest.fixture
def record_table(request):
    """Callable that persists a SeriesTable under the current benchmark's name."""

    def _record(table: SeriesTable, suffix: str = "") -> SeriesTable:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("[", "_").replace("]", "")
        if suffix:
            name = f"{name}_{suffix}"
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table.to_text() + "\n", encoding="utf-8")
        print()
        print(table.to_text())
        return table

    return _record
