"""Fig. 5f / 5g / 5h — runtime breakdown: estimation vs accepted vs rejected.

Paper shape: EO spends far more time on rejected answers than EW (which has a
zero join-sampler rejection rate); the warm-up of the random-walk method costs
more than the histogram warm-up; time spent producing accepted answers is
similar across instantiations.
"""

import pytest

from repro.experiments.figures import run_fig5_breakdown


@pytest.mark.parametrize(
    "figure,workload", [("fig5f", "UQ1"), ("fig5g", "UQ2"), ("fig5h", "UQ3")]
)
def test_fig5_time_breakdown(benchmark, config, record_table, figure, workload):
    table = benchmark.pedantic(
        run_fig5_breakdown, args=(workload, config), kwargs={"sample_size": 100},
        rounds=1, iterations=1,
    )
    record_table(table, suffix=figure)
    rows = {row["instantiation"]: row for row in table.rows}
    assert set(rows) == {"histogram+EW", "histogram+EO", "random-walk+EW"}
    # EW never rejects inside the join sampler; EO does.
    assert rows["histogram+EW"]["join_sampler_rejections"] == 0
    assert rows["histogram+EO"]["join_sampler_rejections"] >= 0
    for row in table.rows:
        assert row["accepted_seconds"] > 0
