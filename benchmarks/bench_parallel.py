#!/usr/bin/env python
"""Benchmark the parallel sampling service: scaling and bit-identical merges.

Two questions, answered per workload (TPC-H acyclic join and TPC-H union):

1. **Scaling** — samples/sec of the whole fan-out/merge path at 1, 2, and 4
   workers.  The shard plan is held fixed, so every worker count does exactly
   the same sampling work; the ratio ``rate(4 workers) / rate(1 worker)`` is
   the speedup.  The roadmap target is >= 2.5x at 4 workers, which requires
   >= 4 physical cores; the report records the machine's ``cpu_count`` (and
   the execution backend the pool actually chose) so a single-core container
   run is legible as a hardware limit, not a regression.
2. **Determinism** — the merged estimate and CI bounds of every parallel run
   are compared bit-for-bit against the sequential reference (the same shard
   plan executed in a plain in-process loop).  This must hold on any
   hardware and is the pass/fail gate of this benchmark.

Results are written to ``BENCH_parallel.json`` at the repository root.

Run via ``make bench-parallel`` or::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import sys
import time

from common import machine_info, uq1_workload, write_report

from repro.aqp import AggregateSpec  # noqa: E402
from repro.parallel import ParallelSamplerPool, sequential_reference  # noqa: E402

WORKER_COUNTS = (1, 2, 4)
SHARDS = 8
REPEATS = 3
SPEEDUP_TARGET = 2.5


def report_key(report):
    overall = report.overall
    return (overall.estimate, overall.ci_low, overall.ci_high,
            report.attempts, report.accepted)


def merge_reference(tasks):
    """Sequential oracle: run the shard plan in-process and merge in order."""
    merged = None
    for result in sequential_reference(tasks):
        if merged is None:
            merged = result.accumulator
        else:
            merged.merge(result.accumulator)
    return merged.estimate()


def bench_workload(name, queries, spec, count, seed, method="auto"):
    probe_pool = ParallelSamplerPool(workers=1, execution="thread")
    tasks = probe_pool.plan_tasks(queries, count, seed=seed, method=method,
                                  spec=spec, shards=SHARDS)
    reference = merge_reference(tasks)

    runs = {}
    rates = {}
    for workers in WORKER_COUNTS:
        pool = ParallelSamplerPool(workers=workers, execution="auto", job_timeout=600)
        times = []
        merged_report = None
        for _ in range(REPEATS):
            started = time.perf_counter()
            outcome = pool.aggregate(queries, spec, count, seed=seed,
                                     method=method, shards=SHARDS)
            times.append(time.perf_counter() - started)
            merged_report = outcome.accumulator.estimate()
        execution = outcome.execution
        seconds = min(times)
        rates[workers] = count / seconds
        runs[str(workers)] = {
            "seconds": round(seconds, 5),
            "samples_per_sec": round(count / seconds, 1),
            "execution": execution,
            "bit_identical_to_sequential": report_key(merged_report) == report_key(reference),
        }

    speedup = rates[4] / rates[1]
    return {
        "workload": name,
        "aggregate": spec.describe(),
        "backend": tasks[0].backend,
        "samples": count,
        "shards": SHARDS,
        "workers": runs,
        "speedup_4_vs_1": round(speedup, 3),
        "meets_speedup_target": speedup >= SPEEDUP_TARGET,
        "all_bit_identical": all(r["bit_identical_to_sequential"] for r in runs.values()),
    }


def main() -> int:
    info = machine_info()
    seed = info["seed"]
    uq1 = uq1_workload()

    report = {
        "benchmark": "parallel sampling service: scaling + deterministic merge",
        **info,
        "speedup_target_at_4_workers": SPEEDUP_TARGET,
        "note": (
            "the speedup target presumes >= 4 physical cores; on machines "
            "with fewer cores the determinism gate is the pass/fail signal"
        ),
        "workloads": [],
    }

    # TPC-H acyclic: one UQ1 chain join, SUM over order totalprice.
    report["workloads"].append(
        bench_workload(
            "UQ1 first join (TPC-H acyclic chain)",
            uq1.queries[0],
            AggregateSpec("sum", attribute="totalprice"),
            count=60_000,
            seed=seed,
        )
    )
    # TPC-H union: the whole UQ1 workload under set semantics.
    report["workloads"].append(
        bench_workload(
            "UQ1 union (5 joins, set semantics)",
            uq1.queries,
            AggregateSpec("sum", attribute="totalprice"),
            count=3_000,
            seed=seed,
        )
    )

    report["all_bit_identical"] = all(w["all_bit_identical"] for w in report["workloads"])
    report["all_meet_speedup_target"] = all(
        w["meets_speedup_target"] for w in report["workloads"]
    )

    write_report("BENCH_parallel.json", report)
    # Determinism is the hard gate; scaling depends on the machine's cores.
    return 0 if report["all_bit_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
