"""Fig. 5a — |J|/|U| ratio error per join: histogram+EO vs random-walk (UQ1).

Paper shape: the random-walk estimator is substantially more accurate and more
stable than the histogram-based bound on every join.
"""

from repro.experiments.figures import run_fig5a_ratio_error


def test_fig5a_ratio_error(benchmark, config, record_table):
    table = benchmark.pedantic(run_fig5a_ratio_error, args=(config,), rounds=1, iterations=1)
    record_table(table)
    walk = table.column("random_walk_error")
    hist = table.column("histogram_eo_error")
    assert len(walk) == len(hist) > 0
    # Shape check: the random-walk estimator wins on average.
    assert sum(walk) / len(walk) <= sum(hist) / len(hist) + 1e-9
