#!/usr/bin/env python
"""Benchmark the columnar draw pipeline end to end: blocks vs boxed draws.

Measures accepted samples/second of the full aggregate hot path — draw from
the join, apply HT weighting, accumulate group contributions, report an
estimate — in its two wirings:

* **boxed** — the PR 1/PR 3 path: ``JoinSampler.sample_batch`` boxes every
  accepted sample into a ``SampleDraw`` (value tuple + assignment dict) and
  ``AggregateAccumulator.observe`` unpacks them row by row;
* **block** — the columnar pipeline: ``JoinSampler.sample_block`` returns a
  struct-of-arrays :class:`~repro.sampling.blocks.SampleBlock` whose value
  columns feed ``AggregateAccumulator.ingest_block`` directly.

Both wirings share the alias-table draw kernels and produce identical
estimator state, so the ratio isolates the object-materialization tax.  The
roadmap gate is **>= 2x** block-vs-boxed throughput on the TPC-H UQ1 and UQ2
workloads.

Two more gates ride along:

* ``--workers 2`` process-backend aggregation must stay **bit-identical** to
  the sequential reference of the same shard plan (blocks ship across the
  process boundary; the merge law must not notice);
* the resident-bytes table records what the smallest-safe-dtype audit saves
  against NumPy's int64 defaults.

Results are written to ``BENCH_pipeline.json`` at the repository root.

Run via ``make bench-pipeline`` or::

    PYTHONPATH=src python benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import sys
import time

from common import machine_info, resident_cache_bytes, uq1_workload, uq2_workload, write_report

from repro.aqp import AggregateAccumulator, AggregateSpec  # noqa: E402
from repro.parallel import ParallelSamplerPool, sequential_reference  # noqa: E402
from repro.sampling.blocks import SampleBlock  # noqa: E402
from repro.sampling.join_sampler import JoinSampler  # noqa: E402

SPEEDUP_TARGET = 2.0
BATCH = 4096
SECONDS = 0.6
PARALLEL_COUNT = 20_000
PARALLEL_SHARDS = 8


def boxed_rate(query, spec, seconds=SECONDS):
    """Accepted samples/sec of the boxed sample_batch -> observe pipeline."""
    sampler = JoinSampler(query, weights="ew", seed=1)
    accumulator = AggregateAccumulator(spec, query.output_schema)
    total_weight = sampler.weight_function.total_weight
    sampler.sample_batch(BATCH)  # warm plans/indexes outside the timing
    sampler.pop_buffered()
    accepted = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        before = sampler.stats.attempts
        draws = sampler.sample_batch(BATCH)
        draws.extend(sampler.pop_buffered())
        accumulator.observe(
            [d.value for d in draws],
            attempts=sampler.stats.attempts - before,
            weight=total_weight,
        )
        accepted += len(draws)
    elapsed = time.perf_counter() - started
    accumulator.estimate()
    return accepted / elapsed, accumulator


def block_rate(query, spec, seconds=SECONDS):
    """Accepted samples/sec of the columnar sample_block -> ingest pipeline."""
    sampler = JoinSampler(query, weights="ew", seed=1)
    accumulator = AggregateAccumulator(spec, query.output_schema)
    total_weight = sampler.weight_function.total_weight
    sampler.sample_block(BATCH)  # warm plans/alias tables outside the timing
    sampler.pop_buffered_blocks()
    accepted = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        before = sampler.stats.attempts
        blocks = [sampler.sample_block(BATCH)]
        blocks.extend(sampler.pop_buffered_blocks())
        block = SampleBlock.concat(blocks)
        accumulator.ingest_block(
            block.value_columns(query),
            attempts=sampler.stats.attempts - before,
            weight=total_weight,
        )
        accepted += len(block)
    elapsed = time.perf_counter() - started
    accumulator.estimate()
    return accepted / elapsed, accumulator


def identity_check(query, spec, count=5000):
    """Boxed and block wirings must produce bit-identical estimator state.

    Same seed, same draw stream, fixed sample count: ``observe`` over boxed
    draws and ``ingest_block`` over the equivalent block columns must agree
    on every per-group estimate and interval bound exactly.
    """
    boxed_sampler = JoinSampler(query, weights="ew", seed=9)
    boxed_acc = AggregateAccumulator(spec, query.output_schema)
    w = boxed_sampler.weight_function.total_weight
    before = boxed_sampler.stats.attempts
    draws = boxed_sampler.sample_batch(count)
    draws.extend(boxed_sampler.pop_buffered())
    boxed_acc.observe(
        [d.value for d in draws], attempts=boxed_sampler.stats.attempts - before, weight=w
    )

    block_sampler = JoinSampler(query, weights="ew", seed=9)
    block_acc = AggregateAccumulator(spec, query.output_schema)
    before = block_sampler.stats.attempts
    blocks = [block_sampler.sample_block(count)]
    blocks.extend(block_sampler.pop_buffered_blocks())
    block = SampleBlock.concat(blocks)
    block_acc.ingest_block(
        block.value_columns(query),
        attempts=block_sampler.stats.attempts - before,
        weight=w,
    )

    boxed_report = boxed_acc.estimate()
    block_report = block_acc.estimate()
    return all(
        boxed_report.estimates[g] == block_report.estimates[g]
        for g in boxed_report.estimates
    ) and set(boxed_report.estimates) == set(block_report.estimates)


def bench_workload(name, query, spec):
    boxed, _ = boxed_rate(query, spec)
    block, _ = block_rate(query, spec)
    ratio = block / boxed
    return {
        "workload": name,
        "aggregate": spec.describe(),
        "boxed_samples_per_sec": round(boxed, 1),
        "block_samples_per_sec": round(block, 1),
        "block_vs_boxed": round(ratio, 2),
        "estimates_bit_identical": identity_check(query, spec),
        "meets_speedup_target": ratio >= SPEEDUP_TARGET,
    }


def parallel_bit_identity(queries, spec, seed):
    """--workers 2 process-backend answers vs the sequential reference."""
    pool = ParallelSamplerPool(workers=2, execution="process", job_timeout=600)
    tasks = pool.plan_tasks(
        queries, PARALLEL_COUNT, seed=seed, method="exact-weight",
        spec=spec, shards=PARALLEL_SHARDS,
    )
    merged = None
    for result in sequential_reference(tasks):
        if merged is None:
            merged = result.accumulator
        else:
            merged.merge(result.accumulator)
    reference = merged.estimate()
    outcome = pool.aggregate(
        queries, spec, PARALLEL_COUNT, seed=seed,
        method="exact-weight", shards=PARALLEL_SHARDS,
    )
    parallel = outcome.accumulator.estimate()

    def key(report):
        overall = report.overall
        return (overall.estimate, overall.ci_low, overall.ci_high,
                report.attempts, report.accepted)

    return {
        "workers": 2,
        "execution": outcome.execution,
        "shards": PARALLEL_SHARDS,
        "samples": PARALLEL_COUNT,
        "estimate": parallel.overall.estimate,
        "bit_identical_to_sequential": key(parallel) == key(reference),
    }


def main() -> int:
    info = machine_info()
    uq1 = uq1_workload()
    uq2 = uq2_workload()
    uq1_query = uq1.queries[0]
    uq2_query = uq2.queries[0]

    report = {
        "benchmark": "columnar draw pipeline: block vs boxed end-to-end aggregate",
        **info,
        "speedup_target": SPEEDUP_TARGET,
        "batch": BATCH,
        "workloads": [
            bench_workload(
                "UQ1 first join (TPC-H acyclic chain)",
                uq1_query,
                AggregateSpec("sum", attribute="totalprice"),
            ),
            bench_workload(
                "UQ2 first join (predicated chain)",
                uq2_query,
                AggregateSpec("sum", attribute="retailprice"),
            ),
            bench_workload(
                "UQ1 first join, GROUP BY mktsegment",
                uq1_query,
                AggregateSpec("avg", attribute="totalprice", group_by="mktsegment"),
            ),
        ],
        "parallel": parallel_bit_identity(
            uq1_query, AggregateSpec("sum", attribute="totalprice"), seed=info["seed"]
        ),
    }
    # The dtype audit: resident bytes of the caches the benchmark just built.
    report["resident_bytes"] = resident_cache_bytes([uq1_query, uq2_query])

    report["all_meet_speedup_target"] = all(
        w["meets_speedup_target"] for w in report["workloads"][:2]  # UQ1/UQ2 gate
    )
    report["parallel_bit_identical"] = report["parallel"]["bit_identical_to_sequential"]

    write_report("BENCH_pipeline.json", report)
    return 0 if (report["all_meet_speedup_target"] and report["parallel_bit_identical"]) else 1


if __name__ == "__main__":
    sys.exit(main())
