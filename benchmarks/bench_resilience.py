#!/usr/bin/env python
"""Benchmark the shard supervisor: fault-free overhead and chaos recovery.

Two questions about the fault-tolerance layer added around the parallel
sampling service (see ``docs/resilience.md``):

1. **Overhead** — how much does supervision cost when nothing goes wrong?
   The same fixed shard plan is timed through the plain in-process
   sequential reference (the pre-supervision execution shape) and through
   the supervised thread rung.  The budget is <= 5% added wall-clock; the
   inline fast path (1 worker) must stay at the pre-resilience cost.
2. **Recovery** — with a 10% injected fault rate (the acceptance-gate
   chaos level), the supervised run must still merge to an estimate
   bit-identical to the fault-free sequential reference, and the report
   records how much wall-clock the retries cost.

Results are written to ``BENCH_resilience.json`` at the repository root.

Run via ``make bench-resilience`` or::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import sys
import time

from common import machine_info, uq1_workload, write_report

from repro.aqp import AggregateSpec  # noqa: E402
from repro.parallel import ParallelSamplerPool, sequential_reference  # noqa: E402
from repro.resilience import NO_FAULTS, FaultPlan, RetryPolicy  # noqa: E402

SHARDS = 8
SAMPLES = 60_000
REPEATS = 5
OVERHEAD_BUDGET = 0.05  # fault-free supervised cost <= 5% over sequential
CHAOS_RATE = 0.1
CHAOS_SEED = 2023

#: Retries in the chaos leg back off fast: the benchmark measures recovery
#: machinery, not the configured politeness of the default policy.
CHAOS_POLICY = RetryPolicy(backoff_base=0.001, backoff_cap=0.01)


def report_key(report):
    overall = report.overall
    return (overall.estimate, overall.ci_low, overall.ci_high,
            report.attempts, report.accepted)


def merge_reference(tasks):
    merged = None
    for result in sequential_reference(tasks):
        if merged is None:
            merged = result.accumulator
        else:
            merged.merge(result.accumulator)
    return merged.estimate()


def best_of(fn, repeats=REPEATS):
    times = []
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - started)
    return min(times), value


def supervised_run(queries, spec, seed, *, workers, fault_plan, policy=None):
    pool = ParallelSamplerPool(workers=workers, execution="thread",
                               fault_plan=fault_plan, retry_policy=policy,
                               job_timeout=600)
    report = pool.aggregate(queries, spec, SAMPLES, seed=seed, shards=SHARDS)
    return pool, report_key(report.accumulator.estimate())


def main() -> int:
    info = machine_info()
    seed = info["seed"]
    uq1 = uq1_workload()
    queries = uq1.queries[0]
    spec = AggregateSpec("sum", attribute="totalprice")

    probe = ParallelSamplerPool(workers=1, execution="thread", fault_plan=NO_FAULTS)
    tasks = probe.plan_tasks(queries, SAMPLES, seed=seed, spec=spec, shards=SHARDS)

    # Baseline: the pre-supervision execution shape — a plain loop over the
    # shard plan with no supervisor, no integrity checks, no fault hooks.
    seq_seconds, reference = best_of(lambda: merge_reference(tasks))

    # Fault-free supervised runs: the inline fast path and the thread rung.
    runs = {}
    for label, workers in (("inline_1_worker", 1), ("thread_2_workers", 2)):
        seconds, (_, key) = best_of(
            lambda w=workers: supervised_run(queries, spec, seed,
                                             workers=w, fault_plan=NO_FAULTS)
        )
        runs[label] = {
            "seconds": round(seconds, 5),
            "overhead_vs_sequential": round(seconds / seq_seconds - 1.0, 4),
            "bit_identical_to_sequential": key == report_key(reference),
        }
    # The inline path is the apples-to-apples overhead gate: same single
    # thread of execution as the sequential baseline, plus supervision.
    overhead = runs["inline_1_worker"]["overhead_vs_sequential"]

    # Chaos leg: 10% injected raise faults, deterministic seed.  Recovery
    # must be invisible in the answer; the report shows what it cost.
    chaos_plan = FaultPlan(seed=CHAOS_SEED, rate=CHAOS_RATE, kinds=("raise",))
    chaos_seconds, (chaos_pool, chaos_key) = best_of(
        lambda: supervised_run(queries, spec, seed, workers=2,
                               fault_plan=chaos_plan, policy=CHAOS_POLICY),
        repeats=3,
    )
    stats = chaos_pool.stats

    report = {
        "benchmark": "shard supervision: fault-free overhead + chaos recovery",
        **info,
        "samples": SAMPLES,
        "shards": SHARDS,
        "overhead_budget": OVERHEAD_BUDGET,
        "sequential_reference_seconds": round(seq_seconds, 5),
        "fault_free": runs,
        "fault_free_overhead": overhead,
        "meets_overhead_budget": overhead <= OVERHEAD_BUDGET,
        "chaos": {
            "fault_rate": CHAOS_RATE,
            "fault_seed": CHAOS_SEED,
            "seconds": round(chaos_seconds, 5),
            "recovery_overhead_vs_fault_free": round(
                chaos_seconds / runs["thread_2_workers"]["seconds"] - 1.0, 4
            ),
            "retries": stats.retries,
            "shard_exceptions": stats.shard_exceptions,
            "bit_identical_to_sequential": chaos_key == report_key(reference),
        },
        "all_bit_identical": (
            all(r["bit_identical_to_sequential"] for r in runs.values())
            and chaos_key == report_key(reference)
        ),
    }

    write_report("BENCH_resilience.json", report)
    # Determinism under faults is the hard gate; the overhead budget is
    # reported but judged on quiet hardware (CI noise exceeds 5%).
    return 0 if report["all_bit_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
