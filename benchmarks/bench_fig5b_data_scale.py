"""Fig. 5b — SetUnion sampling time vs data scale (UQ1).

Paper shape: sampling time grows with the data scale for every instantiation;
EO-based sampling degrades faster than EW because its rejection rate grows
with relation size, while the choice of warm-up (histogram vs random-walk)
has little impact on sampling efficiency when EW weights are used.
"""

from repro.experiments.figures import run_fig5b_data_scale


def test_fig5b_data_scale(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig5b_data_scale, args=(config,), kwargs={"sample_size": 50},
        rounds=1, iterations=1,
    )
    record_table(table)
    assert [row["scale_factor"] for row in table.rows] == list(config.data_scales)
    for label in ("histogram+EW", "histogram+EO", "random-walk+EW"):
        assert all(value > 0 for value in table.column(label))
