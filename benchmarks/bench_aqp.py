#!/usr/bin/env python
"""Benchmark the AQP layer: auto-planned vs hand-picked sampler backends.

For each workload the same aggregate runs to the same error target
(``rel_error`` at 95% confidence) once per hand-picked backend and once with
``method="auto"``; total wall-clock includes backend construction (weight
builds, warm-ups) because that is exactly the trade-off the cost-based
planner is supposed to navigate.  The headline number is

    auto_vs_best = auto runtime / best hand-picked runtime

which the roadmap requires to stay within ~1.2x on the TPC-H acyclic and
union workloads.  Results are written to ``BENCH_aqp.json`` at the repository
root.

Run via ``make bench-aqp`` or::

    PYTHONPATH=src python benchmarks/bench_aqp.py
"""

from __future__ import annotations

import sys
import time

from common import machine_info, uq1_workload, uq2_workload, write_report

from repro.aqp import AggregateSpec, OnlineAggregator, planning_budget  # noqa: E402

# The block pipeline pushed per-sample cost low enough that the original
# rel_error=0.05 budget (~1k samples) finishes in well under a millisecond —
# noise floor for the auto-vs-best ratio.  A 0.01 target keeps every backend
# in the multi-millisecond range so planning overhead has to amortize, which
# is exactly the trade-off the planner is graded on.
REL_ERROR = 0.01
CONFIDENCE = 0.95
REPEATS = 5
TARGET_RATIO = 1.2


def run_once(queries, spec, method, seed):
    """Build the aggregator and run it to the error target; return seconds."""
    started = time.perf_counter()
    aggregator = OnlineAggregator(
        queries, spec, method=method, seed=seed, confidence=CONFIDENCE,
        target_samples=planning_budget(REL_ERROR, CONFIDENCE),
    )
    report = aggregator.until(REL_ERROR)
    elapsed = time.perf_counter() - started
    return elapsed, aggregator.backend, report


def best_of(queries, spec, method, seed):
    """Best-of-N wall clock (interpreter noise dominates at these scales)."""
    times = []
    backend = None
    report = None
    for repeat in range(REPEATS):
        elapsed, backend, report = run_once(queries, spec, method, seed + repeat)
        times.append(elapsed)
    overall = report.overall
    return {
        "seconds": round(min(times), 5),
        "backend": backend,
        "attempts": report.attempts,
        "accepted": report.accepted,
        "estimate": round(overall.estimate, 3),
        "rel_half_width": round(overall.relative_half_width, 5),
    }


def bench_workload(name, queries, spec, methods, seed):
    results = {method: best_of(queries, spec, method, seed) for method in methods}
    hand_picked = {m: r for m, r in results.items() if m != "auto"}
    best_method = min(hand_picked, key=lambda m: hand_picked[m]["seconds"])
    ratio = results["auto"]["seconds"] / hand_picked[best_method]["seconds"]
    return {
        "workload": name,
        "aggregate": spec.describe(),
        "rel_error": REL_ERROR,
        "confidence": CONFIDENCE,
        "methods": results,
        "best_hand_picked": best_method,
        "auto_vs_best": round(ratio, 3),
        "auto_within_target": ratio <= TARGET_RATIO,
    }


def main() -> int:
    info = machine_info()
    seed = info["seed"]
    uq1 = uq1_workload()
    uq2 = uq2_workload()

    report = {
        "benchmark": "AQP auto-planned vs hand-picked backends",
        **info,
        "target_ratio": TARGET_RATIO,
        "workloads": [],
    }

    # TPC-H acyclic: one UQ1 chain join, SUM over lineitem quantities.
    report["workloads"].append(
        bench_workload(
            "UQ1 first join (acyclic chain)",
            uq1.queries[0],
            AggregateSpec("sum", attribute="quantity"),
            ["exact-weight", "olken", "wander-join", "auto"],
            seed,
        )
    )
    # TPC-H acyclic, second shape: UQ2 join with pushed-down predicates.
    report["workloads"].append(
        bench_workload(
            "UQ2 first join (predicated chain)",
            uq2.queries[0],
            AggregateSpec("sum", attribute="retailprice"),
            ["exact-weight", "olken", "wander-join", "auto"],
            seed,
        )
    )
    # TPC-H union: the whole UQ1 workload under set semantics.
    report["workloads"].append(
        bench_workload(
            "UQ1 union (5 joins, set semantics)",
            uq1.queries,
            AggregateSpec("sum", attribute="totalprice"),
            ["online-union", "auto"],
            seed,
        )
    )

    report["all_within_target"] = all(
        w["auto_within_target"] for w in report["workloads"]
    )

    write_report("BENCH_aqp.json", report)
    return 0 if report["all_within_target"] else 1


if __name__ == "__main__":
    sys.exit(main())
