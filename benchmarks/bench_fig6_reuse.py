"""Fig. 6a / 6b — online union sampling with sample reuse.

Paper shape: reusing the warm-up walks makes online sampling faster (the gap
is largest for the workload with the largest union), and the time per accepted
sample in the reuse phase is much smaller than in the regular phase.
"""

from repro.experiments.figures import run_fig6_reuse_per_sample, run_fig6_reuse_time


def test_fig6a_time_with_and_without_reuse(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig6_reuse_time,
        args=(config,),
        kwargs={"workload_names": ("UQ1", "UQ2", "UQ3")},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    assert [row["samples"] for row in table.rows] == list(config.sample_sizes)
    for name in ("UQ1", "UQ2", "UQ3"):
        assert all(v > 0 for v in table.column(f"{name}:reuse"))
        assert all(v > 0 for v in table.column(f"{name}:no-reuse"))


def test_fig6b_time_per_accepted_sample(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig6_reuse_per_sample,
        args=(config,),
        kwargs={
            "workload_names": ("UQ1", "UQ2", "UQ3"),
            "sample_size": 200,
            # A warm-up budget below the sample size drains the reuse pool, so
            # both the reuse and the regular phase are measured.
            "walks_per_join": 60,
        },
        rounds=1,
        iterations=1,
    )
    record_table(table)
    for row in table.rows:
        assert row["reused_samples"] + row["regular_samples"] >= 200
        # The reuse phase accepts samples at least as fast as the regular
        # phase (paper Fig. 6b), allowing generous slack for timer noise on
        # sub-millisecond measurements.
        if row["reused_samples"] > 0 and row["regular_samples"] > 0:
            assert row["reuse_phase_seconds"] <= row["regular_phase_seconds"] * 3.0
