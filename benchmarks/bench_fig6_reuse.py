"""Fig. 6a / 6b — sample reuse, plus the block-pipeline cache tier (6c).

Paper shape: reusing the warm-up walks makes online sampling faster (the gap
is largest for the workload with the largest union), and the time per accepted
sample in the reuse phase is much smaller than in the regular phase.

6c extends the reuse idea across queries: the :class:`repro.cache.SampleCache`
tier materializes the ``SampleBlock`` streams one online aggregation draws and
serves later aggregates over the same join shape from them — the modern,
struct-of-arrays successor of the per-sampler reuse pool.  The benchmark
primes the cache with one cold run and measures a fully cached follow-up,
asserting it is served from cached blocks alone at the same error target.
"""

from repro.aqp import AggregateSpec, OnlineAggregator
from repro.cache import SampleCache
from repro.experiments.figures import run_fig6_reuse_per_sample, run_fig6_reuse_time
from repro.tpch.workloads import build_uq1

REL_ERROR = 0.05


def test_fig6a_time_with_and_without_reuse(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig6_reuse_time,
        args=(config,),
        kwargs={"workload_names": ("UQ1", "UQ2", "UQ3")},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    assert [row["samples"] for row in table.rows] == list(config.sample_sizes)
    for name in ("UQ1", "UQ2", "UQ3"):
        assert all(v > 0 for v in table.column(f"{name}:reuse"))
        assert all(v > 0 for v in table.column(f"{name}:no-reuse"))


def test_fig6b_time_per_accepted_sample(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig6_reuse_per_sample,
        args=(config,),
        kwargs={
            "workload_names": ("UQ1", "UQ2", "UQ3"),
            "sample_size": 200,
            # A warm-up budget below the sample size drains the reuse pool, so
            # both the reuse and the regular phase are measured.
            "walks_per_join": 60,
        },
        rounds=1,
        iterations=1,
    )
    record_table(table)
    for row in table.rows:
        assert row["reused_samples"] + row["regular_samples"] >= 200
        # The reuse phase accepts samples at least as fast as the regular
        # phase (paper Fig. 6b), allowing generous slack for timer noise on
        # sub-millisecond measurements.
        if row["reused_samples"] > 0 and row["regular_samples"] > 0:
            assert row["reuse_phase_seconds"] <= row["regular_phase_seconds"] * 3.0


def test_fig6c_cross_query_block_reuse(benchmark, config):
    """A cached follow-up aggregate is served from blocks, not fresh draws."""
    workload = build_uq1(scale_factor=config.scale_factor, seed=config.seed)
    query = workload.queries[0]
    cache = SampleCache()
    cold = OnlineAggregator(
        query, AggregateSpec("sum", attribute="totalprice"),
        method="exact-weight", seed=11, cache=cache,
    )
    cold_report = cold.until(REL_ERROR)
    assert cold.cached_samples == 0 and cold.fresh_samples > 0

    def cached_run():
        aggregator = OnlineAggregator(
            query, AggregateSpec("avg", attribute="totalprice"),
            method="exact-weight", seed=12, cache=cache,
        )
        return aggregator, aggregator.until(REL_ERROR)

    aggregator, report = benchmark.pedantic(cached_run, rounds=3, iterations=1)
    # Entirely re-consumed: every sample of the follow-up came from the
    # stream the cold run published, at the same error target.
    assert aggregator.cached_samples >= cold.fresh_samples
    assert aggregator.fresh_samples == 0
    assert report.max_relative_half_width() <= REL_ERROR
    assert cold_report.max_relative_half_width() <= REL_ERROR
