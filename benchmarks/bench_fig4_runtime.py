"""Fig. 4c / 4d — runtime of union-size estimation: histogram-based vs FullJoin.

Paper shape: the histogram-based warm-up is orders of magnitude cheaper than
executing the full joins and computing the union, and the gap widens as the
data/overlap grows.
"""

from repro.experiments.figures import run_fig4_runtime


def test_fig4c_uq1_runtime(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig4_runtime, args=("UQ1", config), rounds=1, iterations=1
    )
    record_table(table)
    # The histogram estimate must beat the full-join baseline at every overlap scale.
    for row in table.rows:
        assert row["histogram_seconds"] < row["full_join_seconds"]


def test_fig4d_uq3_runtime(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_fig4_runtime, args=("UQ3", config), rounds=1, iterations=1
    )
    record_table(table)
    for row in table.rows:
        assert row["histogram_seconds"] < row["full_join_seconds"]
