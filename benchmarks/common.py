"""Shared plumbing for the plain-script benchmarks (``bench_*.py`` mains).

Every script used to open with the same ritual: compute the repo root, put
``src`` on ``sys.path``, build a TPC-H workload at ``BENCH_CONFIG`` scale,
and end by dumping a JSON report next to the repository root.  That
boilerplate lives here once; the scripts keep only their measurement logic.

Importing this module performs the path bootstrap as a side effect, so a
script's first line of real imports can already see ``repro``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.config import BENCH_CONFIG  # noqa: E402
from repro.tpch.workloads import build_uq1, build_uq2  # noqa: E402


def uq1_workload(overlap_scale: float = 0.3):
    """The UQ1 union workload at the shared benchmark scale/seed."""
    return build_uq1(
        scale_factor=BENCH_CONFIG.scale_factor,
        overlap_scale=overlap_scale,
        seed=BENCH_CONFIG.seed,
    )


def uq2_workload():
    """The UQ2 union workload at the shared benchmark scale/seed."""
    return build_uq2(scale_factor=BENCH_CONFIG.scale_factor, seed=BENCH_CONFIG.seed)


def machine_info() -> Dict[str, object]:
    """The environment fields every report records."""
    return {
        "scale_factor": BENCH_CONFIG.scale_factor,
        "seed": BENCH_CONFIG.seed,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def write_report(filename: str, report: dict) -> Path:
    """Write ``report`` as ``<repo root>/<filename>`` and echo it to stdout."""
    out_path = REPO_ROOT / filename
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out_path}")
    return out_path


def timed_rate(step: Callable[[], int], seconds: float = 0.5) -> float:
    """Events/second of ``step`` (which returns the events of one call)."""
    done = 0
    started = time.perf_counter()
    while time.perf_counter() - started < seconds:
        done += step()
    return done / (time.perf_counter() - started)


def resident_cache_bytes(queries) -> Dict[str, object]:
    """Resident bytes of the array caches behind one or more queries.

    Reports, per relation, the columnar-store and CSR-index bytes under the
    smallest-safe-dtype audit, next to what the same arrays would occupy at
    NumPy's int64 default — the number the audit is accountable for.
    """
    if not isinstance(queries, (list, tuple)):
        queries = [queries]
    seen = {}
    for query in queries:
        for name, relation in query.relations.items():
            seen.setdefault(name, relation)
    per_relation = {}
    total = {"bytes": 0, "int64_equivalent_bytes": 0}
    for name, relation in sorted(seen.items()):
        sizes = relation.cache_nbytes()
        equivalent = _int64_equivalent(relation)
        per_relation[name] = {
            "rows": len(relation),
            "columns_bytes": sizes["columns"],
            "csr_bytes": sizes["csr_indexes"],
            "int64_equivalent_bytes": equivalent,
        }
        total["bytes"] += sizes["columns"] + sizes["csr_indexes"]
        total["int64_equivalent_bytes"] += equivalent
    if total["int64_equivalent_bytes"]:
        total["ratio_vs_int64"] = round(
            total["bytes"] / total["int64_equivalent_bytes"], 3
        )
    return {"per_relation": per_relation, "total": total}


def _int64_equivalent(relation) -> int:
    """Bytes the relation's array caches would occupy at 8 bytes/element."""
    equivalent = 0
    columns = relation._columns
    if columns is not None:
        for array in list(columns._arrays.values()) + list(columns._key_arrays.values()):
            if array.dtype.kind in ("i", "u", "f"):
                equivalent += array.size * 8
            else:
                equivalent += array.nbytes
    for csr in relation._sorted_indexes.values():
        equivalent += (csr.row_positions.size + csr.offsets.size) * 8
    return int(equivalent)


__all__ = [
    "REPO_ROOT",
    "BENCH_CONFIG",
    "uq1_workload",
    "uq2_workload",
    "machine_info",
    "write_report",
    "timed_rate",
    "resident_cache_bytes",
]
