"""Ablations called out in DESIGN.md.

* A1 — Bernoulli vs non-Bernoulli (cover-based) set-union sampling (§3): the
  Bernoulli union trick needs more draws per accepted sample on overlapping
  joins.
* A2 — standard-template choice (§8.1.2): the score-optimized template yields
  an overlap bound at least as tight as a naive alphabetical ordering.
"""

from repro.experiments.figures import run_ablation_bernoulli, run_ablation_template


def test_ablation_bernoulli_vs_cover(benchmark, config, record_table):
    table = benchmark.pedantic(
        run_ablation_bernoulli, args=(config,), kwargs={"sample_size": 100},
        rounds=1, iterations=1,
    )
    record_table(table)
    rows = {row["policy"]: row for row in table.rows}
    assert set(rows) == {"bernoulli", "cover-record", "cover-strict"}
    assert all(row["draws_per_sample"] >= 1.0 for row in table.rows)


def test_ablation_template_choice(benchmark, config, record_table):
    table = benchmark.pedantic(run_ablation_template, args=(config,), rounds=1, iterations=1)
    record_table(table)
    rows = {row["template"]: row for row in table.rows}
    assert rows["score-optimized"]["overlap_bound"] <= rows["alphabetical"]["overlap_bound"] * 1.001
    for row in table.rows:
        assert row["overlap_bound"] >= row["exact_overlap"] * 0.999
