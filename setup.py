"""Setuptools shim so the package can be installed offline (no wheel available).

The canonical metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` / legacy editable installs in offline environments.
"""
from setuptools import setup

setup()
