"""Random-walk overlap and union-size estimation (paper §6).

This is the *centralized* instantiation of the warm-up phase: when relations
can be accessed directly, wander-join random walks estimate both the join
sizes (Horvitz–Thompson, §6.1) and the overlap sizes (§6.2):

* fix a pivot join ``J_j`` in Δ and keep sampling results ``t`` with their walk
  probabilities ``p(t)``;
* conceptually replicate each sampled ``t`` ``1/p(t)`` times so the weighted
  sample ``S'_j`` preserves the distribution of ``J_j``;
* probe every other join in Δ with hash-index lookups to see whether it also
  contains ``t`` (:class:`~repro.joins.membership.JoinMembershipProber`);
* the overlap is then ``|O_Δ| = |J_j| · |∩ S'_i| / |S'_j|`` (Eq. 2), with the
  confidence interval of Eq. 3.

The walks performed during the warm-up are *not* wasted: the estimator keeps
every successful walk together with its probability so the online union
sampler (§7) can reuse them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.estimation.base import UnionSizeEstimator
from repro.joins.membership import JoinMembershipProber
from repro.joins.query import JoinQuery
from repro.sampling.wander_join import RunningEstimator, SizeEstimate, WanderJoin, z_value
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass
class CollectedSample:
    """One successful warm-up walk, kept for reuse by the online sampler."""

    query_name: str
    value: Tuple
    probability: float


@dataclass
class OverlapEstimate:
    """An overlap estimate with its variance and confidence interval (Eq. 3)."""

    value: float
    ratio: float
    variance: float
    half_width: float
    confidence: float
    walks: int


class RandomWalkUnionEstimator(UnionSizeEstimator):
    """Warm-up phase instantiation based on wander-join random walks.

    Parameters
    ----------
    queries:
        Joins of the union.
    walks_per_join:
        Number of random walks used per join for both size and overlap
        estimation (the paper stops at a confidence target or 1,000 samples;
        :meth:`prepare` honours ``confidence``/``relative_half_width`` first
        and caps at ``walks_per_join``).
    confidence / relative_half_width:
        Termination rule for the per-join size estimate.
    exact_join_sizes:
        Optional exact sizes ``|J_j|`` to plug into Eq. 2 instead of the HT
        estimates (the paper treats ``|J_j|`` as exact when analysing Eq. 2).
    """

    method = "random-walk"

    def __init__(
        self,
        queries: Sequence[JoinQuery],
        walks_per_join: int = 1000,
        confidence: float = 0.9,
        relative_half_width: float = 0.1,
        min_walks: int = 100,
        seed: RandomState = None,
        exact_join_sizes: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(queries)
        if walks_per_join <= 0:
            raise ValueError("walks_per_join must be positive")
        self.walks_per_join = walks_per_join
        self.confidence = confidence
        self.relative_half_width = relative_half_width
        self.min_walks = min(min_walks, walks_per_join)
        self.exact_join_sizes = dict(exact_join_sizes or {})
        rngs = spawn_rngs(seed, len(self.queries))
        self._walkers: Dict[str, WanderJoin] = {
            q.name: WanderJoin(q, seed=rng) for q, rng in zip(self.queries, rngs)
        }
        self._probers: Dict[str, JoinMembershipProber] = {
            q.name: JoinMembershipProber(q) for q in self.queries
        }
        self._samples: Dict[str, List[CollectedSample]] = {q.name: [] for q in self.queries}
        self._size_estimates: Dict[str, SizeEstimate] = {}
        self._membership_cache: Dict[Tuple[str, Tuple], bool] = {}
        self._prepared = False

    # ---------------------------------------------------------------- warm-up
    def prepare(self) -> None:
        """Run the warm-up walks for every join (idempotent)."""
        if self._prepared:
            return
        for query in self.queries:
            self._warmup_join(query)
        self._prepared = True

    def _warmup_join(self, query: JoinQuery) -> None:
        walker = self._walkers[query.name]
        estimator = RunningEstimator()
        samples = self._samples[query.name]
        # Walks run in vectorized batches: the first batch covers the minimum
        # walk budget, later ones re-check the confidence target per batch.
        while estimator.count < self.walks_per_join:
            if estimator.count < self.min_walks:
                chunk = self.min_walks - estimator.count
            else:
                chunk = min(64, self.walks_per_join - estimator.count)
            for result in walker.walk_batch(chunk):
                estimator.add(result.inverse_probability)
                if result.success:
                    samples.append(
                        CollectedSample(query.name, result.value, result.probability)
                    )
            if estimator.count >= self.min_walks:
                estimate = estimator.estimate(self.confidence)
                if (
                    estimate.estimate > 0
                    and estimate.relative_half_width <= self.relative_half_width
                ):
                    break
        self._size_estimates[query.name] = estimator.estimate(self.confidence)

    # ------------------------------------------------------------------ sizes
    def join_size(self, query: JoinQuery) -> float:
        self.prepare()
        if query.name in self.exact_join_sizes:
            return float(self.exact_join_sizes[query.name])
        return max(self._size_estimates[query.name].estimate, 0.0)

    def size_estimate(self, name: str) -> SizeEstimate:
        """The full HT size estimate (with confidence interval) for one join."""
        self.prepare()
        return self._size_estimates[name]

    # ---------------------------------------------------------------- overlap
    def overlap(self, queries: Sequence[JoinQuery]) -> float:
        return self.overlap_estimate(queries).value

    def overlap_estimate(self, queries: Sequence[JoinQuery]) -> OverlapEstimate:
        """Eq. 2 estimate with the Eq. 3 confidence interval."""
        self.prepare()
        if len(queries) < 2:
            raise ValueError("overlap_estimate needs at least two joins")
        pivot = self._pivot(queries)
        others = [q for q in queries if q.name != pivot.name]
        samples = self._samples[pivot.name]
        if not samples:
            return OverlapEstimate(0.0, 0.0, 0.0, 0.0, self.confidence, 0)

        total_weight = 0.0
        overlap_weight = 0.0
        hits = 0
        for sample in samples:
            weight = 1.0 / sample.probability if sample.probability > 0 else 0.0
            total_weight += weight
            if all(self._contains(q, sample.value) for q in others):
                overlap_weight += weight
                hits += 1
        if total_weight <= 0:
            return OverlapEstimate(0.0, 0.0, 0.0, 0.0, self.confidence, len(samples))

        ratio = overlap_weight / total_weight
        join_size = self.join_size(pivot)
        value = join_size * ratio

        # Eq. 3: combine the binomial variance of the ratio with the variance
        # of the HT join-size estimate (delta method, independence assumed).
        walk_count = max(len(samples), 1)
        p_hat = hits / walk_count
        ratio_var = p_hat * (1.0 - p_hat) / walk_count
        size_estimate = self._size_estimates[pivot.name]
        size_var = (
            0.0
            if pivot.name in self.exact_join_sizes
            else size_estimate.variance / max(size_estimate.walks, 1)
        )
        variance = (
            (join_size ** 2) * ratio_var
            + (ratio ** 2) * size_var
            + size_var * ratio_var
        )
        half_width = z_value(self.confidence) * math.sqrt(max(variance, 0.0))
        return OverlapEstimate(
            value=value,
            ratio=ratio,
            variance=variance,
            half_width=half_width,
            confidence=self.confidence,
            walks=len(samples),
        )

    def _pivot(self, queries: Sequence[JoinQuery]) -> JoinQuery:
        """The join whose samples drive Eq. 2: the smallest estimated join."""
        return min(queries, key=lambda q: self.join_size(q))

    def _contains(self, query: JoinQuery, value: Tuple) -> bool:
        key = (query.name, value)
        if key not in self._membership_cache:
            self._membership_cache[key] = self._probers[query.name].contains(value)
        return self._membership_cache[key]

    # ------------------------------------------------------------------ reuse
    def collected_samples(self, name: str) -> List[CollectedSample]:
        """Warm-up walk results of one join (for §7 sample reuse)."""
        self.prepare()
        return list(self._samples[name])

    def all_collected_samples(self) -> Dict[str, List[CollectedSample]]:
        self.prepare()
        return {name: list(samples) for name, samples in self._samples.items()}

    def total_walks(self) -> int:
        """Total random walks performed during the warm-up."""
        return sum(w.walk_count for w in self._walkers.values())


__all__ = ["RandomWalkUnionEstimator", "CollectedSample", "OverlapEstimate"]
