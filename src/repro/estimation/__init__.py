"""Warm-up phase estimators: exact, histogram-based, and random-walk."""

from repro.estimation.base import UnionSizeEstimator
from repro.estimation.exact import FullJoinUnion, FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.parameters import UnionParameters
from repro.estimation.random_walk import (
    CollectedSample,
    OverlapEstimate,
    RandomWalkUnionEstimator,
)
from repro.estimation.union_size import (
    compute_all_overlaps,
    compute_k_overlaps,
    cover_sizes_from_overlaps,
    powerset,
    union_size_from_k_overlaps,
    union_size_inclusion_exclusion,
)

__all__ = [
    "UnionParameters",
    "UnionSizeEstimator",
    "FullJoinUnionEstimator",
    "FullJoinUnion",
    "HistogramUnionEstimator",
    "RandomWalkUnionEstimator",
    "CollectedSample",
    "OverlapEstimate",
    "powerset",
    "compute_all_overlaps",
    "compute_k_overlaps",
    "union_size_from_k_overlaps",
    "cover_sizes_from_overlaps",
    "union_size_inclusion_exclusion",
]
