"""Union-size calculus: k-overlaps, Theorem 3, Equation 1 and cover sizes.

Section 4 of the paper reduces the set-union size of joins to smaller-unit
statistics: the *k-overlaps* ``A^k_j`` of each join (tuples of ``J_j`` shared
with exactly ``k-1`` other joins).  Given a way to evaluate the overlap
``|O_Δ|`` of any subset Δ of joins, the k-overlaps follow from the top-down
recursion of Theorem 3,

    |A^k_j| = Σ_{Δ ∈ P_k, J_j ∈ Δ} |O_Δ|  −  Σ_{r=k+1}^{n} C(r-1, k-1) · |A^r_j|,

and the union size from Equation 1,

    |U| = Σ_j Σ_k |A^k_j| / k.

The cover sizes ``|J'_i|`` of §3.1 follow from inclusion–exclusion over the
joins preceding ``J_i`` in the declared order.

All functions take an ``overlap_of`` callback mapping a frozenset of join
names to ``|O_Δ|`` (with singletons mapping to ``|J_j|``), so the same calculus
serves the exact, histogram and random-walk instantiations.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Sequence

OverlapFunction = Callable[[FrozenSet[str]], float]

#: Number of joins above which the exponential powerset enumeration is refused.
MAX_JOINS_FOR_EXACT_LATTICE = 16


def powerset(names: Sequence[str], min_size: int = 1) -> List[FrozenSet[str]]:
    """All subsets of ``names`` with at least ``min_size`` elements."""
    subsets: List[FrozenSet[str]] = []
    for size in range(min_size, len(names) + 1):
        subsets.extend(frozenset(c) for c in itertools.combinations(names, size))
    return subsets


def compute_all_overlaps(
    names: Sequence[str], overlap_of: OverlapFunction
) -> Dict[FrozenSet[str], float]:
    """Evaluate ``|O_Δ|`` for every non-empty subset Δ (bottom-up over the lattice)."""
    if len(names) > MAX_JOINS_FOR_EXACT_LATTICE:
        raise ValueError(
            f"{len(names)} joins would require {2 ** len(names)} overlap evaluations; "
            "reduce the number of joins or use a sparser estimator"
        )
    overlaps: Dict[FrozenSet[str], float] = {}
    for subset in powerset(names, min_size=1):
        value = float(overlap_of(subset))
        if value < 0:
            value = 0.0
        overlaps[subset] = value
    return _enforce_monotonicity(names, overlaps)


def _enforce_monotonicity(
    names: Sequence[str], overlaps: Dict[FrozenSet[str], float]
) -> Dict[FrozenSet[str], float]:
    """Clamp overlap estimates so that Δ ⊆ Δ' implies |O_Δ'| ≤ |O_Δ|.

    Estimated overlaps (histogram bounds, random-walk estimates) can violate
    the set-theoretic monotonicity that the k-overlap recursion assumes;
    clamping each subset against its immediate sub-subsets restores it.
    """
    adjusted = dict(overlaps)
    for size in range(2, len(names) + 1):
        for subset in (frozenset(c) for c in itertools.combinations(names, size)):
            cap = min(adjusted[subset - {name}] for name in subset)
            if adjusted[subset] > cap:
                adjusted[subset] = cap
    return adjusted


def compute_k_overlaps(
    names: Sequence[str], overlaps: Mapping[FrozenSet[str], float]
) -> Dict[str, Dict[int, float]]:
    """``|A^k_j|`` for every join ``j`` and ``k = 1..n`` via Theorem 3."""
    n = len(names)
    result: Dict[str, Dict[int, float]] = {}
    subsets_by_size: Dict[int, List[FrozenSet[str]]] = {
        size: [frozenset(c) for c in itertools.combinations(names, size)]
        for size in range(1, n + 1)
    }
    for name in names:
        areas: Dict[int, float] = {}
        for k in range(n, 0, -1):
            total = sum(
                overlaps[subset]
                for subset in subsets_by_size[k]
                if name in subset
            )
            correction = sum(
                comb(r - 1, k - 1) * areas[r] for r in range(k + 1, n + 1)
            )
            areas[k] = max(total - correction, 0.0)
        result[name] = areas
    return result


def union_size_from_k_overlaps(k_overlaps: Mapping[str, Mapping[int, float]]) -> float:
    """Equation 1: ``|U| = Σ_j Σ_k |A^k_j| / k``."""
    total = 0.0
    for areas in k_overlaps.values():
        for k, size in areas.items():
            total += size / k
    return total


def cover_sizes_from_overlaps(
    names: Sequence[str], overlaps: Mapping[FrozenSet[str], float]
) -> Dict[str, float]:
    """Cover sizes ``|J'_i|`` via inclusion–exclusion (§3.1).

    ``|J'_i| = Σ_{Δ ⊆ S_i} (−1)^{|Δ|} |O_{Δ ∪ {J_i}}|`` where ``S_i`` is the set
    of joins declared before ``J_i``; the empty Δ contributes ``+|J_i|``.
    Results are clamped to be non-negative (estimation noise can push the
    alternating sum slightly below zero).
    """
    covers: Dict[str, float] = {}
    for position, name in enumerate(names):
        earlier = list(names[:position])
        total = 0.0
        for size in range(0, len(earlier) + 1):
            for delta in itertools.combinations(earlier, size):
                subset = frozenset(delta) | {name}
                total += ((-1) ** size) * overlaps[subset]
        covers[name] = max(total, 0.0)
    return covers


def union_size_inclusion_exclusion(
    names: Sequence[str], overlaps: Mapping[FrozenSet[str], float]
) -> float:
    """Classical inclusion–exclusion union size (used as a cross-check)."""
    total = 0.0
    for subset, value in overlaps.items():
        total += ((-1) ** (len(subset) + 1)) * value
    return max(total, 0.0)


__all__ = [
    "OverlapFunction",
    "MAX_JOINS_FOR_EXACT_LATTICE",
    "powerset",
    "compute_all_overlaps",
    "compute_k_overlaps",
    "union_size_from_k_overlaps",
    "cover_sizes_from_overlaps",
    "union_size_inclusion_exclusion",
]
