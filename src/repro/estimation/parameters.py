"""Union sampling parameters.

Every instantiation of the union-sampling framework (exact, histogram-based,
random-walk) produces the same bundle of quantities that Algorithm 1 and 2
consume: per-join sizes ``|J_j|``, cover sizes ``|J'_j|``, the union size
``|U|`` and the pairwise-and-higher overlap sizes ``|O_Δ|``.
:class:`UnionParameters` is that bundle; samplers accept any instance of it,
which is what makes the estimators interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence


@dataclass
class UnionParameters:
    """Parameter estimates shared by all union-sampling algorithms.

    Attributes
    ----------
    join_order:
        Join names in declaration order (the cover order of §3.1).
    join_sizes:
        ``|J_j|`` per join name.
    cover_sizes:
        ``|J'_j|`` per join name (size of the join's exclusive cover region).
    union_size:
        ``|U| = |J_1 ∪ ... ∪ J_n|``.
    overlaps:
        ``|O_Δ|`` per subset Δ of join names with ``|Δ| >= 2``.
    method:
        Name of the estimator that produced these values.
    metadata:
        Free-form extra information (template used, walk counts, timings ...).
    """

    join_order: Sequence[str]
    join_sizes: Dict[str, float]
    cover_sizes: Dict[str, float]
    union_size: float
    overlaps: Dict[FrozenSet[str], float] = field(default_factory=dict)
    method: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.join_order = tuple(self.join_order)
        missing = [n for n in self.join_order if n not in self.join_sizes]
        if missing:
            raise ValueError(f"join_sizes missing entries for {missing}")
        missing = [n for n in self.join_order if n not in self.cover_sizes]
        if missing:
            raise ValueError(f"cover_sizes missing entries for {missing}")
        if self.union_size < 0:
            raise ValueError("union_size must be non-negative")

    # ------------------------------------------------------------------ views
    def join_size(self, name: str) -> float:
        return self.join_sizes[name]

    def cover_size(self, name: str) -> float:
        return self.cover_sizes[name]

    def overlap(self, names: Sequence[str]) -> float:
        """``|O_Δ|`` for the given joins (``|J_j|`` when only one name is given)."""
        key = frozenset(names)
        if len(key) == 1:
            return self.join_sizes[next(iter(key))]
        return self.overlaps.get(key, 0.0)

    def join_to_union_ratio(self, name: str) -> float:
        """``|J_j| / |U|`` — the quantity whose estimation error Fig. 4/5a reports."""
        if self.union_size <= 0:
            return 0.0
        return self.join_sizes[name] / self.union_size

    def selection_probabilities(self, use_cover: bool = True) -> Dict[str, float]:
        """Normalized join-selection distribution for the samplers.

        With ``use_cover=True`` (Algorithm 1) probabilities are proportional to
        the cover sizes ``|J'_j|``; otherwise to the full join sizes ``|J_j|``
        (the disjoint-union / strict-cover variants).
        """
        weights = self.cover_sizes if use_cover else self.join_sizes
        values = [max(weights[n], 0.0) for n in self.join_order]
        total = sum(values)
        if total <= 0:
            uniform = 1.0 / len(self.join_order)
            return {n: uniform for n in self.join_order}
        return {n: v / total for n, v in zip(self.join_order, values)}

    def disjoint_union_size(self) -> float:
        """``|J_1| + ... + |J_n|`` (the disjoint-union size)."""
        return sum(self.join_sizes[n] for n in self.join_order)

    # ------------------------------------------------------------- diagnostics
    def ratio_errors(self, exact: "UnionParameters") -> Dict[str, float]:
        """Absolute error of ``|J_j|/|U|`` against exact parameters (Fig. 4a/4b/5a)."""
        return {
            name: abs(self.join_to_union_ratio(name) - exact.join_to_union_ratio(name))
            for name in self.join_order
        }

    def describe(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "union_size": self.union_size,
            "join_sizes": dict(self.join_sizes),
            "cover_sizes": dict(self.cover_sizes),
            "disjoint_union_size": self.disjoint_union_size(),
        }


__all__ = ["UnionParameters"]
