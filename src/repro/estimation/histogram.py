"""Histogram-based overlap and union-size estimation (paper §5 and §8).

This is the *decentralized* instantiation of the warm-up phase: it only needs
column statistics (value-frequency histograms on join attributes and maximum
degrees), never the data itself, which makes it suitable for data markets or
web sources where tuple access is expensive.

Estimation proceeds in two modes:

* **direct** (§5.1) — when the joins in Δ are chains of the same length whose
  relations correspond positionally (the UQ1 / UQ2 shape), the overlap bound is
  built stage by stage:

      K(1) = Σ_v  min_j { d_{A_1}(v, R_{j,1}) · d_{A_1}(v, R_{j,2}) }
      K(i) = K(i-1) · min_j { M_{A_i}(R_{j,i+1}) }          (or average degree)

* **split** (§5.2, §8.1) — otherwise every join is rewritten against a shared
  standard template into a base chain of two-attribute relations (see
  :mod:`repro.joins.splitting`), fake joins contribute a factor of 1, and the
  same recurrence is applied to the derived chains (Theorem 4).

Join sizes themselves can be instantiated with the Extended Olken bound
(``"eo"``) or with exact weights (``"ew"``), mirroring the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.estimation.base import UnionSizeEstimator
from repro.joins.join_tree import build_join_tree
from repro.joins.query import JoinQuery, JoinType
from repro.joins.splitting import SplitChain, build_split_chains
from repro.joins.template import Template, find_standard_template
from repro.sampling.olken import olken_upper_bound
from repro.sampling.weights import ExactWeightFunction


class HistogramUnionEstimator(UnionSizeEstimator):
    """Warm-up phase instantiation based on histograms and degree statistics.

    Parameters
    ----------
    queries:
        The joins of the union.
    join_size_method:
        ``"eo"`` — extended Olken upper bound (cheapest, loosest) or
        ``"ew"`` — exact weights (the ground-truth weight instantiation used
        in the paper's evaluation).
    refinement:
        ``"max"`` uses maximum degrees (guaranteed upper bound, §5.1) while
        ``"average"`` uses average degrees (tighter but no longer a bound).
    mode:
        ``"auto"`` (default) picks the direct recurrence when all joins in Δ
        are positionally aligned chains and falls back to splitting otherwise;
        ``"direct"`` / ``"split"`` force one path.
    template / zero_distance_weight:
        Standard template for the split path; searched automatically when not
        supplied (see :func:`repro.joins.template.find_standard_template`).
    """

    method = "histogram"

    def __init__(
        self,
        queries: Sequence[JoinQuery],
        join_size_method: str = "eo",
        refinement: str = "max",
        mode: str = "auto",
        template: Optional[Template] = None,
        zero_distance_weight: float = 0.0,
    ) -> None:
        super().__init__(queries)
        if join_size_method not in ("eo", "ew"):
            raise ValueError("join_size_method must be 'eo' or 'ew'")
        if refinement not in ("max", "average"):
            raise ValueError("refinement must be 'max' or 'average'")
        if mode not in ("auto", "direct", "split"):
            raise ValueError("mode must be 'auto', 'direct' or 'split'")
        self.join_size_method = join_size_method
        self.refinement = refinement
        self.mode = mode
        self.zero_distance_weight = zero_distance_weight
        self._template = template
        self._split_chains: Optional[Dict[str, SplitChain]] = None
        self._join_size_cache: Dict[str, float] = {}

    # ----------------------------------------------------------------- sizes
    def join_size(self, query: JoinQuery) -> float:
        if query.name not in self._join_size_cache:
            if self.join_size_method == "ew":
                size = ExactWeightFunction(query).total_weight
            else:
                size = olken_upper_bound(query)
            self._join_size_cache[query.name] = float(size)
        return self._join_size_cache[query.name]

    # ---------------------------------------------------------------- overlap
    def overlap(self, queries: Sequence[JoinQuery]) -> float:
        if len(queries) == 1:
            return self.join_size(queries[0])
        if self.mode == "direct" or (self.mode == "auto" and self._directly_alignable(queries)):
            bound = self._direct_overlap(queries)
        else:
            bound = self._split_overlap(queries)
        # An overlap can never exceed the smallest participating join.
        return min(bound, min(self.join_size(q) for q in queries))

    # ------------------------------------------------------------ direct mode
    def _directly_alignable(self, queries: Sequence[JoinQuery]) -> bool:
        """True when all joins are chains with the same number of relations."""
        lengths = set()
        for query in queries:
            if query.join_type is not JoinType.CHAIN:
                return False
            lengths.add(len(query.relation_names))
        return len(lengths) == 1

    def _direct_overlap(self, queries: Sequence[JoinQuery]) -> float:
        """The §5.1 recurrence over positionally corresponding chain relations."""
        stage_degrees: List[Tuple[Mapping[object, float], ...]] = []
        per_query_stages = []
        for query in queries:
            tree = build_join_tree(query)
            chain = tree.chain_relations()
            edges = []
            node = tree.root
            while node.children:
                child = node.children[0]
                edges.append((node.relation, child.relation, child))
                node = child
            per_query_stages.append((query, chain, edges))

        length = len(per_query_stages[0][1])
        if any(len(chain) != length for _, chain, _ in per_query_stages):
            raise ValueError("direct overlap estimation requires equal-length chains")
        if length == 1:
            return min(float(len(q.relation(chain[0]))) for q, chain, _ in per_query_stages)

        # Stage 1: per-value pair bound between the first two relations.
        first_histograms = []
        for query, chain, edges in per_query_stages:
            parent_name, child_name, child_node = edges[0]
            parent_rel = query.relation(parent_name)
            child_rel = query.relation(child_name)
            d_parent = parent_rel.statistics_on_columns(child_node.parent_attributes)
            d_child = child_rel.statistics_on_columns(child_node.child_attributes)
            first_histograms.append((d_parent.frequencies(), d_child.frequencies()))

        smallest = min(first_histograms, key=lambda pair: len(pair[0]))[0]
        k_value = 0.0
        for value in smallest:
            per_join = []
            for d_parent, d_child in first_histograms:
                pairs = float(d_parent.get(value, 0)) * float(d_child.get(value, 0))
                per_join.append(pairs)
            k_value += min(per_join)

        # Stages 2..n-1: multiply by the minimum degree bound of the next hop.
        for stage in range(1, length - 1):
            factors = []
            for query, chain, edges in per_query_stages:
                _, child_name, child_node = edges[stage]
                stats = query.relation(child_name).statistics_on_columns(
                    child_node.child_attributes
                )
                if self.refinement == "max":
                    factors.append(float(stats.max_degree))
                else:
                    factors.append(float(stats.average_degree))
            k_value *= min(factors)
            if k_value == 0.0:
                return 0.0
        return k_value

    # ------------------------------------------------------------- split mode
    @property
    def template(self) -> Template:
        """The standard template used by the split path (computed lazily)."""
        if self._template is None:
            self._template = find_standard_template(
                self.queries, zero_distance_weight=self.zero_distance_weight
            )
        return self._template

    def _chains(self) -> Dict[str, SplitChain]:
        if self._split_chains is None:
            chains = build_split_chains(self.queries, template=self.template)
            self._split_chains = {c.query_name: c for c in chains}
        return self._split_chains

    def _split_overlap(self, queries: Sequence[JoinQuery]) -> float:
        """Theorem 4 over the base chains derived from the shared template."""
        chains = [self._chains()[q.name] for q in queries]
        length = len(chains[0])
        if any(len(c) != length for c in chains):
            raise AssertionError("split chains built from one template must align")
        if length == 0:
            return 0.0
        if length == 1:
            return min(c.relations[0].size_bound for c in chains)

        join_attr = chains[0].relations[0].second
        smallest = min(
            (c.relations[0].degrees(join_attr) for c in chains), key=len
        )
        k_value = 0.0
        for value in smallest:
            per_join = []
            for chain in chains:
                first, second = chain.relations[0], chain.relations[1]
                if chain.fake_joins[0]:
                    pairs = first.degree(join_attr, value)
                else:
                    pairs = first.degree(join_attr, value) * second.degree(join_attr, value)
                per_join.append(pairs)
            k_value += min(per_join)

        for hop in range(1, length - 1):
            factors = []
            for chain in chains:
                if chain.fake_joins[hop]:
                    factors.append(1.0)
                    continue
                nxt = chain.relations[hop + 1]
                shared = nxt.first
                if self.refinement == "max":
                    factors.append(nxt.max_degree(shared))
                else:
                    factors.append(nxt.average_degree(shared))
            k_value *= min(factors)
            if k_value == 0.0:
                return 0.0
        return k_value


__all__ = ["HistogramUnionEstimator"]
