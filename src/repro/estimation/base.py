"""Base class shared by all union-parameter estimators (the warm-up phase).

An estimator has to answer two questions — "how big is join ``J_j``?" and
"how big is the overlap of the joins in Δ?" — and everything else (k-overlaps,
union size, cover sizes) follows from the calculus in
:mod:`repro.estimation.union_size`.  Subclasses implement :meth:`join_size`
and :meth:`overlap`; :meth:`estimate` assembles a
:class:`~repro.estimation.parameters.UnionParameters`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.estimation.parameters import UnionParameters
from repro.estimation.union_size import (
    compute_all_overlaps,
    compute_k_overlaps,
    cover_sizes_from_overlaps,
    union_size_from_k_overlaps,
)
from repro.joins.query import JoinQuery, check_union_compatible


class UnionSizeEstimator(ABC):
    """Estimates join sizes, overlap sizes, cover sizes and the union size."""

    #: identifier recorded in the produced :class:`UnionParameters`
    method: str = "abstract"

    def __init__(self, queries: Sequence[JoinQuery]) -> None:
        check_union_compatible(list(queries))
        self.queries: List[JoinQuery] = list(queries)
        self._by_name: Dict[str, JoinQuery] = {q.name: q for q in self.queries}
        self._overlap_cache: Dict[FrozenSet[str], float] = {}

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def join_size(self, query: JoinQuery) -> float:
        """Estimate (or bound) ``|J_j|``."""

    @abstractmethod
    def overlap(self, queries: Sequence[JoinQuery]) -> float:
        """Estimate (or bound) ``|O_Δ|`` for two or more joins."""

    def prepare(self) -> None:
        """Optional warm-up hook (e.g. random walks); called once by estimate()."""

    # --------------------------------------------------------------- assembly
    def query(self, name: str) -> JoinQuery:
        return self._by_name[name]

    def overlap_of(self, subset: FrozenSet[str]) -> float:
        """Cached ``|O_Δ|`` lookup by join names (singletons -> join size)."""
        if subset not in self._overlap_cache:
            members = [self._by_name[name] for name in subset]
            if len(members) == 1:
                value = float(self.join_size(members[0]))
            else:
                value = float(self.overlap(members))
            self._overlap_cache[subset] = max(value, 0.0)
        return self._overlap_cache[subset]

    def estimate(self) -> UnionParameters:
        """Full warm-up: every ``|O_Δ|``, k-overlaps, ``|U|`` and cover sizes."""
        started = time.perf_counter()
        self.prepare()
        names = [q.name for q in self.queries]
        overlaps = compute_all_overlaps(names, self.overlap_of)
        k_overlaps = compute_k_overlaps(names, overlaps)
        union_size = union_size_from_k_overlaps(k_overlaps)
        join_sizes = {name: overlaps[frozenset([name])] for name in names}
        # The union can never be smaller than the largest join nor larger than
        # the disjoint union; clamp estimation noise into that window.
        union_size = min(max(union_size, max(join_sizes.values(), default=0.0)),
                         sum(join_sizes.values()))
        covers = cover_sizes_from_overlaps(names, overlaps)
        elapsed = time.perf_counter() - started
        return UnionParameters(
            join_order=names,
            join_sizes=join_sizes,
            cover_sizes=covers,
            union_size=union_size,
            overlaps={k: v for k, v in overlaps.items() if len(k) >= 2},
            method=self.method,
            metadata={"k_overlaps": k_overlaps, "warmup_seconds": elapsed},
        )


__all__ = ["UnionSizeEstimator"]
