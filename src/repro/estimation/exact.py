"""Exact parameters via full joins — the paper's ``FullJoinUnion`` baseline.

This estimator executes every join, materializes the distinct result sets and
computes all sizes exactly.  It is the ground truth against which the
histogram-based and random-walk estimators are evaluated (Fig. 4), and it is
deliberately the expensive thing the framework tries to avoid.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.estimation.base import UnionSizeEstimator
from repro.estimation.parameters import UnionParameters
from repro.joins.executor import join_result_set
from repro.joins.query import JoinQuery


class FullJoinUnionEstimator(UnionSizeEstimator):
    """Exact join / overlap / union sizes obtained by executing the full joins."""

    method = "full-join"

    def __init__(self, queries: Sequence[JoinQuery]) -> None:
        super().__init__(queries)
        self._result_sets: Optional[Dict[str, Set[Tuple]]] = None

    # ---------------------------------------------------------------- warm-up
    def prepare(self) -> None:
        if self._result_sets is None:
            self._result_sets = {q.name: join_result_set(q) for q in self.queries}

    def result_set(self, name: str) -> Set[Tuple]:
        """The materialized distinct result set of one join."""
        self.prepare()
        assert self._result_sets is not None
        return self._result_sets[name]

    # ------------------------------------------------------------------ hooks
    def join_size(self, query: JoinQuery) -> float:
        self.prepare()
        assert self._result_sets is not None
        return float(len(self._result_sets[query.name]))

    def overlap(self, queries: Sequence[JoinQuery]) -> float:
        self.prepare()
        assert self._result_sets is not None
        common: Optional[Set[Tuple]] = None
        for query in queries:
            values = self._result_sets[query.name]
            common = set(values) if common is None else (common & values)
            if not common:
                return 0.0
        return float(len(common)) if common is not None else 0.0

    # -------------------------------------------------------------- overrides
    def exact_union_size(self) -> float:
        """Union size computed directly from the materialized result sets."""
        self.prepare()
        assert self._result_sets is not None
        union: Set[Tuple] = set()
        for values in self._result_sets.values():
            union |= values
        return float(len(union))

    def estimate(self) -> UnionParameters:
        parameters = super().estimate()
        # Keep the Theorem-3 value for cross-checking, but report the union
        # size computed directly from the materialized result sets — it is
        # exact by construction and serves as the experiment ground truth.
        parameters.metadata["union_size_theorem3"] = parameters.union_size
        parameters.union_size = self.exact_union_size()
        return parameters


#: Alias matching the paper's name for the baseline.
FullJoinUnion = FullJoinUnionEstimator

__all__ = ["FullJoinUnionEstimator", "FullJoinUnion"]
