"""Command-line interface.

Four subcommands cover the common workflows:

``python -m repro sample``
    Build a workload (UQ1/UQ2/UQ3), estimate union parameters with the chosen
    warm-up method, draw N samples from the set union and print a summary.

``python -m repro estimate``
    Compare the histogram-based and random-walk warm-up estimators against the
    exact FullJoinUnion baseline on a workload.

``python -m repro aggregate``
    Approximate COUNT/SUM/AVG (optionally grouped) over one join or the whole
    union of a workload, with confidence intervals and the cost-based
    ``--method auto`` sampler planner (``--json`` for machine-readable
    output).

``python -m repro figure``
    Regenerate one of the paper's figures (fig4a ... fig6b, ablation-bernoulli,
    ablation-template) and print its series table.

``python -m repro serve``
    Load a workload once and serve concurrent sample/aggregate requests over
    JSON-over-HTTP with warm per-query state, admission control, and
    epoch-consistent answers (see ``docs/server.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.errors import mean_ratio_error
from repro.aqp import AggregateSpec, OnlineAggregator
from repro.aqp.online import planning_budget
from repro.cache import SampleCache
from repro.core.online_sampler import OnlineUnionSampler
from repro.core.union_sampler import (
    BernoulliUnionSampler,
    DisjointUnionSampler,
    SetUnionSampler,
)
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.random_walk import RandomWalkUnionEstimator
from repro.experiments.config import ExperimentConfig
from repro.experiments import figures as figure_module
from repro.parallel import parallel_sample
from repro.resilience import EmptyResultError, JobDeadlineExceeded
from repro.tpch.workloads import build_workload
from repro.utils.rng import spawn_rngs

#: figure name -> callable(config) -> SeriesTable
FIGURES: Dict[str, Callable] = {
    "fig4a": lambda cfg: figure_module.run_fig4_ratio_error("UQ1", cfg),
    "fig4b": lambda cfg: figure_module.run_fig4_ratio_error("UQ3", cfg),
    "fig4c": lambda cfg: figure_module.run_fig4_runtime("UQ1", cfg),
    "fig4d": lambda cfg: figure_module.run_fig4_runtime("UQ3", cfg),
    "fig5a": lambda cfg: figure_module.run_fig5a_ratio_error(cfg),
    "fig5b": lambda cfg: figure_module.run_fig5b_data_scale(cfg),
    "fig5c": lambda cfg: figure_module.run_fig5_sample_size("UQ1", cfg),
    "fig5d": lambda cfg: figure_module.run_fig5_sample_size("UQ2", cfg),
    "fig5e": lambda cfg: figure_module.run_fig5_sample_size("UQ3", cfg),
    "fig5f": lambda cfg: figure_module.run_fig5_breakdown("UQ1", cfg),
    "fig5g": lambda cfg: figure_module.run_fig5_breakdown("UQ2", cfg),
    "fig5h": lambda cfg: figure_module.run_fig5_breakdown("UQ3", cfg),
    "fig6a": lambda cfg: figure_module.run_fig6_reuse_time(cfg),
    "fig6b": lambda cfg: figure_module.run_fig6_reuse_per_sample(cfg),
    "ablation-bernoulli": lambda cfg: figure_module.run_ablation_bernoulli(cfg),
    "ablation-template": lambda cfg: figure_module.run_ablation_template(cfg),
}

SAMPLERS = ("set-union", "online", "bernoulli", "disjoint")
WARMUPS = ("histogram", "random-walk", "exact")
AGGREGATES = ("count", "sum", "avg")
METHODS = ("auto", "exact-weight", "olken", "wander-join", "online-union")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sampling over Union of Joins — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="sample the set union of a workload")
    _add_workload_arguments(sample)
    sample.add_argument("--samples", type=int, default=200, help="number of samples to draw")
    sample.add_argument("--sampler", choices=SAMPLERS, default="set-union")
    sample.add_argument("--warmup", choices=WARMUPS, default="histogram")
    sample.add_argument("--weights", choices=("ew", "eo", "auto"), default="ew",
                        help="single-join sampling weights "
                        "(auto = cost-based planner choice)")
    sample.add_argument("--workers", type=int, default=1,
                        help="worker count for the parallel sampling service "
                        "(>1 routes through the shard service — incompatible "
                        "with --sampler/--warmup/--weights — and draws the "
                        "same samples for any worker count > 1)")
    sample.add_argument("--shard-timeout", type=float, default=None,
                        help="per-shard-attempt timeout in seconds for the "
                        "parallel service (requires --workers > 1); a shard "
                        "that blows it is killed/abandoned and retried")
    sample.add_argument("--retries", type=int, default=None,
                        help="re-executions allowed per shard before the job "
                        "fails (requires --workers > 1; default 2)")
    sample.add_argument("--deadline", type=float, default=None,
                        help="job-level deadline in seconds (requires "
                        "--workers > 1); exceeding it exits with code 3 "
                        "unless --allow-partial")
    sample.add_argument("--allow-partial", action="store_true",
                        help="on an exceeded deadline, print the samples from "
                        "the shards that completed instead of failing "
                        "(requires --workers > 1)")

    estimate = sub.add_parser("estimate", help="compare warm-up estimators on a workload")
    _add_workload_arguments(estimate)
    estimate.add_argument("--walks", type=int, default=500,
                          help="random-walk warm-up walks per join")

    aggregate = sub.add_parser(
        "aggregate", help="approximate aggregation with confidence intervals"
    )
    _add_workload_arguments(aggregate)
    aggregate.add_argument("--aggregate", choices=AGGREGATES, default="count",
                           help="aggregate function")
    aggregate.add_argument("--attribute", default=None,
                           help="output attribute for sum/avg")
    aggregate.add_argument("--group-by", default=None,
                           help="output attribute to group by")
    aggregate.add_argument("--target", choices=("join", "union"), default="join",
                           help="aggregate one join (bag semantics) or the whole "
                           "union (set semantics)")
    aggregate.add_argument("--query", default=None,
                           help="join name for --target join (default: first)")
    aggregate.add_argument("--method", choices=METHODS, default="auto",
                           help="sampler backend (auto = cost-based planner)")
    aggregate.add_argument("--rel-error", type=float, default=0.05,
                           help="stop when every CI half-width is below this "
                           "fraction of its estimate")
    aggregate.add_argument("--confidence", type=float, default=0.95)
    aggregate.add_argument("--ci", choices=("clt", "bootstrap"), default="clt",
                           help="confidence-interval method")
    aggregate.add_argument("--max-attempts", type=int, default=1_000_000)
    aggregate.add_argument("--workers", type=int, default=1,
                           help="sampler shards run per batch (>1 fans each "
                           "online-aggregation step out across cores)")
    aggregate.add_argument("--deadline", type=float, default=None,
                           help="wall-clock budget in seconds for the online-"
                           "aggregation loop; exceeding it before the error "
                           "target exits with code 3 unless --allow-partial")
    aggregate.add_argument("--allow-partial", action="store_true",
                           help="on an exceeded deadline, report the current "
                           "(degraded) estimate with its achieved — not "
                           "requested — relative error instead of failing")
    aggregate.add_argument("--cache", action=argparse.BooleanOptionalAction,
                           default=False,
                           help="share drawn sample blocks across runs "
                           "through the sample-cache tier (see docs/cache.md); "
                           "single-join targets with a JoinSampler backend "
                           "only, incompatible with --workers > 1")
    aggregate.add_argument("--repeat", type=int, default=1,
                           help="run the aggregate N times with seeds "
                           "seed..seed+N-1 and report the last run; with "
                           "--cache later runs re-consume the cached stream")
    aggregate.add_argument("--json", action="store_true",
                           help="print a machine-readable JSON report")

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("name", choices=sorted(FIGURES), help="figure identifier")
    figure.add_argument("--scale-factor", type=float, default=0.001)
    figure.add_argument("--walks", type=int, default=300)
    figure.add_argument("--seed", type=int, default=2023)

    serve = sub.add_parser(
        "serve", help="serve concurrent sample/aggregate requests over HTTP"
    )
    _add_workload_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 binds an ephemeral port and "
                       "prints the actual one)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker budget of the shared sampling pool "
                       "(default: CPU count)")
    serve.add_argument("--max-request-seconds", type=float, default=30.0,
                       help="admission ceiling per request, in cost-model "
                       "seconds")
    serve.add_argument("--max-samples", type=int, default=1_000_000,
                       help="admission ceiling on samples per request")
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="concurrent sample/aggregate requests before "
                       "admission rejects instead of queueing")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip warming per-query prototypes at startup "
                       "(they are then built lazily on first use)")
    serve.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="enable the cross-request sample cache tier "
                       "(cached aggregate requests price near zero; stats "
                       "under /stats; see docs/cache.md).  Off by default "
                       "because shared draws make a response depend on the "
                       "requests that ran before it")
    serve.add_argument("--cache-bytes", type=int, default=None,
                       help="cache memory budget in bytes before LRU "
                       "eviction (default 64 MiB; requires --cache)")
    serve.add_argument("--no-overload", action="store_true",
                       help="disable the overload layer (health state "
                       "machine, load shedding, circuit breakers, watchdog; "
                       "see docs/overload.md)")
    serve.add_argument("--capacity-seconds", type=float, default=None,
                       help="priced-seconds the server executes concurrently "
                       "before queueing/shedding (default 60.0)")
    serve.add_argument("--backlog-seconds", type=float, default=None,
                       help="priced-seconds allowed to queue behind capacity "
                       "before new work is shed with 429 (default 30.0)")
    serve.add_argument("--connection-timeout", type=float, default=30.0,
                       help="per-connection socket read/write timeout in "
                       "seconds, the slow-loris bound (0 disables)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=("UQ1", "UQ2", "UQ3"), default="UQ1")
    parser.add_argument("--scale-factor", type=float, default=0.001)
    parser.add_argument("--overlap-scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=2023)


def _make_estimator(name: str, queries, args, seed=None):
    if name == "histogram":
        weights = getattr(args, "weights", "ew")
        if weights == "auto":
            # The histogram estimator only uses the method to size joins; its
            # cheap decentralized default is the extended-Olken variant.  The
            # per-join samplers still resolve "auto" through the planner.
            weights = "eo"
        return HistogramUnionEstimator(queries, join_size_method=weights)
    if name == "random-walk":
        return RandomWalkUnionEstimator(
            queries,
            walks_per_join=getattr(args, "walks", 500),
            seed=args.seed if seed is None else seed,
        )
    return FullJoinUnionEstimator(queries)


def command_sample(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.workers == 1:
        resilience_flags = [
            flag
            for flag, value in (
                ("--shard-timeout", args.shard_timeout),
                ("--retries", args.retries),
                ("--deadline", args.deadline),
                ("--allow-partial", args.allow_partial or None),
            )
            if value is not None
        ]
        if resilience_flags:
            print(
                f"error: {', '.join(resilience_flags)} configure the parallel "
                "shard service; add --workers > 1",
                file=sys.stderr,
            )
            return 2
    if args.workers > 1:
        # The parallel service plans its own backend (shard-local union
        # samplers with histogram warm-ups); silently dropping an explicit
        # sampler choice would misreport what actually ran.
        overridden = [
            flag
            for flag, value, default in (
                ("--sampler", args.sampler, "set-union"),
                ("--warmup", args.warmup, "histogram"),
                ("--weights", args.weights, "ew"),
            )
            if value != default
        ]
        if overridden:
            print(
                f"error: --workers {args.workers} uses the parallel shard service, "
                f"which ignores {', '.join(overridden)}; drop those flags or use "
                "--workers 1",
                file=sys.stderr,
            )
            return 2
    workload = build_workload(args.workload, args.scale_factor, args.overlap_scale, args.seed)
    queries = workload.queries
    if args.workers > 1:
        return _sample_parallel(args, workload, queries)
    # Derive independent streams for the warm-up estimator and the sampler:
    # seeding both with args.seed would replay the identical sequence in two
    # components that must draw independently (see repro.utils.rng).
    estimator_rng, sampler_rng = spawn_rngs(args.seed, 2)
    try:
        if args.sampler == "online":
            sampler = OnlineUnionSampler(queries, seed=sampler_rng, join_weights=args.weights)
        else:
            estimator = _make_estimator(args.warmup, queries, args, seed=estimator_rng)
            if args.sampler == "set-union":
                sampler = SetUnionSampler(queries, estimator, join_weights=args.weights,
                                          seed=sampler_rng)
            elif args.sampler == "bernoulli":
                sampler = BernoulliUnionSampler(queries, estimator, join_weights=args.weights,
                                                seed=sampler_rng)
            else:
                sampler = DisjointUnionSampler(queries, estimator, join_weights=args.weights,
                                               seed=sampler_rng)
        result = sampler.sample(args.samples)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"workload={workload.name} sampler={args.sampler} warmup={args.warmup} "
          f"weights={args.weights}")
    print(f"samples drawn      : {len(result)}")
    print(f"per-join samples   : {result.sources()}")
    print(f"iterations         : {result.stats.iterations} "
          f"(acceptance rate {result.stats.acceptance_rate:.2f})")
    print(f"time breakdown (s) : {result.stats.breakdown()}")
    print("first 5 samples:")
    for value in result.values()[:5]:
        print(f"  {value}")
    return 0


def _sample_parallel(args: argparse.Namespace, workload, queries) -> int:
    """Draw via the parallel sampling service (deterministic in any worker count)."""
    try:
        report = parallel_sample(
            queries,
            args.samples,
            workers=args.workers,
            seed=args.seed,
            job_timeout=args.deadline,
            shard_timeout=args.shard_timeout,
            max_retries=args.retries,
            allow_partial=args.allow_partial,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except JobDeadlineExceeded as error:
        # Deadline failures get their own exit code so schedulers can tell
        # "ran out of time" from "could not run" (add --allow-partial to get
        # the completed shards instead).
        print(f"error: {error}", file=sys.stderr)
        return 3
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"workload={workload.name} sampler=parallel backend={report.backend} "
          f"workers={report.workers} shards={report.shards}")
    print(f"samples drawn      : {len(report.values)}")
    print(f"per-join samples   : {report.source_counts()}")
    print(f"shard attempts     : {report.attempts} (accepted {report.accepted})")
    if report.retries or report.degradations:
        print(f"shard retries      : {report.retries} "
              f"(crashes {report.shard_crashes}, timeouts {report.shard_timeouts}, "
              f"degradations {report.degradations})")
    if report.degraded:
        print(f"DEGRADED           : completed {report.completed_shards}/"
              f"{report.planned_shards} shards before the deadline; the draw "
              "covers only those shards")
    print("first 5 samples:")
    for value in report.values[:5]:
        print(f"  {value}")
    return 0


def command_estimate(args: argparse.Namespace) -> int:
    workload = build_workload(args.workload, args.scale_factor, args.overlap_scale, args.seed)
    queries = workload.queries
    exact = FullJoinUnionEstimator(queries).estimate()
    histogram = HistogramUnionEstimator(queries, join_size_method="eo").estimate()
    walks = RandomWalkUnionEstimator(queries, walks_per_join=args.walks, seed=args.seed).estimate()
    print(f"workload={workload.name}  joins={workload.query_names}")
    print(f"{'method':<14} {'|U| estimate':>14} {'mean |J|/|U| error':>20}")
    print(f"{'exact':<14} {exact.union_size:14.1f} {0.0:20.4f}")
    print(f"{'histogram+EO':<14} {histogram.union_size:14.1f} "
          f"{mean_ratio_error(histogram, exact):20.4f}")
    print(f"{'random-walk':<14} {walks.union_size:14.1f} "
          f"{mean_ratio_error(walks, exact):20.4f}")
    return 0


def command_aggregate(args: argparse.Namespace) -> int:
    if args.aggregate in ("sum", "avg") and not args.attribute:
        print("error: --attribute is required for sum/avg aggregates", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}", file=sys.stderr)
        return 2
    if args.cache and args.workers > 1:
        print(
            "error: --cache shares one sequential draw stream and cannot "
            "feed sharded workers; drop --cache or use --workers 1",
            file=sys.stderr,
        )
        return 2
    if args.cache and args.target == "union":
        print(
            "error: --cache applies to single-join aggregates; union streams "
            "have per-join ownership and cannot be pooled (drop --cache)",
            file=sys.stderr,
        )
        return 2
    workload = build_workload(args.workload, args.scale_factor, args.overlap_scale, args.seed)
    if args.target == "union":
        queries = workload.queries
        if args.method not in ("auto", "online-union"):
            print(
                f"error: --method {args.method} cannot sample a union; "
                "use auto or online-union",
                file=sys.stderr,
            )
            return 2
    else:
        if args.method == "online-union":
            print(
                "error: --method online-union samples a union of joins; "
                "use --target union (or a single-join backend)",
                file=sys.stderr,
            )
            return 2
        if args.query and args.query not in workload.query_names:
            print(
                f"error: workload {workload.name} has no join {args.query!r}; "
                f"choose from {workload.query_names}",
                file=sys.stderr,
            )
            return 2
        queries = [workload.query(args.query) if args.query else workload.queries[0]]
    spec = AggregateSpec(
        args.aggregate,
        attribute=args.attribute,
        group_by=args.group_by,
    )
    cache = SampleCache() if args.cache else None
    # --repeat N replays the run with derived seeds; with --cache the later
    # runs re-consume the blocks the first run published, which is the whole
    # demonstration — the reported run is the last (most cached) one.
    for run_index in range(args.repeat):
        try:
            aggregator = OnlineAggregator(
                queries,
                spec,
                method=args.method,
                seed=args.seed + run_index,
                confidence=args.confidence,
                ci_method=args.ci,
                parallelism=args.workers,
                # Prime the cost-based planner with the sample demand the
                # error target implies (setup-heavy backends amortize over
                # tight runs).
                target_samples=planning_budget(args.rel_error, args.confidence),
                cache=cache,
            )
        except ValueError as error:
            # e.g. an attribute missing from the output schema, a backend that
            # cannot sample the query shape, or unfiltered COUNT(*) over a
            # union.
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            report = aggregator.until(
                args.rel_error,
                max_attempts=args.max_attempts,
                deadline=args.deadline,
                allow_partial=args.allow_partial,
            )
        except ValueError as error:
            # e.g. a negative --rel-error or --deadline.
            print(f"error: {error}", file=sys.stderr)
            return 2
        except JobDeadlineExceeded as error:
            # Out of time, not out of options: exit code 3 distinguishes an
            # exceeded deadline (retry with more time or --allow-partial) from
            # a run that cannot converge at all.
            print(f"error: {error}", file=sys.stderr)
            return 3
        except EmptyResultError as error:
            # --allow-partial with zero accepted samples: there is no honest
            # partial estimate (a zero-width CI around 0.0 would be a lie), so
            # this is an out-of-time failure, same exit code as the deadline.
            print(f"error: {error}", file=sys.stderr)
            return 3
        except RuntimeError as error:
            # Budget exhausted before the error target: report, don't
            # traceback.
            print(f"error: {error}", file=sys.stderr)
            return 1

    target = queries[0].name if args.target == "join" else f"union of {len(queries)} joins"
    if args.json:
        payload = {
            "workload": workload.name,
            "target": target,
            "method": args.method,
            "backend": aggregator.backend,
            "weights": aggregator.plan.weights,
            "batch_size": aggregator.batch_size,
            "workers": aggregator.parallelism,
            "rel_error": args.rel_error,
            "epochs_restarted": aggregator.epochs_restarted,
            "report": report.to_dict(),
        }
        if cache is not None:
            payload["cache"] = {
                "runs": args.repeat,
                "cached_samples": aggregator.cached_samples,
                "fresh_samples": aggregator.fresh_samples,
                **cache.stats_dict(),
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"workload={workload.name} target={target} "
          f"method={args.method} backend={aggregator.backend}")
    print(f"aggregate          : {spec.describe()}")
    print(f"attempts/accepted  : {report.attempts} / {report.accepted}")
    if cache is not None:
        stats = cache.stats_dict()
        print(f"cache              : cached {aggregator.cached_samples} / "
              f"fresh {aggregator.fresh_samples} samples in the reported run "
              f"({stats['entries']} entries, {stats['blocks']} blocks, "
              f"{stats['bytes']} bytes)")
    if report.degraded:
        achieved = report.max_relative_half_width()
        achieved_text = "inf" if achieved == float("inf") else f"{achieved:.4f}"
        print(f"DEGRADED           : deadline hit before rel_error={args.rel_error}; "
              f"achieved rel error {achieved_text}")
    for group in report.groups():
        estimate = report.estimates[group]
        label = "overall" if not group else "group " + repr(tuple(group))
        print(f"{label:18s} : {estimate.estimate:.4f} "
              f"[{estimate.ci_low:.4f}, {estimate.ci_high:.4f}] "
              f"({int(estimate.confidence * 100)}% {report.ci_method}, "
              f"rel ±{estimate.relative_half_width:.4f})")
    return 0


def command_figure(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        scale_factor=args.scale_factor,
        walks_per_join=args.walks,
        seed=args.seed,
        overlap_scales=(0.1, 0.3, 0.6),
        sample_sizes=(25, 50, 100),
        data_scales=(0.0005, 0.001, 0.002),
    )
    table = FIGURES[args.name](config)
    print(table.to_text())
    return 0


def command_serve(args: argparse.Namespace) -> int:
    # Deferred import: the server stack (and its pool) is only paid for by
    # the one subcommand that serves.
    from repro.server import (
        AdmissionLimits,
        OverloadConfig,
        SamplingService,
        start_server,
    )

    if args.port < 0 or args.port > 65535:
        print(f"error: --port must be in [0, 65535], got {args.port}", file=sys.stderr)
        return 2
    overload_flags = (args.capacity_seconds is not None
                      or args.backlog_seconds is not None)
    if args.no_overload and overload_flags:
        print("error: --capacity-seconds/--backlog-seconds tune the overload "
              "layer; drop --no-overload", file=sys.stderr)
        return 2
    if args.no_overload:
        overload = False
    elif overload_flags:
        defaults = OverloadConfig()
        try:
            overload = OverloadConfig(
                capacity_seconds=(defaults.capacity_seconds
                                  if args.capacity_seconds is None
                                  else args.capacity_seconds),
                backlog_seconds=(defaults.backlog_seconds
                                 if args.backlog_seconds is None
                                 else args.backlog_seconds),
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        overload = True
    if args.cache_bytes is not None and not args.cache:
        print("error: --cache-bytes sizes the sample cache; add --cache",
              file=sys.stderr)
        return 2
    cache = None
    if args.cache:
        try:
            cache = (SampleCache() if args.cache_bytes is None
                     else SampleCache(max_bytes=args.cache_bytes))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        service = SamplingService(
            workload_name=args.workload,
            scale_factor=args.scale_factor,
            overlap_scale=args.overlap_scale,
            seed=args.seed,
            workers=args.workers,
            limits=AdmissionLimits(
                max_request_seconds=args.max_request_seconds,
                max_samples=args.max_samples,
                max_inflight=args.max_inflight,
            ),
            warm_on_start=not args.no_warm,
            cache=cache,
            overload=overload,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server, thread = start_server(
        service, host=args.host, port=args.port, verbose=args.verbose,
        connection_timeout=(None if args.connection_timeout <= 0
                            else args.connection_timeout),
    )
    # The exact line (flushed!) the smoke harness and orchestrators wait for;
    # with --port 0 it is the only way to learn the bound port.
    print(f"serving workload={args.workload} on http://{args.host}:{server.port}",
          flush=True)
    try:
        thread.join()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        service.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "sample":
        return command_sample(args)
    if args.command == "estimate":
        return command_estimate(args)
    if args.command == "aggregate":
        return command_aggregate(args)
    if args.command == "figure":
        return command_figure(args)
    if args.command == "serve":
        return command_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
