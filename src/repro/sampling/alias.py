"""Walker/Vose alias tables: O(1) weighted draws for the batched engine.

The batched descent of :class:`~repro.sampling.join_sampler.JoinSampler`
originally answered "pick a row proportionally to its weight" with an
inverse-CDF ``np.searchsorted`` over a cumulative weight array — O(log n)
memory probes per draw.  The alias method (Walker 1977, Vose 1991) answers
the same question with exactly **two array lookups per draw**: throw a dart
at a uniform bucket ``j``, keep ``j`` with probability ``prob[j]``, otherwise
take ``alias[j]``.  Construction redistributes the probability mass so that
every bucket is covered by at most two outcomes, which is always possible
(the classic "robin hood" argument) and costs O(n).

Two structures cover the sampler's needs:

* :class:`AliasTable` — one flat distribution (the root-row choice).  Built
  eagerly with a vectorized construction: a bulk prefix-sum round assigns
  almost every light bucket to one heavy bucket in O(n) array ops, and the
  few boundary leftovers finish in pairing rounds (a sequential fallback
  guards pathological weight profiles).
* :class:`SegmentedAliasTable` — one alias table per key segment of a CSR
  :class:`~repro.relational.index.SortedIndex` (the per-level child choice).
  Segments whose weights are uniform (the common leaf-level case: every
  weight 1) need no table at all; non-uniform segments are built **lazily,
  per segment, on first draw** — so after a mutation epoch only the segments
  the workload actually touches are rebuilt (:meth:`rebuild_segments`
  invalidates exactly the slots a delta dirtied).

Both draw paths consume the underlying generator identically (one uniform
for the dart, one for the coin), so a fixed seed yields a fixed draw
sequence regardless of how many segments happen to be uniform.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

#: Vectorized pairing rounds before the sequential fallback takes over.
_MAX_ROUNDS = 64

#: Below this size the sequential list-based Vose beats the vectorized
#: construction (numpy call overhead dominates tiny segments).
_SMALL_SEGMENT = 64


def _build_flat(scaled: np.ndarray, prob: np.ndarray, alias: np.ndarray, base: int) -> None:
    """Fill ``prob``/``alias`` (views of length n) for one distribution.

    ``scaled`` are the weights normalized to sum to ``n`` (consumed — the
    array is scratch space); ``base`` is added to every alias entry so that
    segmented tables can store global row indices.  Buckets keep their own
    item with probability ``prob`` and defer to ``alias`` otherwise.
    """
    n = scaled.size
    if n == 0:
        return
    if n == 1:
        prob[0] = 1.0
        alias[0] = base
        return
    if n <= _SMALL_SEGMENT:
        # Tiny distributions (the common CSR-segment case: one join key's
        # rows) run the classic sequential Vose on plain lists — the
        # vectorized rounds below cost ~100µs of numpy call overhead per
        # invocation, three orders of magnitude more than this loop at n≈10.
        values = scaled.tolist()
        small_list = [i for i, s in enumerate(values) if s < 1.0]
        large_list = [i for i, s in enumerate(values) if s >= 1.0]
        while small_list and large_list:
            s = small_list.pop()
            l = large_list[-1]
            prob[s] = values[s]
            alias[s] = l + base
            values[l] -= 1.0 - values[s]
            if values[l] < 1.0:
                small_list.append(large_list.pop())
        for i in small_list:
            prob[i] = 1.0
        for i in large_list:
            prob[i] = 1.0
        return
    small = np.flatnonzero(scaled < 1.0)
    large = np.flatnonzero(scaled >= 1.0)
    rounds = 0
    while small.size and large.size and rounds < _MAX_ROUNDS:
        rounds += 1
        if small.size > large.size:
            # Bulk round: lay the light buckets' deficits (1 - scaled) end to
            # end against the heavy buckets' surpluses (scaled - 1); one
            # searchsorted assigns each light bucket to the heavy bucket whose
            # surplus interval contains its whole deficit.  At most one light
            # bucket per heavy boundary straddles two intervals and is
            # deferred to the next round, so one bulk round finalizes all but
            # O(#heavy) light buckets.
            deficits = 1.0 - scaled[small]
            cum_deficit = np.cumsum(deficits)
            cum_surplus = np.cumsum(scaled[large] - 1.0)
            owner = np.searchsorted(cum_surplus, cum_deficit, side="left")
            inside = owner < large.size
            prev_surplus = np.zeros(small.size, dtype=float)
            clipped = np.clip(owner - 1, 0, max(large.size - 1, 0))
            prev_surplus[owner > 0] = cum_surplus[clipped[owner > 0]]
            inside &= (cum_deficit - deficits) >= prev_surplus - 1e-12
            done = small[inside]
            prob[done] = scaled[done]
            alias[done] = large[owner[inside]] + base
            absorbed = np.bincount(
                owner[inside], weights=deficits[inside], minlength=large.size
            )
            scaled[large] -= absorbed
            small = small[~inside]
        else:
            # Pairing round: k disjoint (light, heavy) pairs at once.  The
            # paired heavies go back on the stack for reclassification —
            # they still hold their remaining surplus.
            k = min(small.size, large.size)
            s, l = small[:k], large[:k]
            prob[s] = scaled[s]
            alias[s] = l + base
            scaled[l] -= 1.0 - scaled[s]
            small = small[k:]
            large = np.concatenate([large[k:], l])
        still_small = scaled[large] < 1.0
        if still_small.any():
            small = np.concatenate([small, large[still_small]])
            large = large[~still_small]

    if small.size and large.size:
        # Pathological profile outran the vectorized rounds: finish the
        # remaining chain sequentially (classic Vose stacks).
        small_list = small.tolist()
        large_list = large.tolist()
        while small_list and large_list:
            s = small_list.pop()
            l = large_list[-1]
            prob[s] = scaled[s]
            alias[s] = l + base
            scaled[l] -= 1.0 - scaled[s]
            if scaled[l] < 1.0:
                small_list.append(large_list.pop())
        small = np.asarray(small_list, dtype=np.intp)
        large = np.asarray(large_list, dtype=np.intp)

    # Leftovers on either stack hold mass 1 up to rounding: keep them whole.
    prob[large] = 1.0
    prob[small] = 1.0


def _pin_zero_weights(
    weights: np.ndarray, prob: np.ndarray, alias: np.ndarray, base: int
) -> None:
    """Numerical backstop: a zero-weight item must never be drawn.

    The construction gives zero-weight items ``prob = 0`` and an alias
    pointing at a positive-weight item in exact arithmetic; floating-point
    leftovers could leave one self-aliased with ``prob = 1``, so pin the
    invariant explicitly (``prob``/``alias`` are views; ``base`` converts
    local positions to the global indices the alias entries carry).
    """
    zero = weights <= 0
    if not bool(zero.any()):
        return
    local = np.arange(weights.size, dtype=np.intp) + base
    self_aliased = zero & (alias == local)
    if bool(self_aliased.any()):
        alias[self_aliased] = base + int(np.argmax(weights))
    prob[zero] = 0.0


class AliasTable:
    """Alias table over one weight vector (e.g. the root-row weights).

    Zero-weight items are valid: their buckets carry ``prob = 0`` and always
    defer to their alias, so they are never drawn (provided some weight is
    positive — an all-zero table refuses to sample).
    """

    __slots__ = ("n", "total", "prob", "alias")

    def __init__(self, weights: Sequence[float] | np.ndarray) -> None:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if w.size and float(w.min()) < 0:
            raise ValueError("weights must be non-negative")
        self.n = int(w.size)
        self.total = float(w.sum())
        self.prob = np.ones(self.n, dtype=float)
        self.alias = np.arange(self.n, dtype=np.intp)
        if self.n and self.total > 0:
            # The scale product is a fresh array: _build_flat may consume it.
            _build_flat(w * (self.n / self.total), self.prob, self.alias, 0)
            _pin_zero_weights(w, self.prob, self.alias, 0)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` independent draws (indices into the weight vector)."""
        if self.n == 0 or self.total <= 0:
            raise ValueError("cannot sample from an empty or all-zero table")
        darts = rng.integers(0, self.n, size=size)
        keep = rng.random(size) < self.prob[darts]
        return np.where(keep, darts, self.alias[darts]).astype(np.intp, copy=False)


class SegmentedAliasTable:
    """Per-segment alias tables over a CSR (offsets + per-row weights) layout.

    Parameters
    ----------
    weights:
        Row weights in CSR order (length ``offsets[-1]``).
    offsets:
        CSR offsets (length ``n_segments + 1``); segment ``i`` spans
        ``weights[offsets[i]:offsets[i+1]]``.  Zero-length segments are legal
        (deletions pending compaction) and simply never drawn from.

    Draws address segments by slot id and return **global row indices** into
    the CSR order, so the caller can gather ``csr.row_positions[result]``
    directly.  Uniform segments (all weights equal — detected vectorized at
    construction) skip table construction entirely; the remaining segments
    build lazily on first draw, which is what makes the epoch protocol cheap:
    :meth:`rebuild_segments` just clears the built flag of the dirtied slots.
    """

    __slots__ = (
        "offsets",
        "weights",
        "segment_totals",
        "prob",
        "alias",
        "_built",
        "_all_built",
    )

    def __init__(self, weights: np.ndarray, offsets: np.ndarray) -> None:
        self.offsets = np.asarray(offsets)
        self.weights = np.asarray(weights, dtype=float)
        n = self.weights.size
        n_seg = len(self.offsets) - 1
        starts = self.offsets[:-1]
        ends = self.offsets[1:]
        nonempty = ends > starts
        self.segment_totals = np.zeros(n_seg, dtype=float)
        if n_seg and n:
            ne_starts = np.asarray(starts[nonempty], dtype=np.intp)
            if ne_starts.size:
                self.segment_totals[nonempty] = np.add.reduceat(self.weights, ne_starts)
        self.prob = np.ones(n, dtype=float)
        self.alias = np.arange(n, dtype=np.intp)
        # A segment whose weights are all equal draws uniformly through the
        # identity prob/alias arrays — mark it built without doing any work.
        self._built = np.zeros(n_seg, dtype=bool)
        if n_seg and n:
            seg_max = np.zeros(n_seg, dtype=float)
            seg_min = np.zeros(n_seg, dtype=float)
            ne_starts = np.asarray(starts[nonempty], dtype=np.intp)
            if ne_starts.size:
                seg_max[nonempty] = np.maximum.reduceat(self.weights, ne_starts)
                seg_min[nonempty] = np.minimum.reduceat(self.weights, ne_starts)
            self._built = (seg_max == seg_min) | ~nonempty
        elif n_seg:
            self._built = np.ones(n_seg, dtype=bool)
        self._all_built = bool(self._built.all()) if n_seg else True

    @property
    def n_segments(self) -> int:
        return len(self.offsets) - 1

    # ------------------------------------------------------------------ build
    def _build_segment(self, slot: int) -> None:
        start = int(self.offsets[slot])
        end = int(self.offsets[slot + 1])
        total = self.segment_totals[slot]
        degree = end - start
        if degree > 0 and total > 0:
            scaled = self.weights[start:end] * (degree / total)  # fresh array
            _build_flat(scaled, self.prob[start:end], self.alias[start:end], start)
            _pin_zero_weights(
                self.weights[start:end], self.prob[start:end], self.alias[start:end], start
            )
        self._built[slot] = True

    def ensure_built(self, slots: np.ndarray) -> None:
        """Build the alias tables of any not-yet-built slots among ``slots``."""
        if self._all_built:
            return
        pending = np.unique(slots[~self._built[slots]])
        for slot in pending.tolist():
            self._build_segment(int(slot))
        if pending.size:
            self._all_built = bool(self._built.all())

    def build_all(self) -> None:
        """Eagerly build every pending segment, making the table read-only.

        Once every segment is built, :meth:`sample` never mutates the table
        again (``ensure_built`` short-circuits on ``_all_built``), so a fully
        built table can be shared across threads without locking.  The warm
        server path calls this once per epoch so per-request sampler clones
        can share one table.
        """
        if self._all_built:
            return
        for slot in np.flatnonzero(~self._built).tolist():
            self._build_segment(int(slot))
        self._all_built = True

    def rebuild_segments(self, slots: Iterable[int], weights: Optional[np.ndarray] = None) -> None:
        """Invalidate (and lazily rebuild) the given segments after a delta.

        ``weights`` optionally replaces the rows' weights in CSR order (same
        shape — for shape-changing deltas build a fresh table instead).  Only
        the named slots pay reconstruction work; everything else keeps its
        tables, which is the "per-segment where the delta is local" half of
        the epoch protocol.
        """
        slot_arr = np.asarray(list(slots), dtype=np.intp)
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if w.shape != self.weights.shape:
                raise ValueError(
                    "rebuild_segments cannot change the CSR shape; build a new table"
                )
            self.weights = w
            for slot in slot_arr.tolist():
                start, end = int(self.offsets[slot]), int(self.offsets[slot + 1])
                self.segment_totals[slot] = float(self.weights[start:end].sum())
        for slot in slot_arr.tolist():
            start, end = int(self.offsets[slot]), int(self.offsets[slot + 1])
            self.prob[start:end] = 1.0
            self.alias[start:end] = np.arange(start, end, dtype=np.intp)
            segment = self.weights[start:end]
            uniform = segment.size == 0 or float(segment.max()) == float(segment.min())
            self._built[slot] = uniform
            if not uniform:
                self._all_built = False

    # ------------------------------------------------------------------ draws
    def sample(self, rng: np.random.Generator, slots: np.ndarray) -> np.ndarray:
        """One weighted draw per entry of ``slots``; returns global CSR indices.

        Every addressed slot must have positive total weight (the sampler
        filters empty/zero segments through :attr:`segment_totals` first).
        """
        slots = np.asarray(slots, dtype=np.intp)
        self.ensure_built(slots)
        starts = self.offsets[slots]
        degrees = self.offsets[slots + 1] - starts
        darts = starts + np.minimum(
            (rng.random(slots.size) * degrees).astype(np.intp), degrees - 1
        )
        keep = rng.random(slots.size) < self.prob[darts]
        return np.where(keep, darts, self.alias[darts]).astype(np.intp, copy=False)


def uniform_segment_pick(
    rng: np.random.Generator, starts: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """One uniform pick inside each CSR segment (the wander-join hop kernel).

    The degenerate alias table of a uniform segment is a single dart — no
    coin flip — so wander join's "move to a uniformly random joinable row"
    shares this kernel instead of carrying prob/alias arrays of all ones.
    """
    return starts + np.minimum(
        (rng.random(starts.size) * degrees).astype(np.intp), degrees - 1
    )


__all__ = ["AliasTable", "SegmentedAliasTable", "uniform_segment_pick"]
