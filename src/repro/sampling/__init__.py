"""Single-join sampling substrate: weights, accept/reject sampling, wander join."""

from repro.sampling.alias import AliasTable, SegmentedAliasTable, uniform_segment_pick
from repro.sampling.blocks import SampleBlock
from repro.sampling.join_sampler import JoinSampler, JoinSamplerStats, SampleDraw
from repro.sampling.olken import node_max_degree, olken_refined_bound, olken_upper_bound
from repro.sampling.wander_join import (
    RunningEstimator,
    SizeEstimate,
    WalkResult,
    WanderJoin,
    z_value,
)
from repro.sampling.weights import (
    ExactWeightFunction,
    ExtendedOlkenWeightFunction,
    WeightFunction,
    make_weight_function,
)

__all__ = [
    "AliasTable",
    "SegmentedAliasTable",
    "uniform_segment_pick",
    "SampleBlock",
    "JoinSampler",
    "JoinSamplerStats",
    "SampleDraw",
    "olken_upper_bound",
    "olken_refined_bound",
    "node_max_degree",
    "WanderJoin",
    "WalkResult",
    "SizeEstimate",
    "RunningEstimator",
    "z_value",
    "WeightFunction",
    "ExactWeightFunction",
    "ExtendedOlkenWeightFunction",
    "make_weight_function",
]
