"""Olken-style join size upper bounds.

The paper (§3.2) extends Olken's classic two-relation bound to joins of an
arbitrary number of relations: for a chain join ``J = R_1 ⋈ ... ⋈ R_n``,

    |J| ≤ |R_1| · Π_{i=1}^{n-1} M_{A_i}(R_{i+1})

where ``M_{A_i}(R_{i+1})`` is the maximum value frequency of the join
attribute in the next relation.  Over a join tree the product runs over every
non-root node's (possibly composite) join key with its parent, which also
covers acyclic joins; for cyclic joins the bound over the skeleton is still an
upper bound because residual conditions only filter results.
"""

from __future__ import annotations

from typing import Optional

from repro.joins.join_tree import JoinTree, build_join_tree
from repro.joins.query import JoinQuery


def node_max_degree(query: JoinQuery, tree: JoinTree, relation: str) -> int:
    """Maximum degree of ``relation``'s join key with its parent in the tree."""
    node = tree.node_for(relation)
    if node.is_root:
        raise ValueError(f"{relation!r} is the root of the join tree; it has no join key")
    stats = query.relation(relation).statistics_on_columns(node.child_attributes)
    return stats.max_degree


def olken_upper_bound(query: JoinQuery, tree: Optional[JoinTree] = None) -> float:
    """Extended Olken upper bound on the join size of ``query``.

    Returns 0.0 when any relation is empty or any hop has no joinable values
    at all (maximum degree 0).
    """
    tree = tree or build_join_tree(query)
    root_rel = query.relation(tree.root.relation)
    bound = float(len(root_rel))
    for node in tree.root.walk():
        if node.is_root:
            continue
        stats = query.relation(node.relation).statistics_on_columns(node.child_attributes)
        bound *= float(stats.max_degree)
        if bound == 0.0:
            return 0.0
    return bound


def olken_refined_bound(query: JoinQuery, tree: Optional[JoinTree] = None) -> float:
    """Refinement of the Olken bound using *average* degrees instead of maxima.

    This is no longer a guaranteed upper bound; it is the cheap unbiased-ish
    estimate the paper mentions as the refinement available when full
    histograms exist for all join attributes (§5.1).
    """
    tree = tree or build_join_tree(query)
    root_rel = query.relation(tree.root.relation)
    estimate = float(len(root_rel))
    for node in tree.root.walk():
        if node.is_root:
            continue
        stats = query.relation(node.relation).statistics_on_columns(node.child_attributes)
        estimate *= float(stats.average_degree)
    return estimate


__all__ = ["olken_upper_bound", "olken_refined_bound", "node_max_degree"]
