"""Struct-of-arrays sample blocks: the zero-object sampler output format.

A :class:`SampleBlock` holds a batch of accepted samples as per-relation row
**index arrays** plus the Horvitz–Thompson bookkeeping the AQP layer needs
(attempt counts; one shared inverse inclusion weight, or a per-sample weight
array for wander join).  Nothing is boxed: no ``SampleDraw`` objects, no
per-row dicts, no Python value tuples — consumers either keep working on the
arrays (``aqp.estimators.AggregateAccumulator.ingest_block``, the parallel
shard merge) or box lazily via :meth:`to_draws` for the scalar-era APIs.

Blocks are cheap to pickle (a dict of small integer arrays), which is what
lets the parallel service ship sampler output across process boundaries
without serializing draw-object graphs.  Row indices refer to the relations
of the query the block was drawn from; the epoch guard of the parallel
coordinator ensures those relations have not mutated in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class SampleBlock:
    """A batch of accepted samples in struct-of-arrays layout.

    Attributes
    ----------
    relation_order:
        Relation names in the sampler's descent order (root first).
    positions:
        Relation name -> row-position array; all arrays share one length,
        the number of accepted samples in the block.
    attempts:
        Draw attempts consumed producing this block (failed walks included);
        the denominator of attempt-level Horvitz–Thompson estimation.
    weight:
        Shared inverse inclusion weight of every sample (the weight
        function's total weight ``W`` for accept/reject backends).
    weights:
        Optional per-sample inverse inclusion weights (wander join:
        ``1/p(t)``); when present it overrides ``weight``.
    """

    relation_order: Tuple[str, ...]
    positions: Dict[str, np.ndarray] = field(default_factory=dict)
    attempts: int = 0
    weight: float = 0.0
    weights: Optional[np.ndarray] = None

    def __len__(self) -> int:
        if not self.relation_order:
            return 0
        return int(len(self.positions[self.relation_order[0]]))

    # ------------------------------------------------------------ construction
    @classmethod
    def empty(cls, relation_order: Sequence[str], weight: float = 0.0) -> "SampleBlock":
        order = tuple(relation_order)
        return cls(
            relation_order=order,
            positions={name: np.empty(0, dtype=np.intp) for name in order},
            attempts=0,
            weight=weight,
        )

    @classmethod
    def concat(cls, blocks: Sequence["SampleBlock"]) -> "SampleBlock":
        """Concatenate blocks over the same relations; attempts accumulate."""
        if not blocks:
            raise ValueError("need at least one block to concatenate")
        if len(blocks) == 1:
            return blocks[0]
        first = blocks[0]
        positions = {
            name: np.concatenate([b.positions[name] for b in blocks])
            for name in first.relation_order
        }
        weights = None
        if any(b.weights is not None for b in blocks):
            weights = np.concatenate(
                [
                    b.weights
                    if b.weights is not None
                    else np.full(len(b), b.weight, dtype=float)
                    for b in blocks
                ]
            )
        return cls(
            relation_order=first.relation_order,
            positions=positions,
            attempts=sum(b.attempts for b in blocks),
            weight=first.weight,
            weights=weights,
        )

    def split(self, count: int) -> Tuple["SampleBlock", "SampleBlock"]:
        """``(head, tail)`` with ``len(head) == count``.

        The attempt count stays with the head: a surplus tail parked in the
        sampler's buffer must not double-count attempts the caller already
        accounted for.
        """
        return (
            self.slice(0, count, attempts=self.attempts),
            self.slice(count, len(self), attempts=0),
        )

    # ------------------------------------------------------------------- views
    def slice(self, start: int, stop: int, *, attempts: int = 0) -> "SampleBlock":
        """Zero-copy view of samples ``[start:stop)``.

        Position (and per-sample weight) arrays are numpy basic slices of the
        parent's — no data moves.  ``attempts`` defaults to 0 because a
        partial view has no attempt accounting of its own: Horvitz–Thompson
        attempt counts belong to whole draw batches, and callers that consume
        a full block must say so explicitly (see :meth:`split`).
        """
        return SampleBlock(
            relation_order=self.relation_order,
            positions={n: p[start:stop] for n, p in self.positions.items()},
            attempts=attempts,
            weight=self.weight,
            weights=self.weights[start:stop] if self.weights is not None else None,
        )

    def reweighted(self, weight: float) -> "SampleBlock":
        """View of this block carrying ``weight`` as its shared HT weight.

        Used by the sample-cache tier: a cached block is re-served with the
        *consumer's* current weight-function total, so cached contributions
        enter the accumulator with exactly the value a fresh draw under the
        same snapshot would use (no publisher/consumer rounding drift).  Only
        shared-weight (accept/reject) blocks can be reweighted this way —
        per-sample weight arrays (wander join) encode path probabilities that
        a scalar cannot replace.
        """
        if self.weights is not None:
            raise ValueError(
                "cannot reweight a block with per-sample weights; the "
                "per-path 1/p(t) values are not a shared scalar"
            )
        return SampleBlock(
            relation_order=self.relation_order,
            positions=self.positions,
            attempts=self.attempts,
            weight=float(weight),
        )

    def freeze(self) -> "SampleBlock":
        """Mark every array read-only and return ``self``.

        Cache-resident blocks are shared by every consumer of the stream;
        freezing turns an accidental in-place edit (which would silently
        corrupt other requests' answers) into an immediate ``ValueError``.
        """
        for array in self.positions.values():
            array.flags.writeable = False
        if self.weights is not None:
            self.weights.flags.writeable = False
        return self

    @property
    def nbytes(self) -> int:
        """Resident bytes of the position/weight arrays (eviction accounting)."""
        total = sum(int(p.nbytes) for p in self.positions.values())
        if self.weights is not None:
            total += int(self.weights.nbytes)
        return total

    # ------------------------------------------------------------- consumption
    def value_columns(self, query) -> List[np.ndarray]:
        """Per-output-attribute value arrays (in output-schema order).

        One fancy gather per output attribute — the zero-object projection
        that replaces row-by-row value tuple assembly.
        """
        columns: List[np.ndarray] = []
        for out in query.output_attributes:
            relation = query.relation(out.relation)
            columns.append(
                relation.columns.array(out.attribute)[self.positions[out.relation]]
            )
        return columns

    def values(self, query) -> List[Tuple]:
        """Boxed output value tuples (Python-typed, scalar-era format)."""
        columns = [c.tolist() for c in self.value_columns(query)]
        return list(zip(*columns)) if columns else [() for _ in range(len(self))]

    def to_draws(self, query) -> List["SampleDraw"]:
        """Box into ``SampleDraw`` objects (the backward-compatible view)."""
        from repro.sampling.join_sampler import SampleDraw

        values = self.values(query)
        assignment_columns = {
            name: positions.tolist() for name, positions in self.positions.items()
        }
        names = self.relation_order
        return [
            SampleDraw(
                value=value,
                assignment={name: assignment_columns[name][i] for name in names},
                attempts=1,
            )
            for i, value in enumerate(values)
        ]


__all__ = ["SampleBlock"]
