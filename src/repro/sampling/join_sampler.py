"""Uniform, independent sampling from a single join (Zhao et al., revisited).

:class:`JoinSampler` draws i.i.d. uniform samples from the result of one join
query without materializing it, by walking the join tree root-to-leaves:

1. pick a root row with probability proportional to its weight;
2. at every child relation, look up the joinable rows via the hash index,
   accept the descent with probability ``realized weight / bound`` (always 1
   for exact weights), and pick one joinable row proportionally to its weight;
3. for cyclic joins, verify the residual (cycle-breaking) conditions on the
   assembled assignment;
4. optionally verify selection predicates that were not pushed down (§8.3).

Every accepted result has probability ``1 / W`` where ``W`` is the weight
function's total weight, hence results are uniform over the join; acceptance
probability is ``|J| / W``.

Two execution paths produce identically-distributed samples:

* the scalar path (:meth:`JoinSampler.try_sample`) performs one root-to-leaf
  walk at a time — the reference implementation of the paper's algorithm;
* the batched path (:meth:`JoinSampler.sample_batch`) runs whole batches of
  walks level-by-level over the columnar/CSR storage layer: one vectorized
  inverse-CDF draw over the cumulative root weights, then per level a key
  gather, a CSR slot lookup, a vectorized accept/reject test and a vectorized
  weighted child choice.  :meth:`sample` and :meth:`sample_many` refill from
  an internal buffer fed by the batched path.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery
from repro.sampling.weights import (
    ExactWeightFunction,
    WeightFunction,
    make_weight_function,
)
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass
class SampleDraw:
    """One accepted sample from a join.

    Attributes
    ----------
    value:
        The output value (``t.val``): projection onto the output attributes.
    assignment:
        Relation name -> row position of the underlying join result.
    attempts:
        Number of root-to-leaf walks needed to produce this accepted sample
        (always 1 for samples produced by the batched path, which accounts
        rejected walks in the sampler-level stats instead).
    """

    value: Tuple
    assignment: Dict[str, int]
    attempts: int = 1


@dataclass
class JoinSamplerStats:
    """Cumulative accept/reject counters of a :class:`JoinSampler`."""

    attempts: int = 0
    accepted: int = 0
    rejected_weight: int = 0
    rejected_empty: int = 0
    rejected_residual: int = 0
    rejected_predicate: int = 0

    @property
    def acceptance_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.accepted / self.attempts


@dataclass
class _LevelPlan:
    """Precomputed per-node arrays for the batched descent.

    For the non-root node ``node`` with parent ``parent``:

    * ``parent_keys[p]`` is the join-key value of parent row ``p``;
    * ``csr`` groups the node's row positions by key (CSR layout);
    * ``csr_weights`` are the node rows' weights in CSR order,
      ``cum_weights`` their running sum, ``seg_sums``/``seg_prefix`` the
      realized weight sum of each key segment and the cumulative weight in
      front of it — together they turn "pick a joinable row proportionally to
      its weight" into one ``searchsorted`` per batch.
    """

    node: JoinTreeNode
    parent: JoinTreeNode
    parent_keys: np.ndarray
    csr: object  # SortedIndex
    csr_weights: np.ndarray
    cum_weights: np.ndarray
    seg_sums: np.ndarray
    seg_prefix: np.ndarray
    bound: Optional[float]


class JoinSampler:
    """Accept/reject uniform sampler over one join query.

    Parameters
    ----------
    query:
        The join to sample from.
    weights:
        ``"ew"`` (exact weights), ``"eo"`` (extended Olken), ``"auto"``
        (cost-based choice between the two via
        :func:`repro.aqp.planner.choose_weights`), or a prebuilt
        :class:`~repro.sampling.weights.WeightFunction`.
    seed:
        Seed or generator for reproducible draws.
    enforce_predicates:
        When True and the query carries predicates that were *not* pushed
        down, each assembled result is additionally checked against them and
        rejected on failure (§8.3 second alternative).
    max_batch_size:
        Upper bound on the number of simultaneous walks of one batched pass.
    parallelism:
        When > 1, :meth:`sample_batch` / :meth:`sample_many` fan the request
        out across that many internal shard samplers (created lazily via
        :meth:`split`, seeds derived from this sampler's stream) running on a
        thread pool, and concatenate the results in shard order — so the
        draw sequence is deterministic for a fixed seed and parallelism.
    """

    def __init__(
        self,
        query: JoinQuery,
        weights: str | WeightFunction = "ew",
        seed: RandomState = None,
        tree: Optional[JoinTree] = None,
        enforce_predicates: bool = True,
        max_batch_size: int = 8192,
        parallelism: int = 1,
    ) -> None:
        self.query = query
        self.tree = tree or build_join_tree(query)
        if isinstance(weights, WeightFunction):
            self.weight_function = weights
            # A prebuilt weight function may predate mutations of the base
            # relations; re-sync before caching anything derived from it.
            self.weight_function.refresh()
        else:
            if weights == "auto":
                # Deferred import: the planner lives above the sampling layer.
                from repro.aqp.planner import choose_weights

                weights = choose_weights(query)
            self.weight_function = make_weight_function(weights, query, self.tree)
        self.rng = ensure_rng(seed)
        self.enforce_predicates = enforce_predicates
        self.stats = JoinSamplerStats()
        #: pre-order node list (root first) for the descent
        self._order: List[Tuple[JoinTreeNode, Optional[JoinTreeNode]]] = []
        self._collect(self.tree.root, None)
        self._relation_order = [node.relation for node, _ in self._order]
        self._relations = [self.query.relation(name) for name in self._relation_order]
        self._db_versions = tuple(r.version for r in self._relations)
        self._plans: Optional[List[_LevelPlan]] = None
        self._buffer: Deque[SampleDraw] = deque()
        self._min_batch_size = 32
        self._max_batch_size = max(int(max_batch_size), 1)
        self.parallelism = max(int(parallelism), 1)
        self._shard_samplers: Optional[List["JoinSampler"]] = None
        self._load_root_weights()

    def _load_root_weights(self) -> None:
        self._root_weights = np.asarray(self.weight_function.root_weights(), dtype=float)
        self._root_total = float(self._root_weights.sum())
        self._root_cumulative = (
            np.cumsum(self._root_weights) if self._root_total > 0 else None
        )

    def _collect(self, node: JoinTreeNode, parent: Optional[JoinTreeNode]) -> None:
        self._order.append((node, parent))
        for child in node.children:
            self._collect(child, node)

    # ----------------------------------------------------------------- public
    @property
    def stale(self) -> bool:
        """True when a base relation mutated since the last (re)build."""
        return tuple(r.version for r in self._relations) != self._db_versions

    def refresh(self) -> bool:
        """Re-sync with mutated base relations; returns True when stale.

        The epoch protocol: every effective mutation bumps
        :attr:`Relation.version`; each draw entry point compares those
        counters (a handful of int comparisons) and, on staleness, refreshes
        the weight function (which patches only the affected segments),
        reloads the root CDF, drops the level plans (rebuilt lazily from the
        delta-maintained CSR indexes), and — critically — discards buffered
        draws, which describe the *previous* database state.
        """
        versions = tuple(r.version for r in self._relations)
        if versions == self._db_versions:
            return False
        self.weight_function.refresh()
        self._load_root_weights()
        self._plans = None
        self._buffer.clear()
        if self._shard_samplers:
            # Shard buffers hold previous-epoch draws too; re-sync them now so
            # pop_buffered() can never hand out stale shard draws.
            for shard in self._shard_samplers:
                shard.refresh()
        self._db_versions = versions
        return True

    @property
    def size_bound(self) -> float:
        """The weight function's total weight (upper bound on the join size)."""
        self.refresh()
        return self.weight_function.total_weight

    def exact_size(self) -> Optional[float]:
        """Exact (skeleton) join size when exact weights are in use, else None."""
        if isinstance(self.weight_function, ExactWeightFunction):
            self.refresh()
            return self.weight_function.total_weight
        return None

    def try_sample(self) -> Optional[SampleDraw]:
        """One root-to-leaf attempt; ``None`` when the walk is rejected.

        This is the scalar reference path; :meth:`sample_batch` runs the same
        accept/reject process vectorized over whole batches of walks.
        """
        self.refresh()
        self.stats.attempts += 1
        if self._root_total <= 0:
            self.stats.rejected_empty += 1
            return None
        assignment: Dict[str, int] = {}
        root = self.tree.root
        root_pos = self._weighted_root_choice()
        if root_pos is None:
            self.stats.rejected_empty += 1
            return None
        assignment[root.relation] = root_pos

        for node, parent in self._order:
            if parent is None:
                continue
            parent_rel = self.query.relation(parent.relation)
            child_rel = self.query.relation(node.relation)
            parent_row = parent_rel.row(assignment[parent.relation])
            key = tuple(
                parent_row[parent_rel.schema.position(a)] for a in node.parent_attributes
            )
            lookup = key if len(key) > 1 else key[0]
            index = child_rel.index_on_columns(node.child_attributes)
            joinable = index.positions(lookup)
            if not joinable:
                self.stats.rejected_empty += 1
                return None
            weights = self.weight_function.weights_for(node, joinable)
            realized = float(weights.sum())
            if realized <= 0:
                self.stats.rejected_empty += 1
                return None
            bound = self.weight_function.acceptance_bound(node)
            if bound is not None and bound > 0:
                if self.rng.random() >= realized / bound:
                    self.stats.rejected_weight += 1
                    return None
            chosen = int(self.rng.choice(len(joinable), p=weights / realized))
            assignment[node.relation] = joinable[chosen]

        if not self.tree.residual_satisfied(assignment):
            self.stats.rejected_residual += 1
            return None
        if self.enforce_predicates and not self._predicates_satisfied(assignment):
            self.stats.rejected_predicate += 1
            return None

        self.stats.accepted += 1
        return SampleDraw(
            value=self.query.project_assignment(assignment),
            assignment=dict(assignment),
            attempts=1,
        )

    def sample(self, max_attempts: int = 1_000_000) -> SampleDraw:
        """One accepted sample (refills an internal buffer via the batch path)."""
        self.refresh()  # a stale buffer must not serve previous-epoch draws
        if self._buffer:
            return self._buffer.popleft()
        draws = self.sample_batch(1, max_attempts=max_attempts)
        return draws[0]

    def sample_many(self, count: int, max_attempts: int = 1_000_000) -> List[SampleDraw]:
        """``count`` independent accepted samples."""
        return self.sample_batch(count, max_attempts=max_attempts)

    def sample_batch(self, count: int, max_attempts: int = 1_000_000) -> List[SampleDraw]:
        """``count`` accepted samples drawn via the batched descent.

        Rejected walks are retried in adaptively-sized batches; a stretch of
        ``max_attempts`` consecutive rejected walks raises ``RuntimeError``
        (bound too loose or empty join).  On that error the samples accepted
        so far are parked in the internal buffer — never dropped — so a
        retry (or a later call) picks them up.  Surplus accepted walks are
        likewise kept in the buffer for subsequent calls.  ``count=0``
        returns an empty list without consuming random state or touching the
        buffer.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.refresh()
        if count == 0:
            return []
        if self.parallelism > 1:
            return self._sample_batch_parallel(count, max_attempts)
        draws: List[SampleDraw] = []
        while self._buffer and len(draws) < count:
            draws.append(self._buffer.popleft())
        attempts_since_accept = 0
        while len(draws) < count:
            need = count - len(draws)
            size = min(self._next_batch_size(need), max(1, max_attempts - attempts_since_accept))
            accepted = self._attempt_batch(size)
            if accepted:
                attempts_since_accept = 0
                draws.extend(accepted)
            else:
                attempts_since_accept += size
                if attempts_since_accept >= max_attempts:
                    # Park the accepted work instead of losing it: the buffer
                    # stays consistent, so a later call (e.g. after the
                    # caller raises its budget) continues cleanly.
                    self._buffer.extend(draws)
                    raise RuntimeError(
                        f"JoinSampler on {self.query.name!r} failed to accept a sample "
                        f"after {max_attempts} attempts (bound too loose or empty join)"
                    )
        self._buffer.extend(draws[count:])
        return draws[:count]

    def pop_buffered(self) -> List[SampleDraw]:
        """Drain and return the buffered surplus of the last batched pass.

        The AQP layer consumes every accepted draw of a batch so that its
        attempt-level accounting (accepted vs. rejected walks, read off
        :attr:`stats`) stays aligned with the draws it ingested.  With
        ``parallelism > 1`` the shard samplers' buffers are drained too.
        """
        drained = list(self._buffer)
        self._buffer.clear()
        if self._shard_samplers:
            for shard in self._shard_samplers:
                drained.extend(shard.pop_buffered())
        return drained

    def split(self, count: int, seed: RandomState = None) -> List["JoinSampler"]:
        """``count`` independent shard samplers over the same join.

        The shards share this sampler's weight function and join tree (so the
        expensive weight computation is paid once) but draw from independent
        streams derived via :func:`~repro.utils.rng.spawn_rngs` — by default
        from this sampler's own stream, so a fixed parent seed yields a fixed
        family of shards.  Shards are safe to run on concurrent threads as
        long as the base relations do not mutate mid-batch (the coordinator
        epoch guard in :mod:`repro.parallel` handles mutations between
        batches).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        streams = spawn_rngs(self.rng if seed is None else seed, count)
        return [
            JoinSampler(
                self.query,
                weights=self.weight_function,
                seed=stream,
                tree=self.tree,
                enforce_predicates=self.enforce_predicates,
                max_batch_size=self._max_batch_size,
            )
            for stream in streams
        ]

    def _sample_batch_parallel(self, count: int, max_attempts: int) -> List[SampleDraw]:
        """Fan ``count`` across the shard samplers; concatenate in shard order."""
        # Serve parked draws first (same contract as the sequential path: the
        # buffer may hold accepted work preserved by an earlier failure).
        draws: List[SampleDraw] = []
        while self._buffer and len(draws) < count:
            draws.append(self._buffer.popleft())
        remaining = count - len(draws)
        if remaining == 0:
            return draws
        if self._shard_samplers is None:
            self._shard_samplers = self.split(self.parallelism)
        shards = self._shard_samplers
        base, extra = divmod(remaining, len(shards))
        quotas = [base + (1 if i < extra else 0) for i in range(len(shards))]
        before = [_stats_snapshot(s.stats) for s in shards]
        with ThreadPoolExecutor(max_workers=len(shards)) as executor:
            futures = [
                executor.submit(shard.sample_batch, quota, max_attempts) if quota else None
                for shard, quota in zip(shards, quotas)
            ]
            error: Optional[BaseException] = None
            for future in futures:
                if future is None:
                    continue
                try:
                    draws.extend(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    error = error or exc
        for shard, snapshot in zip(shards, before):
            _merge_stats_delta(self.stats, shard.stats, snapshot)
        if error is not None:
            # Preserve whatever the healthy shards produced (mirrors the
            # sequential exhaustion path) before surfacing the failure.
            self._buffer.extend(draws)
            raise error
        return draws

    # ------------------------------------------------------------- batch path
    def _next_batch_size(self, need: int) -> int:
        """Batch size that should yield ``need`` accepted samples in one pass."""
        if self.stats.attempts > 0 and self.stats.accepted > 0:
            rate = self.stats.accepted / self.stats.attempts
            estimate = int(need / rate * 1.25) + 1
        else:
            estimate = need * 4
        return max(self._min_batch_size, min(estimate, self._max_batch_size))

    def _level_plans(self) -> List[_LevelPlan]:
        """Per-node CSR/weight arrays, built once on first batched call."""
        if self._plans is None:
            plans: List[_LevelPlan] = []
            for node, parent in self._order:
                if parent is None:
                    continue
                parent_rel = self.query.relation(parent.relation)
                child_rel = self.query.relation(node.relation)
                csr = child_rel.sorted_index_on_columns(node.child_attributes)
                csr_weights = np.asarray(
                    self.weight_function.weights_for(node, csr.row_positions),
                    dtype=float,
                )
                cum_weights = np.cumsum(csr_weights)
                starts = csr.offsets[:-1]
                # Zero-degree slots (deletions pending compaction) sum to 0
                # and are rejected by the realized-weight filter during the
                # descent; reduceat runs over non-empty starts only, since it
                # misreads zero-length segments.
                seg_sums = np.zeros(csr.n_keys, dtype=float)
                seg_prefix = np.zeros(csr.n_keys, dtype=float)
                if csr.n_keys and csr_weights.size:
                    nonempty = csr.offsets[1:] > starts
                    if bool(nonempty.any()):
                        ne_starts = starts[nonempty]
                        seg_sums[nonempty] = np.add.reduceat(csr_weights, ne_starts)
                        seg_prefix[nonempty] = (
                            cum_weights[ne_starts] - csr_weights[ne_starts]
                        )
                plans.append(
                    _LevelPlan(
                        node=node,
                        parent=parent,
                        parent_keys=parent_rel.join_key_array(node.parent_attributes),
                        csr=csr,
                        csr_weights=csr_weights,
                        cum_weights=cum_weights,
                        seg_sums=seg_sums,
                        seg_prefix=seg_prefix,
                        bound=self.weight_function.acceptance_bound(node),
                    )
                )
            self._plans = plans
        return self._plans

    def _attempt_batch(self, size: int) -> List[SampleDraw]:
        """Run ``size`` root-to-leaf walks simultaneously; return the accepted."""
        self.stats.attempts += size
        if self._root_total <= 0 or self._root_cumulative is None:
            self.stats.rejected_empty += size
            return []

        chosen: Dict[str, np.ndarray] = {
            name: np.full(size, -1, dtype=np.intp) for name in self._relation_order
        }
        chosen[self.tree.root.relation] = self._batch_root_choice(size)
        walks = np.arange(size, dtype=np.intp)

        for plan in self._level_plans():
            if walks.size == 0:
                break
            parent_positions = chosen[plan.parent.relation][walks]
            keys = plan.parent_keys[parent_positions]
            slots = plan.csr.slots_for(keys)
            present = slots >= 0
            if not present.all():
                self.stats.rejected_empty += int((~present).sum())
                walks = walks[present]
                slots = slots[present]
                if walks.size == 0:
                    break
            realized = plan.seg_sums[slots]
            positive = realized > 0
            if not positive.all():
                self.stats.rejected_empty += int((~positive).sum())
                walks = walks[positive]
                slots = slots[positive]
                realized = realized[positive]
                if walks.size == 0:
                    break
            if plan.bound is not None and plan.bound > 0:
                accept = self.rng.random(walks.size) < realized / plan.bound
                if not accept.all():
                    self.stats.rejected_weight += int((~accept).sum())
                    walks = walks[accept]
                    slots = slots[accept]
                    realized = realized[accept]
                    if walks.size == 0:
                        break
            # Weighted child choice: inverse CDF within each key's segment of
            # the global cumulative weight array.
            starts = plan.csr.offsets[slots]
            ends = plan.csr.offsets[slots + 1]
            targets = plan.seg_prefix[slots] + self.rng.random(walks.size) * realized
            idx = np.searchsorted(plan.cum_weights, targets, side="right")
            idx = np.clip(idx, starts, ends - 1)
            chosen[plan.node.relation][walks] = plan.csr.row_positions[idx]

        if walks.size and self.tree.residual_conditions:
            walks = self._filter_residuals(chosen, walks)
        if (
            walks.size
            and self.enforce_predicates
            and self.query.predicates
            and not self.query.push_down_predicates
        ):
            walks = self._filter_predicates(chosen, walks)
        if walks.size == 0:
            return []

        self.stats.accepted += int(walks.size)
        return self._assemble_draws(chosen, walks)

    def _batch_root_choice(self, size: int) -> np.ndarray:
        """Vectorized inverse-CDF draw of ``size`` root rows."""
        assert self._root_cumulative is not None
        targets = self.rng.random(size) * self._root_total
        positions = np.searchsorted(self._root_cumulative, targets, side="right")
        np.clip(positions, 0, len(self._root_weights) - 1, out=positions)
        # Floating-point edge effects can land on a zero-weight row; redraw
        # those explicitly (the scalar path does the same).
        bad = self._root_weights[positions] <= 0
        if bad.any():
            positive = np.flatnonzero(self._root_weights > 0)
            probabilities = self._root_weights[positive] / self._root_weights[positive].sum()
            positions[bad] = self.rng.choice(
                positive, size=int(bad.sum()), p=probabilities
            )
        return positions.astype(np.intp, copy=False)

    def _filter_residuals(self, chosen: Dict[str, np.ndarray], walks: np.ndarray) -> np.ndarray:
        """Drop walks whose assembled assignment violates a residual condition."""
        ok = self.tree.residual_mask(
            {name: positions[walks] for name, positions in chosen.items()}
        )
        rejected = int((~ok).sum())
        if rejected:
            self.stats.rejected_residual += rejected
            walks = walks[ok]
        return walks

    def _filter_predicates(self, chosen: Dict[str, np.ndarray], walks: np.ndarray) -> np.ndarray:
        """Drop walks violating predicates that were not pushed down (§8.3)."""
        keep = np.ones(walks.size, dtype=bool)
        for rel_name, predicate in self.query.predicates.items():
            relation = self.query.relation(rel_name)
            positions = chosen[rel_name][walks]
            for i, pos in enumerate(positions.tolist()):
                if keep[i] and not predicate.evaluate(relation.row(pos), relation.schema):
                    keep[i] = False
        rejected = int((~keep).sum())
        if rejected:
            self.stats.rejected_predicate += rejected
            walks = walks[keep]
        return walks

    def _assemble_draws(self, chosen: Dict[str, np.ndarray], walks: np.ndarray) -> List[SampleDraw]:
        """Materialize SampleDraw objects for the surviving walks."""
        value_columns = []
        for out in self.query.output_attributes:
            relation = self.query.relation(out.relation)
            value_columns.append(
                relation.columns.gather(out.attribute, chosen[out.relation][walks])
            )
        values = list(zip(*value_columns))
        assignment_columns = {
            name: chosen[name][walks].tolist() for name in self._relation_order
        }
        draws = []
        names = self._relation_order
        for i, value in enumerate(values):
            assignment = {name: assignment_columns[name][i] for name in names}
            draws.append(SampleDraw(value=value, assignment=assignment, attempts=1))
        return draws

    # --------------------------------------------------------------- internals
    def _weighted_root_choice(self) -> Optional[int]:
        if self._root_cumulative is None:
            return None
        target = self.rng.random() * self._root_total
        pos = int(np.searchsorted(self._root_cumulative, target, side="right"))
        if pos >= len(self._root_weights):
            pos = len(self._root_weights) - 1
        if self._root_weights[pos] <= 0:
            # Landed on a zero-weight row due to floating point edge effects;
            # fall back to an explicit renormalized choice.
            positive = np.flatnonzero(self._root_weights > 0)
            if positive.size == 0:
                return None
            probabilities = self._root_weights[positive] / self._root_weights[positive].sum()
            pos = int(self.rng.choice(positive, p=probabilities))
        return pos

    def _predicates_satisfied(self, assignment: Dict[str, int]) -> bool:
        if self.query.push_down_predicates or not self.query.predicates:
            return True
        for rel_name, predicate in self.query.predicates.items():
            relation = self.query.relation(rel_name)
            row = relation.row(assignment[rel_name])
            if not predicate.evaluate(row, relation.schema):
                return False
        return True


_STATS_FIELDS = (
    "attempts",
    "accepted",
    "rejected_weight",
    "rejected_empty",
    "rejected_residual",
    "rejected_predicate",
)


def _stats_snapshot(stats: JoinSamplerStats) -> Tuple[int, ...]:
    return tuple(getattr(stats, name) for name in _STATS_FIELDS)


def _merge_stats_delta(
    target: JoinSamplerStats, shard: JoinSamplerStats, snapshot: Tuple[int, ...]
) -> None:
    """Add a shard's counter growth since ``snapshot`` into ``target``."""
    for name, previous in zip(_STATS_FIELDS, snapshot):
        setattr(target, name, getattr(target, name) + getattr(shard, name) - previous)


__all__ = ["JoinSampler", "JoinSamplerStats", "SampleDraw"]
