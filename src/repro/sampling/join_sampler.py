"""Uniform, independent sampling from a single join (Zhao et al., revisited).

:class:`JoinSampler` draws i.i.d. uniform samples from the result of one join
query without materializing it, by walking the join tree root-to-leaves:

1. pick a root row with probability proportional to its weight;
2. at every child relation, look up the joinable rows via the hash index,
   accept the descent with probability ``realized weight / bound`` (always 1
   for exact weights), and pick one joinable row proportionally to its weight;
3. for cyclic joins, verify the residual (cycle-breaking) conditions on the
   assembled assignment;
4. optionally verify selection predicates that were not pushed down (§8.3).

Every accepted result has probability ``1 / W`` where ``W`` is the weight
function's total weight, hence results are uniform over the join; acceptance
probability is ``|J| / W``.

Two execution paths produce identically-distributed samples:

* the scalar path (:meth:`JoinSampler.try_sample`) performs one root-to-leaf
  walk at a time — the reference implementation of the paper's algorithm;
* the columnar path (:meth:`JoinSampler.sample_block`) runs whole batches of
  walks level-by-level over the columnar/CSR storage layer.  The root row and
  every per-level child choice are O(1) Walker/Vose alias-table draws (two
  array lookups per draw — see :mod:`repro.sampling.alias`) instead of
  O(log n) ``searchsorted`` probes, and accepted walks come back as one
  struct-of-arrays :class:`~repro.sampling.blocks.SampleBlock` — no per-draw
  Python objects anywhere on the sampler → aggregator → shard-merge path.

:meth:`sample_batch` / :meth:`sample_many` / :meth:`sample` are thin views
that box blocks into :class:`SampleDraw` lists for the scalar-era API; they
consume the exact same draw stream as :meth:`sample_block` (boxing happens
after the fact), so block and batch output are bit-identical for a fixed
seed.
"""

from __future__ import annotations

import functools
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery
from repro.sampling.alias import AliasTable, SegmentedAliasTable
from repro.sampling.blocks import SampleBlock
from repro.sampling.weights import (
    ExactWeightFunction,
    WeightFunction,
    make_weight_function,
)
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass
class SampleDraw:
    """One accepted sample from a join.

    Attributes
    ----------
    value:
        The output value (``t.val``): projection onto the output attributes.
    assignment:
        Relation name -> row position of the underlying join result.
    attempts:
        Number of root-to-leaf walks needed to produce this accepted sample
        (always 1 for samples produced by the batched path, which accounts
        rejected walks in the sampler-level stats instead).
    """

    value: Tuple
    assignment: Dict[str, int]
    attempts: int = 1


@dataclass
class JoinSamplerStats:
    """Cumulative accept/reject counters of a :class:`JoinSampler`."""

    attempts: int = 0
    accepted: int = 0
    rejected_weight: int = 0
    rejected_empty: int = 0
    rejected_residual: int = 0
    rejected_predicate: int = 0

    @property
    def acceptance_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.accepted / self.attempts


def _locked(method: Callable) -> Callable:
    """Serialize a public entry point on the sampler's reentrant lock.

    Draw calls mutate shared state (buffers, stats, lazily-built plans, the
    generator) — the lock makes one sampler safe for concurrent callers (the
    server's shared-state path).  Reentrant so ``sample -> sample_block ->
    refresh`` nests; distinct samplers (e.g. ``split()`` shards) have
    distinct locks and never contend.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass
class _LevelPlan:
    """Precomputed per-node arrays for the batched descent.

    For the non-root node ``node`` with parent ``parent``:

    * ``parent_keys[p]`` is the join-key value of parent row ``p``;
    * ``csr`` groups the node's row positions by key (CSR layout);
    * ``alias`` holds one Walker/Vose alias table per key segment (built
      lazily, per segment, on first draw — see
      :class:`~repro.sampling.alias.SegmentedAliasTable`), whose
      ``segment_totals`` double as the realized weight sums driving the
      accept/reject test.
    """

    node: JoinTreeNode
    parent: JoinTreeNode
    parent_keys: np.ndarray
    csr: object  # SortedIndex
    alias: SegmentedAliasTable
    bound: Optional[float]


class JoinSampler:
    """Accept/reject uniform sampler over one join query.

    Parameters
    ----------
    query:
        The join to sample from.
    weights:
        ``"ew"`` (exact weights), ``"eo"`` (extended Olken), ``"auto"``
        (cost-based choice between the two via
        :func:`repro.aqp.planner.choose_weights`), or a prebuilt
        :class:`~repro.sampling.weights.WeightFunction`.
    seed:
        Seed or generator for reproducible draws.
    enforce_predicates:
        When True and the query carries predicates that were *not* pushed
        down, each assembled result is additionally checked against them and
        rejected on failure (§8.3 second alternative).
    max_batch_size:
        Upper bound on the number of simultaneous walks of one batched pass.
    parallelism:
        When > 1, :meth:`sample_block` / :meth:`sample_batch` fan the request
        out across that many internal shard samplers (created lazily via
        :meth:`split`, seeds derived from this sampler's stream) running on a
        thread pool, and concatenate the results in shard order — so the
        draw sequence is deterministic for a fixed seed and parallelism.
    """

    def __init__(
        self,
        query: JoinQuery,
        weights: str | WeightFunction = "ew",
        seed: RandomState = None,
        tree: Optional[JoinTree] = None,
        enforce_predicates: bool = True,
        max_batch_size: int = 8192,
        parallelism: int = 1,
        _prototype: Optional["JoinSampler"] = None,
    ) -> None:
        self.query = query
        self.tree = tree or build_join_tree(query)
        if isinstance(weights, WeightFunction):
            self.weight_function = weights
            # A prebuilt weight function may predate mutations of the base
            # relations; re-sync before caching anything derived from it.
            self.weight_function.refresh()
        else:
            if weights == "auto":
                # Deferred import: the planner lives above the sampling layer.
                from repro.aqp.planner import choose_weights

                weights = choose_weights(query)
            self.weight_function = make_weight_function(weights, query, self.tree)
        self.rng = ensure_rng(seed)
        self.enforce_predicates = enforce_predicates
        self.stats = JoinSamplerStats()
        #: pre-order node list (root first) for the descent
        self._order: List[Tuple[JoinTreeNode, Optional[JoinTreeNode]]] = []
        self._collect(self.tree.root, None)
        self._relation_order = tuple(node.relation for node, _ in self._order)
        self._relations = [self.query.relation(name) for name in self._relation_order]
        self._db_versions = tuple(r.version for r in self._relations)
        self._plans: Optional[List[_LevelPlan]] = None
        #: surplus accepted work in struct-of-arrays form (the native format)
        self._block_buffer: List[SampleBlock] = []
        #: boxed surplus fed to the scalar ``sample()`` API
        self._draw_buffer: Deque[SampleDraw] = deque()
        self._min_batch_size = 32
        self._max_batch_size = max(int(max_batch_size), 1)
        self.parallelism = max(int(parallelism), 1)
        self._shard_samplers: Optional[List["JoinSampler"]] = None
        self._lock = threading.RLock()
        #: True when ``_root_alias``/``_plans`` are borrowed read-only from a
        #: warm prototype (see :meth:`split`); a refresh must then drop the
        #: borrowed structures instead of mutating them in place.
        self._shared_plans = False
        if _prototype is not None:
            # Borrow the prototype's (fully built, read-only) structures
            # instead of paying the O(root rows) alias construction per clone.
            self._root_weights = _prototype._root_weights
            self._root_total = _prototype._root_total
            self._root_alias = _prototype._root_alias
            self._root_cumulative = _prototype._root_cumulative
            self._plans = _prototype._plans
            self._shared_plans = True
        else:
            self._load_root_weights()

    def _load_root_weights(self) -> None:
        self._root_weights = np.asarray(self.weight_function.root_weights(), dtype=float)
        self._root_total = float(self._root_weights.sum())
        self._root_alias = (
            AliasTable(self._root_weights) if self._root_total > 0 else None
        )
        # Cumulative weights serve only the scalar reference path; built
        # lazily so the hot block path never pays for them.
        self._root_cumulative: Optional[np.ndarray] = None

    def _collect(self, node: JoinTreeNode, parent: Optional[JoinTreeNode]) -> None:
        self._order.append((node, parent))
        for child in node.children:
            self._collect(child, node)

    # ----------------------------------------------------------------- public
    @property
    def stale(self) -> bool:
        """True when a base relation mutated since the last (re)build."""
        return tuple(r.version for r in self._relations) != self._db_versions

    @_locked
    def refresh(self) -> bool:
        """Re-sync with mutated base relations; returns True when stale.

        The epoch protocol: every effective mutation bumps
        :attr:`Relation.version`; each draw entry point compares those
        counters (a handful of int comparisons) and, on staleness, refreshes
        the weight function (which patches only the affected segments),
        rebuilds the root alias table, re-syncs the level plans **per edge**
        (an edge whose own relations mutated is rebuilt from the
        delta-maintained CSR indexes; an untouched edge keeps its CSR, key
        arrays, and alias tables, invalidating only the segments whose child
        weights actually moved — rebuilt lazily on next draw), and —
        critically — discards buffered draws, which describe the *previous*
        database state.
        """
        versions = tuple(r.version for r in self._relations)
        if versions == self._db_versions:
            return False
        stale_names = {
            name
            for name, relation, version in zip(
                self._relation_order, self._relations, self._db_versions
            )
            if relation.version != version
        }
        self.weight_function.refresh()
        self._load_root_weights()
        if self._shared_plans:
            # The plans belong to the warm prototype; never mutate them from
            # a borrower.  Drop the reference and rebuild lazily on demand.
            self._plans = None
            self._shared_plans = False
        else:
            self._refresh_plans(stale_names)
        self._block_buffer.clear()
        self._draw_buffer.clear()
        if self._shard_samplers:
            # Shard buffers hold previous-epoch draws too; re-sync them now so
            # pop_buffered() can never hand out stale shard draws.
            for shard in self._shard_samplers:
                shard.refresh()
        self._db_versions = versions
        return True

    @property
    def size_bound(self) -> float:
        """The weight function's total weight (upper bound on the join size)."""
        self.refresh()
        return self.weight_function.total_weight

    def exact_size(self) -> Optional[float]:
        """Exact (skeleton) join size when exact weights are in use, else None."""
        if isinstance(self.weight_function, ExactWeightFunction):
            self.refresh()
            return self.weight_function.total_weight
        return None

    @_locked
    def try_sample(self) -> Optional[SampleDraw]:
        """One root-to-leaf attempt; ``None`` when the walk is rejected.

        This is the scalar reference path; :meth:`sample_block` runs the same
        accept/reject process vectorized over whole batches of walks.
        """
        self.refresh()
        self.stats.attempts += 1
        if self._root_total <= 0:
            self.stats.rejected_empty += 1
            return None
        assignment: Dict[str, int] = {}
        root = self.tree.root
        root_pos = self._weighted_root_choice()
        if root_pos is None:
            self.stats.rejected_empty += 1
            return None
        assignment[root.relation] = root_pos

        for node, parent in self._order:
            if parent is None:
                continue
            parent_rel = self.query.relation(parent.relation)
            child_rel = self.query.relation(node.relation)
            parent_row = parent_rel.row(assignment[parent.relation])
            key = tuple(
                parent_row[parent_rel.schema.position(a)] for a in node.parent_attributes
            )
            lookup = key if len(key) > 1 else key[0]
            index = child_rel.index_on_columns(node.child_attributes)
            joinable = index.positions(lookup)
            if not joinable:
                self.stats.rejected_empty += 1
                return None
            weights = self.weight_function.weights_for(node, joinable)
            realized = float(weights.sum())
            if realized <= 0:
                self.stats.rejected_empty += 1
                return None
            bound = self.weight_function.acceptance_bound(node)
            if bound is not None and bound > 0:
                if self.rng.random() >= realized / bound:
                    self.stats.rejected_weight += 1
                    return None
            chosen = int(self.rng.choice(len(joinable), p=weights / realized))
            assignment[node.relation] = joinable[chosen]

        if not self.tree.residual_satisfied(assignment):
            self.stats.rejected_residual += 1
            return None
        if self.enforce_predicates and not self._predicates_satisfied(assignment):
            self.stats.rejected_predicate += 1
            return None

        self.stats.accepted += 1
        return SampleDraw(
            value=self.query.project_assignment(assignment),
            assignment=dict(assignment),
            attempts=1,
        )

    @_locked
    def sample(self, max_attempts: int = 1_000_000) -> SampleDraw:
        """One accepted sample (refills an internal buffer via the block path)."""
        self.refresh()  # a stale buffer must not serve previous-epoch draws
        if self._draw_buffer:
            return self._draw_buffer.popleft()
        block = self.sample_block(1, max_attempts=max_attempts)
        # Box the surplus wholesale now so subsequent calls are O(1) pops
        # (one boxing pass per refill, exactly like the old deque refill).
        if self._block_buffer:
            surplus, self._block_buffer = self._block_buffer, []
            for parked in surplus:
                self._draw_buffer.extend(parked.to_draws(self.query))
        return block.to_draws(self.query)[0]

    def sample_many(self, count: int, max_attempts: int = 1_000_000) -> List[SampleDraw]:
        """``count`` independent accepted samples."""
        return self.sample_batch(count, max_attempts=max_attempts)

    @_locked
    def sample_batch(self, count: int, max_attempts: int = 1_000_000) -> List[SampleDraw]:
        """``count`` accepted samples as boxed :class:`SampleDraw` objects.

        A thin view over :meth:`sample_block`: the block is drawn first
        (consuming the identical random stream) and boxed afterwards, so for
        a fixed seed ``sample_batch(n)`` and ``sample_block(n)`` describe the
        same samples.
        """
        self.refresh()
        if count < 0:
            raise ValueError("count must be non-negative")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if count == 0:
            return []
        draws: List[SampleDraw] = []
        while self._draw_buffer and len(draws) < count:
            draws.append(self._draw_buffer.popleft())
        if len(draws) < count:
            block = self.sample_block(count - len(draws), max_attempts=max_attempts)
            draws.extend(block.to_draws(self.query))
        return draws

    @_locked
    def sample_block(self, count: int, max_attempts: int = 1_000_000) -> SampleBlock:
        """``count`` accepted samples in struct-of-arrays form (zero-object).

        Rejected walks are retried in adaptively-sized batches; a stretch of
        ``max_attempts`` consecutive rejected walks raises ``RuntimeError``
        (bound too loose or empty join).  On that error the samples accepted
        so far are parked in the internal buffer — never dropped — so a
        retry (or a later call) picks them up.  Surplus accepted walks are
        likewise kept in the buffer for subsequent calls.  ``count=0``
        returns an empty block without consuming random state or touching
        the buffer.

        The returned block's ``attempts`` counts the draw attempts consumed
        by *this call* (buffered samples were accounted when drawn, so they
        add none), and its ``weight`` is the weight function's total weight.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.refresh()
        total_weight = self.weight_function.total_weight
        if count == 0:
            return SampleBlock.empty(self._relation_order, weight=total_weight)
        if self.parallelism > 1:
            return self._sample_block_parallel(count, max_attempts)
        parts: List[SampleBlock] = []
        have = 0
        while self._block_buffer and have < count:
            parked = self._block_buffer.pop(0)
            if have + len(parked) > count:
                head, tail = parked.split(count - have)
                self._block_buffer.insert(0, tail)
                parked = head
            parts.append(parked)
            have += len(parked)
        attempts = 0
        attempts_since_accept = 0
        while have < count:
            need = count - have
            size = min(self._next_batch_size(need), max(1, max_attempts - attempts_since_accept))
            accepted = self._attempt_block(size)
            attempts += size
            if accepted is not None and len(accepted):
                attempts_since_accept = 0
                parts.append(accepted)
                have += len(accepted)
            else:
                attempts_since_accept += size
                if attempts_since_accept >= max_attempts:
                    # Park the accepted work instead of losing it: the buffer
                    # stays consistent, so a later call (e.g. after the
                    # caller raises its budget) continues cleanly.
                    self._park(parts)
                    raise RuntimeError(
                        f"JoinSampler on {self.query.name!r} failed to accept a sample "
                        f"after {max_attempts} attempts (bound too loose or empty join)"
                    )
        block = SampleBlock.concat(parts) if parts else SampleBlock.empty(self._relation_order)
        block.weight = total_weight
        block.attempts = attempts
        if len(block) > count:
            block, tail = block.split(count)
            self._block_buffer.append(tail)
        return block

    def _park(self, parts: List[SampleBlock]) -> None:
        for part in parts:
            part.attempts = 0  # already accounted in self.stats
            if len(part):
                self._block_buffer.append(part)

    @_locked
    def pop_buffered(self) -> List[SampleDraw]:
        """Drain and return the buffered surplus of the last batched pass.

        The AQP layer consumes every accepted draw of a batch so that its
        attempt-level accounting (accepted vs. rejected walks, read off
        :attr:`stats`) stays aligned with the draws it ingested.  With
        ``parallelism > 1`` the shard samplers' buffers are drained too.

        Runs the staleness check first: surplus buffered under a previous
        mutation epoch must be discarded, not served.
        """
        self.refresh()
        drained = list(self._draw_buffer)
        self._draw_buffer.clear()
        for block in self.pop_buffered_blocks():
            drained.extend(block.to_draws(self.query))
        return drained

    @_locked
    def pop_buffered_blocks(self) -> List[SampleBlock]:
        """Drain the struct-of-arrays surplus (the zero-object twin of
        :meth:`pop_buffered`; boxed draws parked by ``sample()`` are not
        convertible back and stay for :meth:`pop_buffered`)."""
        self.refresh()
        drained = self._block_buffer
        self._block_buffer = []
        if self._shard_samplers:
            for shard in self._shard_samplers:
                drained.extend(shard.pop_buffered_blocks())
        return drained

    @_locked
    def warm(self) -> "JoinSampler":
        """Eagerly build every descent structure; returns self for chaining.

        After warming, the root alias table, every level plan, and every
        per-segment alias table exist and are fully built, so subsequent
        draws (and :meth:`split` clones that borrow the structures) never
        pay lazy-construction cost — and, because a fully built
        :class:`~repro.sampling.alias.SegmentedAliasTable` is read-only, the
        structures are safe to share across threads.  The server calls this
        once per (query, weights, epoch).
        """
        self.refresh()
        for plan in self._level_plans():
            plan.alias.build_all()
        return self

    @_locked
    def split(
        self,
        count: int,
        seed: RandomState = None,
        share_plans: bool = False,
    ) -> List["JoinSampler"]:
        """``count`` independent shard samplers over the same join.

        The shards share this sampler's weight function and join tree (so the
        expensive weight computation is paid once) but draw from independent
        streams derived via :func:`~repro.utils.rng.spawn_rngs` — by default
        from this sampler's own stream, so a fixed parent seed yields a fixed
        family of shards; with an explicit ``seed`` the parent's stream is
        left untouched (the server's per-request clones rely on this).
        Shards are safe to run on concurrent threads as long as the base
        relations do not mutate mid-batch (the coordinator epoch guard in
        :mod:`repro.parallel` handles mutations between batches).

        With ``share_plans=True`` this sampler is warmed first and the clones
        borrow its root alias table and level plans **read-only** (a fully
        built table never mutates on draw), so a clone costs O(1) instead of
        O(root rows).  A borrowing clone that observes a mutation epoch drops
        the borrowed structures and rebuilds its own.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if share_plans:
            self.warm()
        streams = spawn_rngs(self.rng if seed is None else seed, count)
        shards = [
            JoinSampler(
                self.query,
                weights=self.weight_function,
                seed=stream,
                tree=self.tree,
                enforce_predicates=self.enforce_predicates,
                max_batch_size=self._max_batch_size,
                _prototype=self if share_plans else None,
            )
            for stream in streams
        ]
        return shards

    def _sample_block_parallel(self, count: int, max_attempts: int) -> SampleBlock:
        """Fan ``count`` across the shard samplers; concatenate in shard order."""
        # Serve parked blocks first (same contract as the sequential path: the
        # buffer may hold accepted work preserved by an earlier failure).
        parts: List[SampleBlock] = []
        have = 0
        while self._block_buffer and have < count:
            parked = self._block_buffer.pop(0)
            if have + len(parked) > count:
                head, tail = parked.split(count - have)
                self._block_buffer.insert(0, tail)
                parked = head
            parts.append(parked)
            have += len(parked)
        remaining = count - have
        if remaining == 0:
            block = SampleBlock.concat(parts)
            block.weight = self.weight_function.total_weight
            return block
        if self._shard_samplers is None:
            self._shard_samplers = self.split(self.parallelism)
        shards = self._shard_samplers
        base, extra = divmod(remaining, len(shards))
        quotas = [base + (1 if i < extra else 0) for i in range(len(shards))]
        before = [_stats_snapshot(s.stats) for s in shards]
        with ThreadPoolExecutor(max_workers=len(shards)) as executor:
            futures = [
                executor.submit(shard.sample_block, quota, max_attempts) if quota else None
                for shard, quota in zip(shards, quotas)
            ]
            error: Optional[BaseException] = None
            for future in futures:
                if future is None:
                    continue
                try:
                    parts.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    error = error or exc
        for shard, snapshot in zip(shards, before):
            _merge_stats_delta(self.stats, shard.stats, snapshot)
        if error is not None:
            # Preserve whatever the healthy shards produced (mirrors the
            # sequential exhaustion path) before surfacing the failure.
            self._park(parts)
            raise error
        block = SampleBlock.concat(parts) if parts else SampleBlock.empty(self._relation_order)
        block.weight = self.weight_function.total_weight
        return block

    # ------------------------------------------------------------- block path
    def _next_batch_size(self, need: int) -> int:
        """Batch size that should yield ``need`` accepted samples in one pass."""
        if self.stats.attempts > 0 and self.stats.accepted > 0:
            rate = self.stats.accepted / self.stats.attempts
            estimate = int(need / rate * 1.25) + 1
        else:
            estimate = need * 4
        return max(self._min_batch_size, min(estimate, self._max_batch_size))

    def _level_plans(self) -> List[_LevelPlan]:
        """Per-node CSR/alias structures, built once on first batched call."""
        if self._plans is None:
            self._plans = [
                self._build_plan(node, parent)
                for node, parent in self._order
                if parent is not None
            ]
        return self._plans

    def _build_plan(self, node: JoinTreeNode, parent: JoinTreeNode) -> _LevelPlan:
        parent_rel = self.query.relation(parent.relation)
        child_rel = self.query.relation(node.relation)
        csr = child_rel.sorted_index_on_columns(node.child_attributes)
        csr_weights = np.asarray(
            self.weight_function.weights_for(node, csr.row_positions),
            dtype=float,
        )
        return _LevelPlan(
            node=node,
            parent=parent,
            parent_keys=parent_rel.join_key_array(node.parent_attributes),
            csr=csr,
            alias=SegmentedAliasTable(csr_weights, csr.offsets),
            bound=self.weight_function.acceptance_bound(node),
        )

    def _refresh_plans(self, stale_names: set) -> None:
        """Re-sync built level plans with a new mutation epoch, per edge.

        An edge whose own relations mutated gets a fresh plan (its CSR layout
        and/or parent key arrays changed shape).  An edge whose endpoints are
        untouched keeps everything by reference — but its child weights
        summarize the child's whole *subtree*, so a delta further down can
        move them: those are diffed in one vectorized compare and only the
        dirtied segments' alias tables are invalidated
        (:meth:`SegmentedAliasTable.rebuild_segments`; reconstruction happens
        lazily on the next draw that touches them).  Unbuilt plans stay
        unbuilt.
        """
        if self._plans is None:
            return
        refreshed: List[_LevelPlan] = []
        for plan in self._plans:
            if plan.node.relation in stale_names or plan.parent.relation in stale_names:
                refreshed.append(self._build_plan(plan.node, plan.parent))
                continue
            new_weights = np.asarray(
                self.weight_function.weights_for(plan.node, plan.csr.row_positions),
                dtype=float,
            )
            plan.bound = self.weight_function.acceptance_bound(plan.node)
            changed = np.flatnonzero(new_weights != plan.alias.weights)
            if changed.size:
                slots = np.unique(
                    np.searchsorted(plan.csr.offsets, changed, side="right") - 1
                )
                plan.alias.rebuild_segments(slots.tolist(), new_weights)
            refreshed.append(plan)
        self._plans = refreshed

    def _attempt_block(self, size: int) -> Optional[SampleBlock]:
        """Run ``size`` root-to-leaf walks simultaneously; return the accepted."""
        self.stats.attempts += size
        if self._root_total <= 0 or self._root_alias is None:
            self.stats.rejected_empty += size
            return None

        chosen: Dict[str, np.ndarray] = {
            name: np.full(size, -1, dtype=np.intp) for name in self._relation_order
        }
        chosen[self.tree.root.relation] = self._batch_root_choice(size)
        walks = np.arange(size, dtype=np.intp)

        for plan in self._level_plans():
            if walks.size == 0:
                break
            parent_positions = chosen[plan.parent.relation][walks]
            keys = plan.parent_keys[parent_positions]
            slots = plan.csr.slots_for(keys)
            present = slots >= 0
            if not present.all():
                self.stats.rejected_empty += int((~present).sum())
                walks = walks[present]
                slots = slots[present]
                if walks.size == 0:
                    break
            realized = plan.alias.segment_totals[slots]
            positive = realized > 0
            if not positive.all():
                self.stats.rejected_empty += int((~positive).sum())
                walks = walks[positive]
                slots = slots[positive]
                realized = realized[positive]
                if walks.size == 0:
                    break
            if plan.bound is not None and plan.bound > 0:
                accept = self.rng.random(walks.size) < realized / plan.bound
                if not accept.all():
                    self.stats.rejected_weight += int((~accept).sum())
                    walks = walks[accept]
                    slots = slots[accept]
                    if walks.size == 0:
                        break
            # Weighted child choice: one alias-table draw per walk (a dart
            # and a coin — two array lookups, no binary search).
            idx = plan.alias.sample(self.rng, slots)
            chosen[plan.node.relation][walks] = plan.csr.row_positions[idx]

        if walks.size and self.tree.residual_conditions:
            walks = self._filter_residuals(chosen, walks)
        if (
            walks.size
            and self.enforce_predicates
            and self.query.predicates
            and not self.query.push_down_predicates
        ):
            walks = self._filter_predicates(chosen, walks)
        if walks.size == 0:
            return None

        self.stats.accepted += int(walks.size)
        return SampleBlock(
            relation_order=self._relation_order,
            positions={
                name: chosen[name][walks] for name in self._relation_order
            },
            attempts=size,
            weight=self.weight_function.total_weight,
        )

    def _batch_root_choice(self, size: int) -> np.ndarray:
        """``size`` root rows via the root alias table (O(1) per draw)."""
        assert self._root_alias is not None
        return self._root_alias.sample(self.rng, size)

    def _filter_residuals(self, chosen: Dict[str, np.ndarray], walks: np.ndarray) -> np.ndarray:
        """Drop walks whose assembled assignment violates a residual condition."""
        ok = self.tree.residual_mask(
            {name: positions[walks] for name, positions in chosen.items()}
        )
        rejected = int((~ok).sum())
        if rejected:
            self.stats.rejected_residual += rejected
            walks = walks[ok]
        return walks

    def _filter_predicates(self, chosen: Dict[str, np.ndarray], walks: np.ndarray) -> np.ndarray:
        """Drop walks violating predicates that were not pushed down (§8.3)."""
        keep = np.ones(walks.size, dtype=bool)
        for rel_name, predicate in self.query.predicates.items():
            relation = self.query.relation(rel_name)
            positions = chosen[rel_name][walks]
            for i, pos in enumerate(positions.tolist()):
                if keep[i] and not predicate.evaluate(relation.row(pos), relation.schema):
                    keep[i] = False
        rejected = int((~keep).sum())
        if rejected:
            self.stats.rejected_predicate += rejected
            walks = walks[keep]
        return walks

    # --------------------------------------------------------------- internals
    def _weighted_root_choice(self) -> Optional[int]:
        if self._root_total <= 0:
            return None
        if self._root_cumulative is None:
            self._root_cumulative = np.cumsum(self._root_weights)
        target = self.rng.random() * self._root_total
        pos = int(np.searchsorted(self._root_cumulative, target, side="right"))
        if pos >= len(self._root_weights):
            pos = len(self._root_weights) - 1
        if self._root_weights[pos] <= 0:
            # Landed on a zero-weight row due to floating point edge effects;
            # fall back to an explicit renormalized choice.
            positive = np.flatnonzero(self._root_weights > 0)
            if positive.size == 0:
                return None
            probabilities = self._root_weights[positive] / self._root_weights[positive].sum()
            pos = int(self.rng.choice(positive, p=probabilities))
        return pos

    def _predicates_satisfied(self, assignment: Dict[str, int]) -> bool:
        if self.query.push_down_predicates or not self.query.predicates:
            return True
        for rel_name, predicate in self.query.predicates.items():
            relation = self.query.relation(rel_name)
            row = relation.row(assignment[rel_name])
            if not predicate.evaluate(row, relation.schema):
                return False
        return True


_STATS_FIELDS = (
    "attempts",
    "accepted",
    "rejected_weight",
    "rejected_empty",
    "rejected_residual",
    "rejected_predicate",
)


def _stats_snapshot(stats: JoinSamplerStats) -> Tuple[int, ...]:
    return tuple(getattr(stats, name) for name in _STATS_FIELDS)


def _merge_stats_delta(
    target: JoinSamplerStats, shard: JoinSamplerStats, snapshot: Tuple[int, ...]
) -> None:
    """Add a shard's counter growth since ``snapshot`` into ``target``."""
    for name, previous in zip(_STATS_FIELDS, snapshot):
        setattr(target, name, getattr(target, name) + getattr(shard, name) - previous)


__all__ = ["JoinSampler", "JoinSamplerStats", "SampleBlock", "SampleDraw"]
