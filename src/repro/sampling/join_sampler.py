"""Uniform, independent sampling from a single join (Zhao et al., revisited).

:class:`JoinSampler` draws i.i.d. uniform samples from the result of one join
query without materializing it, by walking the join tree root-to-leaves:

1. pick a root row with probability proportional to its weight;
2. at every child relation, look up the joinable rows via the hash index,
   accept the descent with probability ``realized weight / bound`` (always 1
   for exact weights), and pick one joinable row proportionally to its weight;
3. for cyclic joins, verify the residual (cycle-breaking) conditions on the
   assembled assignment;
4. optionally verify selection predicates that were not pushed down (§8.3).

Every accepted result has probability ``1 / W`` where ``W`` is the weight
function's total weight, hence results are uniform over the join; acceptance
probability is ``|J| / W``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery
from repro.sampling.weights import (
    ExactWeightFunction,
    WeightFunction,
    make_weight_function,
)
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class SampleDraw:
    """One accepted sample from a join.

    Attributes
    ----------
    value:
        The output value (``t.val``): projection onto the output attributes.
    assignment:
        Relation name -> row position of the underlying join result.
    attempts:
        Number of root-to-leaf walks needed to produce this accepted sample.
    """

    value: Tuple
    assignment: Dict[str, int]
    attempts: int = 1


@dataclass
class JoinSamplerStats:
    """Cumulative accept/reject counters of a :class:`JoinSampler`."""

    attempts: int = 0
    accepted: int = 0
    rejected_weight: int = 0
    rejected_empty: int = 0
    rejected_residual: int = 0
    rejected_predicate: int = 0

    @property
    def acceptance_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.accepted / self.attempts


class JoinSampler:
    """Accept/reject uniform sampler over one join query.

    Parameters
    ----------
    query:
        The join to sample from.
    weights:
        ``"ew"`` (exact weights), ``"eo"`` (extended Olken), or a prebuilt
        :class:`~repro.sampling.weights.WeightFunction`.
    seed:
        Seed or generator for reproducible draws.
    enforce_predicates:
        When True and the query carries predicates that were *not* pushed
        down, each assembled result is additionally checked against them and
        rejected on failure (§8.3 second alternative).
    """

    def __init__(
        self,
        query: JoinQuery,
        weights: str | WeightFunction = "ew",
        seed: RandomState = None,
        tree: Optional[JoinTree] = None,
        enforce_predicates: bool = True,
    ) -> None:
        self.query = query
        self.tree = tree or build_join_tree(query)
        if isinstance(weights, WeightFunction):
            self.weight_function = weights
        else:
            self.weight_function = make_weight_function(weights, query, self.tree)
        self.rng = ensure_rng(seed)
        self.enforce_predicates = enforce_predicates
        self.stats = JoinSamplerStats()
        self._root_weights = np.asarray(self.weight_function.root_weights(), dtype=float)
        self._root_total = float(self._root_weights.sum())
        self._root_cumulative = (
            np.cumsum(self._root_weights) if self._root_total > 0 else None
        )
        #: pre-order node list (root first) for the descent
        self._order: List[Tuple[JoinTreeNode, Optional[JoinTreeNode]]] = []
        self._collect(self.tree.root, None)

    def _collect(self, node: JoinTreeNode, parent: Optional[JoinTreeNode]) -> None:
        self._order.append((node, parent))
        for child in node.children:
            self._collect(child, node)

    # ----------------------------------------------------------------- public
    @property
    def size_bound(self) -> float:
        """The weight function's total weight (upper bound on the join size)."""
        return self.weight_function.total_weight

    def exact_size(self) -> Optional[float]:
        """Exact (skeleton) join size when exact weights are in use, else None."""
        if isinstance(self.weight_function, ExactWeightFunction):
            return self.weight_function.total_weight
        return None

    def try_sample(self) -> Optional[SampleDraw]:
        """One root-to-leaf attempt; ``None`` when the walk is rejected."""
        self.stats.attempts += 1
        if self._root_total <= 0:
            self.stats.rejected_empty += 1
            return None
        assignment: Dict[str, int] = {}
        root = self.tree.root
        root_pos = self._weighted_root_choice()
        if root_pos is None:
            self.stats.rejected_empty += 1
            return None
        assignment[root.relation] = root_pos

        for node, parent in self._order:
            if parent is None:
                continue
            parent_rel = self.query.relation(parent.relation)
            child_rel = self.query.relation(node.relation)
            parent_row = parent_rel.row(assignment[parent.relation])
            key = tuple(
                parent_row[parent_rel.schema.position(a)] for a in node.parent_attributes
            )
            lookup = key if len(key) > 1 else key[0]
            index = child_rel.index_on_columns(node.child_attributes)
            joinable = index.positions(lookup)
            if not joinable:
                self.stats.rejected_empty += 1
                return None
            weights = np.asarray(
                [self.weight_function.weight(node, p) for p in joinable], dtype=float
            )
            realized = float(weights.sum())
            if realized <= 0:
                self.stats.rejected_empty += 1
                return None
            bound = self.weight_function.acceptance_bound(node)
            if bound is not None and bound > 0:
                if self.rng.random() >= realized / bound:
                    self.stats.rejected_weight += 1
                    return None
            chosen = int(self.rng.choice(len(joinable), p=weights / realized))
            assignment[node.relation] = joinable[chosen]

        if not self.tree.residual_satisfied(assignment):
            self.stats.rejected_residual += 1
            return None
        if self.enforce_predicates and not self._predicates_satisfied(assignment):
            self.stats.rejected_predicate += 1
            return None

        self.stats.accepted += 1
        return SampleDraw(
            value=self.query.project_assignment(assignment),
            assignment=dict(assignment),
            attempts=1,
        )

    def sample(self, max_attempts: int = 1_000_000) -> SampleDraw:
        """One accepted sample (retries rejected walks internally)."""
        for attempt in range(1, max_attempts + 1):
            draw = self.try_sample()
            if draw is not None:
                draw.attempts = attempt
                return draw
        raise RuntimeError(
            f"JoinSampler on {self.query.name!r} failed to accept a sample "
            f"after {max_attempts} attempts (bound too loose or empty join)"
        )

    def sample_many(self, count: int, max_attempts: int = 1_000_000) -> List[SampleDraw]:
        """``count`` independent accepted samples."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(max_attempts=max_attempts) for _ in range(count)]

    # --------------------------------------------------------------- internals
    def _weighted_root_choice(self) -> Optional[int]:
        if self._root_cumulative is None:
            return None
        target = self.rng.random() * self._root_total
        pos = int(np.searchsorted(self._root_cumulative, target, side="right"))
        if pos >= len(self._root_weights):
            pos = len(self._root_weights) - 1
        if self._root_weights[pos] <= 0:
            # Landed on a zero-weight row due to floating point edge effects;
            # fall back to an explicit renormalized choice.
            positive = np.flatnonzero(self._root_weights > 0)
            if positive.size == 0:
                return None
            probabilities = self._root_weights[positive] / self._root_weights[positive].sum()
            pos = int(self.rng.choice(positive, p=probabilities))
        return pos

    def _predicates_satisfied(self, assignment: Dict[str, int]) -> bool:
        if self.query.push_down_predicates or not self.query.predicates:
            return True
        for rel_name, predicate in self.query.predicates.items():
            relation = self.query.relation(rel_name)
            row = relation.row(assignment[rel_name])
            if not predicate.evaluate(row, relation.schema):
                return False
        return True


__all__ = ["JoinSampler", "JoinSamplerStats", "SampleDraw"]
