"""Wander Join: random walks over the join data graph (Li et al., SIGMOD'16).

A wander-join walk starts at a uniformly random row of the root relation and,
at every hop, moves to a uniformly random joinable row of the next relation.
The walk either fails (no joinable row, or a residual condition is violated)
or produces one join result ``t`` together with its sampling probability

    p(t) = 1/|R_1| · 1/d_2(t_1) · ... · 1/d_m(t_{m-1})

computed on the fly from the hash indexes (paper §6.1, Example 6).  Results
are independent but *not* uniform; the Horvitz–Thompson estimator
``|J| ≈ (1/m) Σ 1/p(t_k)`` (failed walks contribute 0) estimates the join size
with a confidence interval that shrinks as the number of walks grows.

The union framework uses wander join in two places:

* the **random-walk warm-up** that estimates join sizes and overlap sizes
  (§6), and
* the **sample reuse** pool of the online union sampler (§7), which recycles
  the walk results ``(t, p(t))`` with an extra accept/reject step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import NormalDist
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery
from repro.sampling.alias import uniform_segment_pick
from repro.sampling.blocks import SampleBlock
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class WalkResult:
    """Outcome of a single wander-join random walk."""

    success: bool
    value: Optional[Tuple] = None
    assignment: Optional[Dict[str, int]] = None
    probability: float = 0.0

    @property
    def inverse_probability(self) -> float:
        """Horvitz–Thompson contribution (0 for failed walks)."""
        if not self.success or self.probability <= 0:
            return 0.0
        return 1.0 / self.probability


@dataclass
class SizeEstimate:
    """A join-size estimate with its confidence interval."""

    estimate: float
    variance: float
    walks: int
    successes: int
    confidence: float
    half_width: float

    @property
    def standard_error(self) -> float:
        if self.walks == 0:
            return float("inf")
        return math.sqrt(self.variance / self.walks)

    @property
    def relative_half_width(self) -> float:
        if self.estimate == 0:
            return float("inf")
        return self.half_width / self.estimate

    @property
    def success_rate(self) -> float:
        if self.walks == 0:
            return 0.0
        return self.successes / self.walks


class RunningEstimator:
    """Incrementally updated Horvitz–Thompson estimator (paper §6.1).

    ``add`` consumes the HT contribution ``1/p(t)`` of a walk (0 for failures)
    and keeps running mean and variance using the same update rule as Eq. in
    §6.1: ``|J|_{S∪t0} = |J|_S + ( 1/p(t0) − |J|_S ) / (m+1)``.
    """

    def __init__(self) -> None:
        self.count = 0
        self.successes = 0
        self.mean = 0.0
        self._m2 = 0.0  # sum of squared deviations (Welford)

    def add(self, inverse_probability: float) -> None:
        self.count += 1
        if inverse_probability > 0:
            self.successes += 1
        delta = inverse_probability - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (inverse_probability - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance of the HT contributions."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def estimate(self, confidence: float = 0.9) -> SizeEstimate:
        half_width = 0.0
        if self.count >= 2:
            z = z_value(confidence)
            half_width = z * math.sqrt(self.variance / self.count)
        return SizeEstimate(
            estimate=self.mean,
            variance=self.variance,
            walks=self.count,
            successes=self.successes,
            confidence=confidence,
            half_width=half_width,
        )


def z_value(confidence: float) -> float:
    """Two-sided standard-normal quantile for the given confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


class WanderJoin:
    """Random-walk sampler and size estimator for one join query."""

    def __init__(
        self,
        query: JoinQuery,
        seed: RandomState = None,
        tree: Optional[JoinTree] = None,
    ) -> None:
        self.query = query
        self.tree = tree or build_join_tree(query)
        self.rng = ensure_rng(seed)
        self._order: List[Tuple[JoinTreeNode, Optional[JoinTreeNode]]] = []
        self._collect(self.tree.root, None)
        self.walk_count = 0
        self.success_count = 0

    def _collect(self, node: JoinTreeNode, parent: Optional[JoinTreeNode]) -> None:
        self._order.append((node, parent))
        for child in node.children:
            self._collect(child, node)

    # ------------------------------------------------------------------ walks
    def walk(self) -> WalkResult:
        """Perform one random walk; returns its result and probability."""
        self.walk_count += 1
        root = self.tree.root
        root_rel = self.query.relation(root.relation)
        if len(root_rel) == 0:
            return WalkResult(success=False)
        assignment: Dict[str, int] = {}
        probability = 1.0 / len(root_rel)
        assignment[root.relation] = int(self.rng.integers(0, len(root_rel)))

        for node, parent in self._order:
            if parent is None:
                continue
            parent_rel = self.query.relation(parent.relation)
            child_rel = self.query.relation(node.relation)
            parent_row = parent_rel.row(assignment[parent.relation])
            key = tuple(
                parent_row[parent_rel.schema.position(a)] for a in node.parent_attributes
            )
            lookup = key if len(key) > 1 else key[0]
            joinable = child_rel.index_on_columns(node.child_attributes).positions(lookup)
            if not joinable:
                return WalkResult(success=False)
            probability *= 1.0 / len(joinable)
            assignment[node.relation] = joinable[int(self.rng.integers(0, len(joinable)))]

        if not self.tree.residual_satisfied(assignment):
            return WalkResult(success=False)
        self.success_count += 1
        return WalkResult(
            success=True,
            value=self.query.project_assignment(assignment),
            assignment=assignment,
            probability=probability,
        )

    def walks(self, count: int, batch_size: int = 4096) -> List[WalkResult]:
        """``count`` independent walks (failed walks included).

        Walks run in vectorized batches over the columnar/CSR storage layer;
        results are identically distributed to ``count`` :meth:`walk` calls.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        results: List[WalkResult] = []
        while len(results) < count:
            results.extend(self.walk_batch(min(batch_size, count - len(results))))
        return results

    def walk_batch(self, size: int) -> List[WalkResult]:
        """``size`` independent walks performed level-by-level, vectorized.

        Each hop is one key gather, one CSR slot lookup, and one uniform
        choice within the joinable segment for every surviving walk at once;
        probabilities accumulate as ``1/|R_1| · Π 1/d`` exactly as in
        :meth:`walk`.
        """
        chosen, walks, probability, size = self._descend(size)
        results = [WalkResult(success=False) for _ in range(size)]
        if walks is None or walks.size == 0:
            return results

        value_columns = []
        for out in self.query.output_attributes:
            relation = self.query.relation(out.relation)
            value_columns.append(
                relation.columns.gather(out.attribute, chosen[out.relation][walks])
            )
        values = list(zip(*value_columns))
        relation_names = [node.relation for node, _ in self._order]
        assignment_columns = {
            name: chosen[name][walks].tolist() for name in relation_names
        }
        for i, walk_id in enumerate(walks.tolist()):
            results[walk_id] = WalkResult(
                success=True,
                value=values[i],
                assignment={name: assignment_columns[name][i] for name in relation_names},
                probability=float(probability[walk_id]),
            )
        return results

    def walk_block(self, size: int) -> SampleBlock:
        """``size`` walks as one struct-of-arrays block (zero-object path).

        The block holds the *successful* walks' per-relation row indices and
        their Horvitz–Thompson weights ``1/p(t)``; ``attempts`` records all
        ``size`` walks so attempt-level estimators stay unbiased.  Consumes
        the identical random stream as :meth:`walk_batch`, so both paths
        describe the same walks for a fixed seed.
        """
        chosen, walks, probability, size = self._descend(size)
        relation_names = tuple(node.relation for node, _ in self._order)
        if walks is None or walks.size == 0:
            block = SampleBlock.empty(relation_names)
            block.attempts = size
            block.weights = np.empty(0, dtype=float)
            return block
        return SampleBlock(
            relation_order=relation_names,
            positions={name: chosen[name][walks] for name in relation_names},
            attempts=size,
            weights=1.0 / probability[walks],
        )

    def _descend(self, size: int):
        """Shared vectorized descent: ``(chosen, surviving walks, p, size)``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return {}, None, None, 0
        self.walk_count += size
        root = self.tree.root
        root_rel = self.query.relation(root.relation)
        n_root = len(root_rel)
        if n_root == 0:
            return {}, None, None, size

        chosen: Dict[str, np.ndarray] = {
            node.relation: np.full(size, -1, dtype=np.intp)
            for node, _ in self._order
        }
        chosen[root.relation] = self.rng.integers(0, n_root, size=size).astype(np.intp)
        probability = np.full(size, 1.0 / n_root, dtype=float)
        walks = np.arange(size, dtype=np.intp)

        for node, parent in self._order:
            if parent is None:
                continue
            if walks.size == 0:
                break
            parent_rel = self.query.relation(parent.relation)
            child_rel = self.query.relation(node.relation)
            csr = child_rel.sorted_index_on_columns(node.child_attributes)
            keys = parent_rel.join_key_array(node.parent_attributes)[
                chosen[parent.relation][walks]
            ]
            slots = csr.slots_for(keys)
            present = slots >= 0
            walks = walks[present]
            slots = slots[present]
            if walks.size == 0:
                break
            starts = csr.offsets[slots]
            degrees = csr.offsets[slots + 1] - starts
            # Zero-degree slots (deletions pending compaction) mean "no
            # joinable rows": those walks fail exactly like absent keys.
            alive = degrees > 0
            if not alive.all():
                walks = walks[alive]
                starts = starts[alive]
                degrees = degrees[alive]
                if walks.size == 0:
                    break
            # Uniform hop: the degenerate (single-dart) alias kernel.
            picks = uniform_segment_pick(self.rng, starts, degrees)
            chosen[node.relation][walks] = csr.row_positions[picks]
            probability[walks] /= degrees

        if walks.size and self.tree.residual_conditions:
            ok = self.tree.residual_mask(
                {name: positions[walks] for name, positions in chosen.items()}
            )
            walks = walks[ok]

        self.success_count += int(walks.size)
        return chosen, walks, probability, size

    # -------------------------------------------------------------- estimation
    def estimate_size(
        self,
        confidence: float = 0.9,
        relative_half_width: float = 0.1,
        min_walks: int = 100,
        max_walks: int = 10_000,
    ) -> SizeEstimate:
        """Horvitz–Thompson join-size estimate.

        Walks continue until the confidence interval's relative half-width
        drops below ``relative_half_width`` (at the given ``confidence``) or
        ``max_walks`` is reached — the termination rule of §6.1.
        """
        estimator = RunningEstimator()
        while estimator.count < max_walks:
            estimator.add(self.walk().inverse_probability)
            if estimator.count >= min_walks:
                current = estimator.estimate(confidence)
                if (
                    current.estimate > 0
                    and current.relative_half_width <= relative_half_width
                ):
                    return current
        return estimator.estimate(confidence)


__all__ = [
    "WalkResult",
    "SizeEstimate",
    "RunningEstimator",
    "WanderJoin",
    "z_value",
]
