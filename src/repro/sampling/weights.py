"""Weight functions for accept/reject join sampling (Zhao et al. framework).

The single-join sampler (paper §3.2) labels every tuple of every relation with
a *weight*: an upper bound on the number of join results the tuple can yield
through the subtree of the join tree rooted at its relation.  Sampling then
walks the tree root-to-leaves, choosing rows proportionally to their weights
and rejecting with the ratio of realized weight to bound, which yields
uniform, independent samples of the join result with acceptance probability
``|J| / W`` (``W`` is the total weight).

Two instantiations from the paper are provided:

* :class:`ExactWeightFunction` (**EW**) — exact per-row result counts computed
  bottom-up; sampling never rejects (the ground truth for weights);
* :class:`ExtendedOlkenWeightFunction` (**EO**) — per-node constants derived
  from maximum degrees; cheap to build but rejects with rate
  ``1 - |J|/OlkenBound``.  Following §3.2 we release the key–foreign-key
  assumption by zeroing the weights of root tuples that have no joinable
  partner in some child (an extra linear pass over the hash tables).

The Wander-Join instantiation is not a weight function — it is a random-walk
estimator — and lives in :mod:`repro.sampling.wander_join`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery


class WeightFunction(ABC):
    """Per-row weights over the relations of one join tree."""

    #: short identifier used in experiment labels ("ew", "eo", ...)
    name: str = "abstract"

    def __init__(self, query: JoinQuery, tree: Optional[JoinTree] = None) -> None:
        self.query = query
        self.tree = tree or build_join_tree(query)
        self._relation_names = [
            node.relation for node in self.tree.root.post_order()
        ]
        self._versions = self._capture_versions()
        # Sampler clones created by JoinSampler.split() share one weight
        # function; the lock serializes their concurrent refresh() calls (the
        # second caller re-checks staleness under the lock and no-ops).
        self._refresh_lock = threading.Lock()

    # -------------------------------------------------------------- staleness
    def _capture_versions(self) -> Dict[str, int]:
        return {
            name: self.query.relation(name).version
            for name in self._relation_names
        }

    def stale_relations(self) -> Set[str]:
        """Names of base relations mutated since the weights were computed."""
        return {
            name
            for name in self._relation_names
            if self.query.relation(name).version != self._versions[name]
        }

    @property
    def stale(self) -> bool:
        """True when some base relation mutated under the weight function."""
        return bool(self.stale_relations())

    def refresh(self) -> bool:
        """Re-sync with mutated base relations; returns True when work ran.

        The epoch/staleness protocol: every mutation batch bumps the owning
        relation's ``version``; ``refresh`` diffs those counters against the
        versions captured when the weights were computed and recomputes only
        what the dirty relations can influence (see ``_refresh``).  A call on
        fresh weights is O(#relations) integer comparisons.
        """
        if not self.stale_relations():
            return False
        with self._refresh_lock:
            # Double-checked: a concurrent refresh may have run while we
            # waited on the lock, in which case there is nothing left to do.
            dirty = self.stale_relations()
            if not dirty:
                return False
            self._refresh(dirty)
            self._versions = self._capture_versions()
        return True

    def _refresh(self, dirty: Set[str]) -> None:
        """Recompute state invalidated by the ``dirty`` relations."""
        raise NotImplementedError

    # ------------------------------------------------------------------ api
    @property
    @abstractmethod
    def total_weight(self) -> float:
        """Sum of root-row weights ``W`` — an upper bound on the join size."""

    @abstractmethod
    def root_weights(self) -> np.ndarray:
        """Weight of every row of the root relation (array of length |root|)."""

    @abstractmethod
    def weight(self, node: JoinTreeNode, position: int) -> float:
        """Weight of the row at ``position`` in ``node``'s relation."""

    @abstractmethod
    def acceptance_bound(self, node: JoinTreeNode) -> Optional[float]:
        """Denominator of the accept/reject test when descending into ``node``.

        ``None`` means "use the realized weight sum" (no rejection — the exact
        weight case); otherwise the value must upper-bound the realized weight
        sum of the joinable rows for any parent row.
        """

    def weights_for(self, node: JoinTreeNode, positions: Sequence[int]) -> np.ndarray:
        """Vectorized weight lookup for several row positions of ``node``.

        Subclasses override this with an array gather; the default falls back
        to per-position :meth:`weight` calls.
        """
        return np.asarray(
            [self.weight(node, int(p)) for p in positions], dtype=float
        )

    # -------------------------------------------------------------- utilities
    def describe(self) -> Dict[str, float]:
        """Summary used by benchmarks (total weight and per-node bounds)."""
        return {"total_weight": self.total_weight}

    # Locks are not picklable; drop on serialization, recreate on load.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_refresh_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._refresh_lock = threading.Lock()


class ExactWeightFunction(WeightFunction):
    """Exact per-row join-result counts (the paper's **EW** instantiation).

    ``weight(v, t)`` equals the exact number of results of the subtree rooted
    at relation ``v`` that use row ``t``; the total weight equals the exact
    size of the (skeleton) join.  Building costs one bottom-up pass with a
    hash lookup per row and child.
    """

    name = "ew"

    def __init__(self, query: JoinQuery, tree: Optional[JoinTree] = None) -> None:
        super().__init__(query, tree)
        self._weights: Dict[str, np.ndarray] = {}
        #: per join edge (parent, child): sum of child weights per CSR key slot
        self._key_sums: Dict[Tuple[str, str], np.ndarray] = {}
        #: per join edge: the parent-row factor (key sums gathered onto rows)
        self._factors: Dict[Tuple[str, str], np.ndarray] = {}
        self._compute(dirty=None)

    def _compute(self, dirty: Optional[Set[str]]) -> None:
        """Bottom-up weight computation; ``dirty=None`` means compute all.

        On refresh only the segments the dirty relations can influence are
        patched: an edge's key sums are recomputed when its child subtree
        changed, an edge's factor when additionally the parent's own rows
        changed, and a node whose inputs are all clean is skipped entirely —
        including the root, whose weight array is the product of per-child
        factor segments rather than a whole-tree recomputation.
        """
        recomputed: Set[str] = set()

        def changed(relation_name: str) -> bool:
            return (
                dirty is None
                or relation_name in dirty
                or relation_name in recomputed
            )

        for node in self.tree.root.post_order():
            name = node.relation
            node_dirty = dirty is None or name in dirty
            if not node_dirty and not any(changed(c.relation) for c in node.children):
                continue  # every input clean: cached weights stay valid
            relation = self.query.relation(name)
            weights = np.ones(len(relation), dtype=float)
            for child in node.children:
                edge = (name, child.relation)
                if changed(child.relation) or edge not in self._key_sums:
                    child_rel = self.query.relation(child.relation)
                    csr = child_rel.sorted_index_on_columns(child.child_attributes)
                    # Per-key sums of the child weights, then one gather per
                    # parent row: weight(parent) *= sum of joinable child
                    # weights.
                    self._key_sums[edge] = csr.segment_sums(
                        self._weights[child.relation]
                    )
                    self._factors.pop(edge, None)
                if node_dirty or edge not in self._factors:
                    key_sums = self._key_sums[edge]
                    if key_sums.size == 0:
                        factor = np.zeros(len(relation), dtype=float)
                    else:
                        child_rel = self.query.relation(child.relation)
                        csr = child_rel.sorted_index_on_columns(
                            child.child_attributes
                        )
                        slots = csr.slots_for(
                            relation.join_key_array(child.parent_attributes)
                        )
                        factor = np.where(
                            slots >= 0, key_sums[np.maximum(slots, 0)], 0.0
                        )
                    self._factors[edge] = factor
                weights = weights * self._factors[edge]
            previous = self._weights.get(name)
            if (
                previous is None
                or previous.shape != weights.shape
                or not np.array_equal(previous, weights)
            ):
                recomputed.add(name)
            self._weights[name] = weights

    def _refresh(self, dirty: Set[str]) -> None:
        self._compute(dirty)

    @property
    def total_weight(self) -> float:
        return float(self._weights[self.tree.root.relation].sum())

    def root_weights(self) -> np.ndarray:
        return self._weights[self.tree.root.relation]

    def weight(self, node: JoinTreeNode, position: int) -> float:
        return float(self._weights[node.relation][position])

    def weights_for(self, node: JoinTreeNode, positions: Sequence[int]) -> np.ndarray:
        """Vectorized weight lookup for several row positions."""
        return self._weights[node.relation][np.asarray(positions, dtype=np.intp)]

    def acceptance_bound(self, node: JoinTreeNode) -> Optional[float]:
        return None  # exact weights never reject


class ExtendedOlkenWeightFunction(WeightFunction):
    """Maximum-degree weights (the paper's **EO** instantiation).

    Every row of relation ``v`` gets the same weight ``cap(v)``:

        cap(leaf) = 1
        cap(v)    = Π_{c child of v} M_key(c) · cap(c)

    so the total weight is the extended Olken bound.  With
    ``prune_dangling=True`` (the paper's modification for non key–foreign-key
    joins) root rows with no joinable partner in some child get weight zero,
    which tightens the bound without affecting uniformity.
    """

    name = "eo"

    def __init__(
        self,
        query: JoinQuery,
        tree: Optional[JoinTree] = None,
        prune_dangling: bool = True,
    ) -> None:
        super().__init__(query, tree)
        self.prune_dangling = prune_dangling
        self._cap: Dict[str, float] = {}
        self._max_degree: Dict[str, float] = {}
        self._compute_caps()
        self._root_weights = self._compute_root_weights()

    def _refresh(self, dirty: Set[str]) -> None:
        # Caps are a handful of maintained max-degree lookups and the root
        # weights one vectorized slot gather, so EO recomputes both wholesale
        # (the delta-maintained statistics make this O(#relations + |root|)).
        self._cap.clear()
        self._max_degree.clear()
        self._compute_caps()
        self._root_weights = self._compute_root_weights()

    def _compute_caps(self) -> None:
        for node in self.tree.root.post_order():
            cap = 1.0
            for child in node.children:
                child_rel = self.query.relation(child.relation)
                stats = child_rel.statistics_on_columns(child.child_attributes)
                self._max_degree[child.relation] = float(stats.max_degree)
                cap *= float(stats.max_degree) * self._cap[child.relation]
            self._cap[node.relation] = cap

    def _compute_root_weights(self) -> np.ndarray:
        root = self.tree.root
        relation = self.query.relation(root.relation)
        weights = np.full(len(relation), self._cap[root.relation], dtype=float)
        if not self.prune_dangling:
            return weights
        for child in root.children:
            child_rel = self.query.relation(child.relation)
            csr = child_rel.sorted_index_on_columns(child.child_attributes)
            slots = csr.slots_for(relation.join_key_array(child.parent_attributes))
            weights[slots < 0] = 0.0
        return weights

    @property
    def total_weight(self) -> float:
        return float(self._root_weights.sum())

    def root_weights(self) -> np.ndarray:
        return self._root_weights

    def weight(self, node: JoinTreeNode, position: int) -> float:
        if node.is_root:
            return float(self._root_weights[position])
        return self._cap[node.relation]

    def weights_for(self, node: JoinTreeNode, positions: Sequence[int]) -> np.ndarray:
        """Vectorized weight lookup (constant ``cap`` below the root)."""
        if node.is_root:
            return self._root_weights[np.asarray(positions, dtype=np.intp)]
        return np.full(len(positions), self._cap[node.relation], dtype=float)

    def cap(self, relation: str) -> float:
        """Per-node constant ``cap`` (bound on any row's subtree result count)."""
        return self._cap[relation]

    def acceptance_bound(self, node: JoinTreeNode) -> Optional[float]:
        return self._max_degree[node.relation] * self._cap[node.relation]


def make_weight_function(
    method: str,
    query: JoinQuery,
    tree: Optional[JoinTree] = None,
    **kwargs,
) -> WeightFunction:
    """Factory: ``"ew"``/``"exact"`` or ``"eo"``/``"olken"`` -> weight function."""
    key = method.lower()
    if key in ("ew", "exact", "exact_weight"):
        return ExactWeightFunction(query, tree)
    if key in ("eo", "olken", "extended_olken"):
        return ExtendedOlkenWeightFunction(query, tree, **kwargs)
    raise ValueError(f"unknown weight method {method!r}; expected 'ew' or 'eo'")


__all__ = [
    "WeightFunction",
    "ExactWeightFunction",
    "ExtendedOlkenWeightFunction",
    "make_weight_function",
]
