"""The paper's evaluation workloads: UQ1, UQ2, and UQ3 (§9, Datasets).

* **UQ1** — five chain joins, each over ``nation ⋈ supplier ⋈ customer ⋈
  orders ⋈ lineitem``.  The five joins model five regional databases: an
  *overlap scale* ``P`` controls what fraction of the data is shared by all of
  them (rows are partitioned by nation into one shared group plus one
  exclusive group per join, so the overlap ratio of the join results is
  proportional to ``P``).
* **UQ2** — three chain joins over ``region ⋈ nation ⋈ supplier ⋈ partsupp ⋈
  part`` on the *same* data but with different selection predicates (following
  ``Q2^N ∪ Q2^P ∪ Q2^S``), which yields heavily overlapping joins.
* **UQ3** — one acyclic join and two chain joins derived from ``supplier``,
  ``customer`` and ``orders`` split vertically and horizontally, so the joins
  have different lengths and schemas and the histogram estimator must apply
  the splitting method.

Each builder returns a :class:`UnionWorkload` whose queries share a
standardized output schema, ready to be passed to the estimators and union
samplers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery, check_union_compatible
from repro.relational.operators import hash_join
from repro.relational.predicates import Comparison, InSet
from repro.relational.relation import Relation
from repro.tpch.generator import generate_tpch
from repro.tpch.schema import NATION_NAMES
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class UnionWorkload:
    """A named set of union-compatible join queries plus provenance metadata."""

    name: str
    queries: List[JoinQuery]
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_union_compatible(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def query_names(self) -> List[str]:
        return [q.name for q in self.queries]

    def query(self, name: str) -> JoinQuery:
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(f"workload {self.name!r} has no query {name!r}")


# --------------------------------------------------------------------------- UQ1
def build_uq1(
    scale_factor: float = 0.002,
    overlap_scale: float = 0.2,
    n_joins: int = 5,
    seed: RandomState = 0,
    tables: Optional[Dict[str, Relation]] = None,
) -> UnionWorkload:
    """Five chain joins over nation/supplier/customer/orders/lineitem.

    ``overlap_scale`` is the fraction of nations (and hence of join results)
    shared by every join; the remaining nations are assigned exclusively to one
    of the ``n_joins`` joins.
    """
    if not 0.0 <= overlap_scale <= 1.0:
        raise ValueError("overlap_scale must be in [0, 1]")
    if n_joins < 1:
        raise ValueError("n_joins must be at least 1")
    rng = ensure_rng(seed)
    tables = tables or generate_tpch(scale_factor, seed=rng)

    nation = tables["nation"]
    supplier = tables["supplier"]
    customer = tables["customer"]
    orders = tables["orders"]
    lineitem = tables["lineitem"]

    # Partition nations: group 0 is shared by every join, groups 1..n are
    # exclusive to one join.  Rows of downstream relations inherit the group of
    # their nation, so complete join results stay within one group.
    nation_groups: Dict[int, int] = {}
    for pos in range(len(nation)):
        key = nation.value(pos, "nationkey")
        if rng.random() < overlap_scale:
            nation_groups[key] = 0
        else:
            nation_groups[key] = int(rng.integers(1, n_joins + 1))

    cust_nation = {customer.value(i, "custkey"): customer.value(i, "nationkey")
                   for i in range(len(customer))}
    order_cust = {orders.value(i, "orderkey"): orders.value(i, "custkey")
                  for i in range(len(orders))}

    def nation_group(nationkey: int) -> int:
        return nation_groups[nationkey]

    queries: List[JoinQuery] = []
    for variant in range(1, n_joins + 1):
        allowed = {0, variant}

        def keep_nation(row, schema, allowed=allowed):
            return nation_group(row[schema.position("nationkey")]) in allowed

        def keep_order(row, schema, allowed=allowed):
            custkey = row[schema.position("custkey")]
            return nation_group(cust_nation[custkey]) in allowed

        def keep_lineitem(row, schema, allowed=allowed):
            orderkey = row[schema.position("orderkey")]
            custkey = order_cust.get(orderkey)
            if custkey is None:
                return False
            return nation_group(cust_nation[custkey]) in allowed

        nation_v = nation.select(keep_nation, name="nation")
        supplier_v = supplier.select(keep_nation, name="supplier")
        customer_v = customer.select(keep_nation, name="customer")
        orders_v = orders.select(keep_order, name="orders")
        lineitem_v = lineitem.select(keep_lineitem, name="lineitem")

        conditions = [
            JoinCondition("nation", "nationkey", "supplier", "nationkey"),
            JoinCondition("supplier", "nationkey", "customer", "nationkey"),
            JoinCondition("customer", "custkey", "orders", "custkey"),
            JoinCondition("orders", "orderkey", "lineitem", "orderkey"),
        ]
        output = [
            OutputAttribute.direct("nation", "n_name"),
            OutputAttribute.direct("supplier", "suppkey"),
            OutputAttribute.direct("supplier", "s_acctbal"),
            OutputAttribute.direct("customer", "custkey"),
            OutputAttribute.direct("customer", "mktsegment"),
            OutputAttribute.direct("customer", "c_acctbal"),
            OutputAttribute.direct("orders", "orderkey"),
            OutputAttribute.direct("orders", "totalprice"),
            OutputAttribute.direct("lineitem", "linenumber"),
            OutputAttribute.direct("lineitem", "partkey"),
            OutputAttribute.direct("lineitem", "quantity"),
        ]
        queries.append(
            JoinQuery(
                name=f"UQ1_J{variant}",
                relations=[nation_v, supplier_v, customer_v, orders_v, lineitem_v],
                conditions=conditions,
                output_attributes=output,
            )
        )

    return UnionWorkload(
        name="UQ1",
        queries=queries,
        description="Five chain joins over nation/supplier/customer/orders/lineitem "
        "with a configurable overlap scale.",
        metadata={
            "scale_factor": scale_factor,
            "overlap_scale": overlap_scale,
            "n_joins": n_joins,
            "nation_groups": nation_groups,
        },
    )


# --------------------------------------------------------------------------- UQ2
def build_uq2(
    scale_factor: float = 0.002,
    seed: RandomState = 0,
    tables: Optional[Dict[str, Relation]] = None,
    nation_fraction: float = 0.7,
    size_fraction: float = 0.7,
    balance_fraction: float = 0.7,
) -> UnionWorkload:
    """Three chain joins over region/nation/supplier/partsupp/part with predicates.

    All three joins run on the same base data; they differ only in their
    selection predicate (on nation name, part size, and supplier balance
    respectively), which produces heavily overlapping join results — the
    ``Q2^N ∪ Q2^P ∪ Q2^S`` shape from the paper.
    """
    rng = ensure_rng(seed)
    tables = tables or generate_tpch(scale_factor, seed=rng)
    region = tables["region"]
    nation = tables["nation"]
    supplier = tables["supplier"]
    partsupp = tables["partsupp"]
    part = tables["part"]

    nation_names = sorted({nation.value(i, "n_name") for i in range(len(nation))})
    kept_nations = nation_names[: max(int(len(nation_names) * nation_fraction), 1)]
    sizes = sorted(part.column("p_size"))
    size_threshold = sizes[min(int(len(sizes) * size_fraction), len(sizes) - 1)]
    balances = sorted(supplier.column("s_acctbal"))
    balance_threshold = balances[
        min(int(len(balances) * (1.0 - balance_fraction)), len(balances) - 1)
    ]

    predicates = {
        "UQ2_N": {"nation": InSet("n_name", kept_nations)},
        "UQ2_P": {"part": Comparison("p_size", "<=", size_threshold)},
        "UQ2_S": {"supplier": Comparison("s_acctbal", ">=", balance_threshold)},
    }

    conditions = [
        JoinCondition("region", "regionkey", "nation", "regionkey"),
        JoinCondition("nation", "nationkey", "supplier", "nationkey"),
        JoinCondition("supplier", "suppkey", "partsupp", "suppkey"),
        JoinCondition("partsupp", "partkey", "part", "partkey"),
    ]
    output = [
        OutputAttribute.direct("region", "r_name"),
        OutputAttribute.direct("nation", "n_name"),
        OutputAttribute.direct("supplier", "suppkey"),
        OutputAttribute.direct("supplier", "s_acctbal"),
        OutputAttribute.direct("partsupp", "availqty"),
        OutputAttribute.direct("partsupp", "supplycost"),
        OutputAttribute.direct("part", "partkey"),
        OutputAttribute.direct("part", "p_size"),
        OutputAttribute.direct("part", "retailprice"),
    ]

    queries = [
        JoinQuery(
            name=name,
            relations=[region, nation, supplier, partsupp, part],
            conditions=conditions,
            output_attributes=output,
            predicates=query_predicates,
        )
        for name, query_predicates in predicates.items()
    ]

    return UnionWorkload(
        name="UQ2",
        queries=queries,
        description="Three chain joins over region/nation/supplier/partsupp/part with "
        "different selection predicates (heavily overlapping).",
        metadata={
            "scale_factor": scale_factor,
            "kept_nations": kept_nations,
            "size_threshold": size_threshold,
            "balance_threshold": balance_threshold,
        },
    )


# --------------------------------------------------------------------------- UQ3
def build_uq3(
    scale_factor: float = 0.002,
    overlap_scale: float = 0.2,
    seed: RandomState = 0,
    tables: Optional[Dict[str, Relation]] = None,
) -> UnionWorkload:
    """One acyclic join and two chain joins over supplier/customer/orders.

    The base relations are split vertically (customer into two fragments) and
    horizontally (each join sees the shared customer group plus one exclusive
    group), and one join runs on a denormalized ``custsupp`` view — so the
    three joins have different lengths and relation schemas while producing the
    same output schema.
    """
    if not 0.0 <= overlap_scale <= 1.0:
        raise ValueError("overlap_scale must be in [0, 1]")
    rng = ensure_rng(seed)
    tables = tables or generate_tpch(scale_factor, seed=rng)
    supplier = tables["supplier"]
    customer = tables["customer"]
    orders = tables["orders"]

    customer_groups: Dict[int, int] = {}
    for pos in range(len(customer)):
        key = customer.value(pos, "custkey")
        if rng.random() < overlap_scale:
            customer_groups[key] = 0
        else:
            customer_groups[key] = int(rng.integers(1, 4))

    def customers_for(variant: int) -> Relation:
        allowed = {0, variant}
        return customer.select(
            lambda row, schema: customer_groups[row[schema.position("custkey")]] in allowed,
            name="customer",
        )

    def orders_for(variant: int) -> Relation:
        allowed = {0, variant}
        return orders.select(
            lambda row, schema: customer_groups.get(row[schema.position("custkey")], -1)
            in allowed,
            name="orders",
        )

    output_names = [
        "custkey",
        "nationkey",
        "mktsegment",
        "c_acctbal",
        "orderkey",
        "totalprice",
        "suppkey",
        "s_acctbal",
    ]

    # --- J_A: acyclic (star) join around customer ------------------------------
    # customer joins orders (custkey), supplier (nationkey) and nation
    # (nationkey): three edges out of one node, so the join graph is a genuine
    # non-chain tree.  nation is a key-preserving extension, so the output
    # result set is unchanged but the estimator has to handle the tree shape.
    customer_a = customers_for(1)
    orders_a = orders_for(1)
    nation_a = tables["nation"]
    query_a = JoinQuery(
        name="UQ3_JA",
        relations=[customer_a, orders_a, supplier, nation_a],
        conditions=[
            JoinCondition("customer", "custkey", "orders", "custkey"),
            JoinCondition("customer", "nationkey", "supplier", "nationkey"),
            JoinCondition("customer", "nationkey", "nation", "nationkey"),
        ],
        output_attributes=[
            OutputAttribute("custkey", "customer", "custkey"),
            OutputAttribute("nationkey", "customer", "nationkey"),
            OutputAttribute("mktsegment", "customer", "mktsegment"),
            OutputAttribute("c_acctbal", "customer", "c_acctbal"),
            OutputAttribute("orderkey", "orders", "orderkey"),
            OutputAttribute("totalprice", "orders", "totalprice"),
            OutputAttribute("suppkey", "supplier", "suppkey"),
            OutputAttribute("s_acctbal", "supplier", "s_acctbal"),
        ],
    )

    # --- J_B: chain over vertically split customer ----------------------------
    customer_b = customers_for(2)
    orders_b = orders_for(2)
    cust_part1 = customer_b.project(["custkey", "nationkey", "mktsegment"], name="cust_part1")
    cust_part2 = customer_b.project(["custkey", "c_acctbal"], name="cust_part2")
    query_b = JoinQuery(
        name="UQ3_JB",
        relations=[supplier, cust_part1, cust_part2, orders_b],
        conditions=[
            JoinCondition("supplier", "nationkey", "cust_part1", "nationkey"),
            JoinCondition("cust_part1", "custkey", "cust_part2", "custkey"),
            JoinCondition("cust_part2", "custkey", "orders", "custkey"),
        ],
        output_attributes=[
            OutputAttribute("custkey", "cust_part1", "custkey"),
            OutputAttribute("nationkey", "cust_part1", "nationkey"),
            OutputAttribute("mktsegment", "cust_part1", "mktsegment"),
            OutputAttribute("c_acctbal", "cust_part2", "c_acctbal"),
            OutputAttribute("orderkey", "orders", "orderkey"),
            OutputAttribute("totalprice", "orders", "totalprice"),
            OutputAttribute("suppkey", "supplier", "suppkey"),
            OutputAttribute("s_acctbal", "supplier", "s_acctbal"),
        ],
    )

    # --- J_C: chain over a denormalized customer-supplier view ----------------
    customer_c = customers_for(3)
    orders_c = orders_for(3)
    custsupp = hash_join(customer_c, supplier, "nationkey", "nationkey", name="custsupp")
    custsupp = custsupp.project(
        ["custkey", "nationkey", "mktsegment", "c_acctbal", "suppkey", "s_acctbal"],
        name="custsupp",
    )
    query_c = JoinQuery(
        name="UQ3_JC",
        relations=[custsupp, orders_c],
        conditions=[JoinCondition("custsupp", "custkey", "orders", "custkey")],
        output_attributes=[
            OutputAttribute("custkey", "custsupp", "custkey"),
            OutputAttribute("nationkey", "custsupp", "nationkey"),
            OutputAttribute("mktsegment", "custsupp", "mktsegment"),
            OutputAttribute("c_acctbal", "custsupp", "c_acctbal"),
            OutputAttribute("orderkey", "orders", "orderkey"),
            OutputAttribute("totalprice", "orders", "totalprice"),
            OutputAttribute("suppkey", "custsupp", "suppkey"),
            OutputAttribute("s_acctbal", "custsupp", "s_acctbal"),
        ],
    )

    workload = UnionWorkload(
        name="UQ3",
        queries=[query_a, query_b, query_c],
        description="One acyclic join and two chain joins over supplier/customer/orders "
        "with vertical and horizontal splits and a denormalized view.",
        metadata={
            "scale_factor": scale_factor,
            "overlap_scale": overlap_scale,
            "customer_groups": customer_groups,
            "output_names": output_names,
        },
    )
    return workload


def build_workload(
    name: str,
    scale_factor: float = 0.002,
    overlap_scale: float = 0.2,
    seed: RandomState = 0,
) -> UnionWorkload:
    """Build a workload by name (``"UQ1"``, ``"UQ2"``, ``"UQ3"``)."""
    key = name.upper()
    if key == "UQ1":
        return build_uq1(scale_factor, overlap_scale, seed=seed)
    if key == "UQ2":
        return build_uq2(scale_factor, seed=seed)
    if key == "UQ3":
        return build_uq3(scale_factor, overlap_scale, seed=seed)
    raise ValueError(f"unknown workload {name!r}; expected UQ1, UQ2 or UQ3")


__all__ = ["UnionWorkload", "build_uq1", "build_uq2", "build_uq3", "build_workload"]
