"""TPC-H style schemas and cardinality ratios.

The evaluation datasets (UQ1, UQ2, UQ3) are tailored from the TPC-H benchmark.
Because the official ``dbgen`` tool and multi-gigabyte datasets are outside the
scope of a pure-Python reproduction, :mod:`repro.tpch.generator` synthesizes
relations with the same schema skeleton and the official cardinality ratios at
configurable (small) scale factors.  This module defines those schemas and
ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.relational.schema import Attribute, Schema

#: Rows per relation at scale factor 1.0 (the official TPC-H ratios).
CARDINALITIES_AT_SF1: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Minimum row counts so that tiny scale factors still produce joinable data
#: (suppliers/customers need to cover all 25 nations for the UQ1 partitioning).
MINIMUM_ROWS: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 50,
    "customer": 100,
    "part": 50,
    "partsupp": 200,
    "orders": 200,
    "lineitem": 500,
}

REGION_SCHEMA = Schema(
    [Attribute("regionkey", "int"), Attribute("r_name", "str")]
)

NATION_SCHEMA = Schema(
    [
        Attribute("nationkey", "int"),
        Attribute("n_name", "str"),
        Attribute("regionkey", "int"),
    ]
)

SUPPLIER_SCHEMA = Schema(
    [
        Attribute("suppkey", "int"),
        Attribute("s_name", "str"),
        Attribute("nationkey", "int"),
        Attribute("s_acctbal", "float"),
    ]
)

CUSTOMER_SCHEMA = Schema(
    [
        Attribute("custkey", "int"),
        Attribute("c_name", "str"),
        Attribute("nationkey", "int"),
        Attribute("mktsegment", "str"),
        Attribute("c_acctbal", "float"),
    ]
)

PART_SCHEMA = Schema(
    [
        Attribute("partkey", "int"),
        Attribute("p_name", "str"),
        Attribute("brand", "str"),
        Attribute("p_type", "str"),
        Attribute("p_size", "int"),
        Attribute("retailprice", "float"),
    ]
)

PARTSUPP_SCHEMA = Schema(
    [
        Attribute("partkey", "int"),
        Attribute("suppkey", "int"),
        Attribute("availqty", "int"),
        Attribute("supplycost", "float"),
    ]
)

ORDERS_SCHEMA = Schema(
    [
        Attribute("orderkey", "int"),
        Attribute("custkey", "int"),
        Attribute("orderstatus", "str"),
        Attribute("totalprice", "float"),
        Attribute("orderdate", "int"),
        Attribute("orderpriority", "str"),
    ]
)

LINEITEM_SCHEMA = Schema(
    [
        Attribute("orderkey", "int"),
        Attribute("partkey", "int"),
        Attribute("suppkey", "int"),
        Attribute("linenumber", "int"),
        Attribute("quantity", "int"),
        Attribute("extendedprice", "float"),
        Attribute("discount", "float"),
        Attribute("shipdate", "int"),
    ]
)

SCHEMAS: Dict[str, Schema] = {
    "region": REGION_SCHEMA,
    "nation": NATION_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "part": PART_SCHEMA,
    "partsupp": PARTSUPP_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
}

MKT_SEGMENTS: Tuple[str, ...] = (
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
)

ORDER_PRIORITIES: Tuple[str, ...] = (
    "1-URGENT",
    "2-HIGH",
    "3-MEDIUM",
    "4-NOT SPECIFIED",
    "5-LOW",
)

ORDER_STATUSES: Tuple[str, ...] = ("O", "F", "P")

PART_TYPES: Tuple[str, ...] = (
    "STANDARD ANODIZED TIN",
    "SMALL PLATED COPPER",
    "MEDIUM POLISHED BRASS",
    "LARGE BURNISHED STEEL",
    "ECONOMY BRUSHED NICKEL",
    "PROMO PLATED STEEL",
)

REGION_NAMES: Tuple[str, ...] = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATION_NAMES: Tuple[str, ...] = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)


def rows_at_scale(table: str, scale_factor: float) -> int:
    """Row count of ``table`` at the given scale factor (floored at the minimum)."""
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive, got {scale_factor}")
    if table not in CARDINALITIES_AT_SF1:
        raise KeyError(f"unknown TPC-H table {table!r}")
    scaled = int(round(CARDINALITIES_AT_SF1[table] * scale_factor))
    return max(scaled, MINIMUM_ROWS[table])


__all__ = [
    "CARDINALITIES_AT_SF1",
    "MINIMUM_ROWS",
    "SCHEMAS",
    "MKT_SEGMENTS",
    "ORDER_PRIORITIES",
    "ORDER_STATUSES",
    "PART_TYPES",
    "REGION_NAMES",
    "NATION_NAMES",
    "rows_at_scale",
]
