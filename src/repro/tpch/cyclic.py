"""A cyclic-join union workload (the paper's Fig. 1 ``J_W`` shape).

The paper's running example unions a *cyclic* join (the west-region query,
where ``orders`` is self-joined to pair line items of the same order) with
acyclic queries.  Its evaluation skips cyclic workloads because the cyclic
machinery is inherited from Zhao et al.; this module provides the workload
anyway so that the cyclic code path (skeleton/residual decomposition, residual
rejection during sampling and membership probing) is exercised end to end.

``build_cyclic_bundle_workload`` creates two joins over the same output schema
("pairs of line items bought together by a customer"):

* ``CY_W`` — a **cyclic** join: customer ⋈ orders ⋈ lineitem1 ⋈ lineitem2 where
  both lineitem aliases join the *same* order, so the join graph contains the
  cycle orders–lineitem1–lineitem2–orders (every ordered pair of line items of
  one order, including the diagonal, is produced exactly once);
* ``CY_E`` — an **acyclic** join producing the same pairs from a denormalized
  ``order_pairs`` view (the pre-joined pair of line numbers per order),
  restricted to a different but overlapping customer group.

Both joins produce the standardized schema
``(custkey, orderkey, linenumber_a, linenumber_b, quantity_a, quantity_b)``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery
from repro.relational.relation import Relation
from repro.tpch.generator import generate_tpch
from repro.tpch.workloads import UnionWorkload
from repro.utils.rng import RandomState, ensure_rng


def build_cyclic_bundle_workload(
    scale_factor: float = 0.001,
    overlap_scale: float = 0.3,
    seed: RandomState = 0,
    tables: Optional[Dict[str, Relation]] = None,
) -> UnionWorkload:
    """Union of a cyclic join and an acyclic join over "bundle purchase" pairs."""
    if not 0.0 <= overlap_scale <= 1.0:
        raise ValueError("overlap_scale must be in [0, 1]")
    rng = ensure_rng(seed)
    tables = tables or generate_tpch(scale_factor, seed=rng)
    customer = tables["customer"]
    orders = tables["orders"]
    lineitem = tables["lineitem"]

    # Partition customers into a shared group (0) and two exclusive groups.
    groups: Dict[int, int] = {}
    for pos in range(len(customer)):
        key = customer.value(pos, "custkey")
        groups[key] = 0 if rng.random() < overlap_scale else int(rng.integers(1, 3))

    def customers_for(variant: int) -> Relation:
        allowed = {0, variant}
        return customer.select(
            lambda row, schema: groups[row[schema.position("custkey")]] in allowed,
            name="customer",
        )

    def orders_for(variant: int) -> Relation:
        allowed = {0, variant}
        return orders.select(
            lambda row, schema: groups.get(row[schema.position("custkey")], -1) in allowed,
            name="orders",
        )

    output = lambda source_a, source_b: [  # noqa: E731 - small local helper
        OutputAttribute("custkey", "customer", "custkey"),
        OutputAttribute("orderkey", "orders", "orderkey"),
        OutputAttribute("linenumber_a", source_a, "linenumber"),
        OutputAttribute("linenumber_b", source_b, "linenumber"),
        OutputAttribute("quantity_a", source_a, "quantity"),
        OutputAttribute("quantity_b", source_b, "quantity"),
    ]

    # ---- CY_W: cyclic join with two lineitem aliases sharing the order ------
    lineitem_a = Relation("lineitem_a", lineitem.schema, lineitem.rows)
    lineitem_b = _second_lineitems(lineitem)
    query_w = JoinQuery(
        name="CY_W",
        relations=[customers_for(1), orders_for(1), lineitem_a, lineitem_b],
        conditions=[
            JoinCondition("customer", "custkey", "orders", "custkey"),
            JoinCondition("orders", "orderkey", "lineitem_a", "orderkey"),
            JoinCondition("lineitem_a", "orderkey", "lineitem_b", "orderkey"),
            # Closing the cycle: the second alias must reference the same order
            # the orders relation contributed, making the join graph cyclic.
            JoinCondition("lineitem_b", "orderkey", "orders", "orderkey"),
        ],
        output_attributes=output("lineitem_a", "lineitem_b"),
    )

    # ---- CY_E: acyclic join over a denormalized pair view -------------------
    order_pairs = _order_pairs_view(lineitem)
    query_e = JoinQuery(
        name="CY_E",
        relations=[customers_for(2), orders_for(2), order_pairs],
        conditions=[
            JoinCondition("customer", "custkey", "orders", "custkey"),
            JoinCondition("orders", "orderkey", "order_pairs", "orderkey"),
        ],
        output_attributes=[
            OutputAttribute("custkey", "customer", "custkey"),
            OutputAttribute("orderkey", "orders", "orderkey"),
            OutputAttribute("linenumber_a", "order_pairs", "linenumber_a"),
            OutputAttribute("linenumber_b", "order_pairs", "linenumber_b"),
            OutputAttribute("quantity_a", "order_pairs", "quantity_a"),
            OutputAttribute("quantity_b", "order_pairs", "quantity_b"),
        ],
    )

    return UnionWorkload(
        name="CY",
        queries=[query_w, query_e],
        description="Union of a cyclic self-join query and an acyclic denormalized "
        "query over bundle-purchase pairs (Fig. 1 of the paper).",
        metadata={
            "scale_factor": scale_factor,
            "overlap_scale": overlap_scale,
            "customer_groups": groups,
        },
    )


def _second_lineitems(lineitem: Relation) -> Relation:
    """Second alias of the lineitem relation (same rows, distinct name)."""
    return Relation("lineitem_b", lineitem.schema, lineitem.rows)


def _order_pairs_view(lineitem: Relation) -> Relation:
    """Denormalized view: one row per ordered pair of line items of one order."""
    by_order: Dict[object, list] = {}
    order_pos = lineitem.schema.position("orderkey")
    line_pos = lineitem.schema.position("linenumber")
    qty_pos = lineitem.schema.position("quantity")
    for row in lineitem:
        by_order.setdefault(row[order_pos], []).append((row[line_pos], row[qty_pos]))
    rows = []
    for orderkey, items in by_order.items():
        for line_a, qty_a in items:
            for line_b, qty_b in items:
                rows.append((orderkey, line_a, line_b, qty_a, qty_b))
    return Relation(
        "order_pairs",
        ["orderkey", "linenumber_a", "linenumber_b", "quantity_a", "quantity_b"],
        rows,
    )


__all__ = ["build_cyclic_bundle_workload"]
