"""Seeded TPC-H style data generator.

A deterministic, pure-Python/numpy replacement for ``dbgen``: it produces the
eight TPC-H relations with the official cardinality ratios, valid primary and
foreign keys, and mildly skewed numeric columns, at any (small) scale factor.
The generator is the data substrate for every experiment; the workload
builders in :mod:`repro.tpch.workloads` derive the UQ1/UQ2/UQ3 union queries
from its output.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.relational.relation import Relation
from repro.tpch import schema as tpch_schema
from repro.utils.rng import RandomState, ensure_rng


class TPCHGenerator:
    """Generate the TPC-H relations at a given scale factor.

    Parameters
    ----------
    scale_factor:
        Fraction of the official SF-1 cardinalities (e.g. ``0.002`` produces
        roughly 3,000 orders and 12,000 lineitems).
    seed:
        Seed or generator; the same seed always produces identical relations.
    """

    def __init__(self, scale_factor: float = 0.002, seed: RandomState = 0) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.rng = ensure_rng(seed)

    # ------------------------------------------------------------------ public
    def generate(self) -> Dict[str, Relation]:
        """Generate every table and return them keyed by table name."""
        region = self._region()
        nation = self._nation()
        supplier = self._supplier()
        customer = self._customer()
        part = self._part()
        partsupp = self._partsupp(part, supplier)
        orders = self._orders(customer)
        lineitem = self._lineitem(orders, part, supplier)
        return {
            "region": region,
            "nation": nation,
            "supplier": supplier,
            "customer": customer,
            "part": part,
            "partsupp": partsupp,
            "orders": orders,
            "lineitem": lineitem,
        }

    def rows(self, table: str) -> int:
        return tpch_schema.rows_at_scale(table, self.scale_factor)

    # ------------------------------------------------------------------ tables
    def _region(self) -> Relation:
        rows = [
            (key, tpch_schema.REGION_NAMES[key % len(tpch_schema.REGION_NAMES)])
            for key in range(self.rows("region"))
        ]
        return Relation("region", tpch_schema.REGION_SCHEMA, rows)

    def _nation(self) -> Relation:
        count = self.rows("nation")
        region_count = self.rows("region")
        rows = [
            (
                key,
                tpch_schema.NATION_NAMES[key % len(tpch_schema.NATION_NAMES)],
                key % region_count,
            )
            for key in range(count)
        ]
        return Relation("nation", tpch_schema.NATION_SCHEMA, rows)

    def _supplier(self) -> Relation:
        count = self.rows("supplier")
        nations = self.rng.integers(0, self.rows("nation"), size=count)
        balances = np.round(self.rng.uniform(-999.99, 9999.99, size=count), 2)
        rows = [
            (key + 1, f"Supplier#{key + 1:09d}", int(nations[key]), float(balances[key]))
            for key in range(count)
        ]
        return Relation("supplier", tpch_schema.SUPPLIER_SCHEMA, rows)

    def _customer(self) -> Relation:
        count = self.rows("customer")
        nations = self.rng.integers(0, self.rows("nation"), size=count)
        segments = self.rng.integers(0, len(tpch_schema.MKT_SEGMENTS), size=count)
        balances = np.round(self.rng.uniform(-999.99, 9999.99, size=count), 2)
        rows = [
            (
                key + 1,
                f"Customer#{key + 1:09d}",
                int(nations[key]),
                tpch_schema.MKT_SEGMENTS[int(segments[key])],
                float(balances[key]),
            )
            for key in range(count)
        ]
        return Relation("customer", tpch_schema.CUSTOMER_SCHEMA, rows)

    def _part(self) -> Relation:
        count = self.rows("part")
        sizes = self.rng.integers(1, 51, size=count)
        types = self.rng.integers(0, len(tpch_schema.PART_TYPES), size=count)
        brands = self.rng.integers(1, 6, size=count)
        prices = np.round(900.0 + (np.arange(count) % 1000) + sizes * 0.1, 2)
        rows = [
            (
                key + 1,
                f"Part#{key + 1:09d}",
                f"Brand#{int(brands[key])}{int(brands[key])}",
                tpch_schema.PART_TYPES[int(types[key])],
                int(sizes[key]),
                float(prices[key]),
            )
            for key in range(count)
        ]
        return Relation("part", tpch_schema.PART_SCHEMA, rows)

    def _partsupp(self, part: Relation, supplier: Relation) -> Relation:
        suppliers_per_part = 4
        supplier_count = len(supplier)
        rows = []
        for part_pos in range(len(part)):
            partkey = part.value(part_pos, "partkey")
            for i in range(suppliers_per_part):
                suppkey = int(((partkey + i * (supplier_count // suppliers_per_part + 1))
                               % supplier_count) + 1)
                availqty = int(self.rng.integers(1, 10_000))
                supplycost = round(float(self.rng.uniform(1.0, 1000.0)), 2)
                rows.append((partkey, suppkey, availqty, supplycost))
        return Relation("partsupp", tpch_schema.PARTSUPP_SCHEMA, rows)

    def _orders(self, customer: Relation) -> Relation:
        count = self.rows("orders")
        customer_count = len(customer)
        # TPC-H only populates 2/3 of customers with orders; keep that skew by
        # drawing customer positions from the first two thirds more often.
        cust_positions = self.rng.integers(0, customer_count, size=count)
        statuses = self.rng.integers(0, len(tpch_schema.ORDER_STATUSES), size=count)
        priorities = self.rng.integers(0, len(tpch_schema.ORDER_PRIORITIES), size=count)
        prices = np.round(self.rng.uniform(850.0, 500_000.0, size=count), 2)
        dates = self.rng.integers(8_035, 10_591, size=count)  # days: 1992-01-01..1998-12-31
        rows = []
        for key in range(count):
            custkey = customer.value(int(cust_positions[key]), "custkey")
            rows.append(
                (
                    key + 1,
                    custkey,
                    tpch_schema.ORDER_STATUSES[int(statuses[key])],
                    float(prices[key]),
                    int(dates[key]),
                    tpch_schema.ORDER_PRIORITIES[int(priorities[key])],
                )
            )
        return Relation("orders", tpch_schema.ORDERS_SCHEMA, rows)

    def _lineitem(self, orders: Relation, part: Relation, supplier: Relation) -> Relation:
        target = self.rows("lineitem")
        order_count = len(orders)
        average_lines = max(target // max(order_count, 1), 1)
        part_count = len(part)
        supplier_count = len(supplier)
        rows = []
        for order_pos in range(order_count):
            orderkey = orders.value(order_pos, "orderkey")
            orderdate = orders.value(order_pos, "orderdate")
            lines = int(self.rng.integers(1, 2 * average_lines + 1))
            for linenumber in range(1, lines + 1):
                partkey = int(self.rng.integers(1, part_count + 1))
                suppkey = int(self.rng.integers(1, supplier_count + 1))
                quantity = int(self.rng.integers(1, 51))
                extendedprice = round(quantity * float(self.rng.uniform(900.0, 2000.0)), 2)
                discount = round(float(self.rng.uniform(0.0, 0.1)), 2)
                shipdate = int(orderdate) + int(self.rng.integers(1, 122))
                rows.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        linenumber,
                        quantity,
                        extendedprice,
                        discount,
                        shipdate,
                    )
                )
        return Relation("lineitem", tpch_schema.LINEITEM_SCHEMA, rows)


def generate_tpch(
    scale_factor: float = 0.002, seed: RandomState = 0
) -> Dict[str, Relation]:
    """Convenience wrapper: generate all TPC-H relations at ``scale_factor``."""
    return TPCHGenerator(scale_factor, seed).generate()


__all__ = ["TPCHGenerator", "generate_tpch"]
