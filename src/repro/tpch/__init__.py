"""TPC-H style data substrate: generator, schemas, and the evaluation workloads."""

from repro.tpch.cyclic import build_cyclic_bundle_workload
from repro.tpch.generator import TPCHGenerator, generate_tpch
from repro.tpch.schema import CARDINALITIES_AT_SF1, SCHEMAS, rows_at_scale
from repro.tpch.workloads import (
    UnionWorkload,
    build_uq1,
    build_uq2,
    build_uq3,
    build_workload,
)

__all__ = [
    "TPCHGenerator",
    "generate_tpch",
    "CARDINALITIES_AT_SF1",
    "SCHEMAS",
    "rows_at_scale",
    "UnionWorkload",
    "build_uq1",
    "build_uq2",
    "build_uq3",
    "build_workload",
    "build_cyclic_bundle_workload",
]
