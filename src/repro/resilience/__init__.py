"""Fault tolerance for the parallel sampling service.

Three pieces, layered under :mod:`repro.parallel`:

* :mod:`repro.resilience.errors` — the structured failure taxonomy
  (:class:`ShardCrash`, :class:`ShardTimeout`, :class:`CorruptShardResult`,
  :class:`PoisonShardError`, :class:`JobDeadlineExceeded`), every member
  carrying shard attribution (shard id, seed, backend, attempt, rung).
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness: seeded :class:`FaultPlan` objects (scripted or rate-based) that
  make workers raise, hang, die, or return corrupted results in an exactly
  replayable pattern, plus the ``REPRO_FAULT_RATE`` environment harness for
  CI chaos legs.
* :mod:`repro.resilience.supervisor` — :class:`ShardSupervisor`, the
  per-shard dispatch engine with bounded retries (:class:`RetryPolicy`),
  per-shard timeouts, job deadlines with principled partial results, poison
  detection, and the ``process -> thread -> inline`` degradation ladder.

See ``docs/resilience.md`` for the design rationale and the determinism
argument (retries and degradations never change the merged answer).
"""

from repro.resilience.errors import (
    CorruptShardResult,
    EmptyResultError,
    JobDeadlineExceeded,
    PoisonShardError,
    ShardCrash,
    ShardError,
    ShardTimeout,
    describe_seed,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    HTTP_FAULT_KINDS,
    KILL_EXIT_CODE,
    NO_FAULTS,
    FaultAction,
    FaultPlan,
    InjectedFault,
    apply_pre_fault,
    fault_plan_from_env,
    in_worker_process,
)
from repro.resilience.supervisor import (
    LADDER,
    CooperativeDeadline,
    RetryPolicy,
    ShardFailure,
    ShardSupervisor,
    SupervisedOutcome,
    SupervisionStats,
)

__all__ = [
    "FAULT_KINDS",
    "HTTP_FAULT_KINDS",
    "KILL_EXIT_CODE",
    "LADDER",
    "NO_FAULTS",
    "CooperativeDeadline",
    "CorruptShardResult",
    "EmptyResultError",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "JobDeadlineExceeded",
    "PoisonShardError",
    "RetryPolicy",
    "ShardCrash",
    "ShardError",
    "ShardFailure",
    "ShardSupervisor",
    "ShardTimeout",
    "SupervisedOutcome",
    "SupervisionStats",
    "apply_pre_fault",
    "describe_seed",
    "fault_plan_from_env",
    "in_worker_process",
]
