"""Structured error taxonomy of the fault-tolerant sampling service.

Every failure the shard supervisor can observe maps to one of these classes,
and every one of them carries **shard attribution** — shard id, seed, backend,
attempt count, execution rung — so a failed parallel job names the exact unit
of work that died instead of losing the context in a blanket
``pool.terminate()``.  Where an original Python exception exists it is chained
(``raise ... from original``), preserving the worker traceback.

The taxonomy:

``ShardError``
    Base class; one shard attempt failed.  Subclasses refine the cause.
``ShardCrash``
    The shard raised an exception (thread/inline rungs, original chained) or
    its worker process died (process rung, exit code recorded).  Transient
    until proven otherwise — the supervisor retries it.
``ShardTimeout``
    One shard attempt exceeded its per-shard timeout.  Process workers are
    terminated; thread workers are *abandoned* cooperatively (a thread cannot
    be forcibly cancelled — the supervisor warns and discards the late
    result).
``CorruptShardResult``
    A shard result failed the pre-merge integrity check (shard-id echo,
    epoch echo, payload checksum).  Treated as transient: the shard re-runs
    with the same seed and must reproduce the identical payload.
``PoisonShardError``
    The same shard failed twice with an *identical* failure signature —
    deterministic poison, so further retries are pointless and the ladder
    cannot help.  Raised immediately (or recorded, under ``allow_partial``).
``JobDeadlineExceeded``
    The job-level deadline expired before every shard completed.  Subclasses
    ``RuntimeError`` so existing ``except RuntimeError`` callers keep
    working; carries the completed/planned shard counts for partial-result
    decisions.

All classes subclass ``RuntimeError``: pre-existing callers that guarded the
parallel service with ``except RuntimeError`` observe the new, attributed
failures without code changes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


def describe_seed(seed: object) -> str:
    """Compact, stable description of a shard seed for error messages."""
    entropy = getattr(seed, "entropy", None)
    spawn_key = getattr(seed, "spawn_key", None)
    if entropy is None and spawn_key is None:
        return repr(seed)
    return f"SeedSequence(entropy={entropy}, spawn_key={tuple(spawn_key or ())})"


class ShardError(RuntimeError):
    """One shard attempt failed; carries full shard attribution."""

    def __init__(
        self,
        message: str,
        *,
        shard_id: int,
        backend: str = "?",
        seed: object = None,
        attempt: int = 0,
        rung: Optional[str] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.backend = backend
        self.seed_description = describe_seed(seed) if seed is not None else "?"
        self.attempt = int(attempt)
        self.rung = rung
        detail = (
            f"[shard {self.shard_id} backend={self.backend} "
            f"attempt={self.attempt + 1}"
            + (f" rung={self.rung}" if self.rung else "")
            + f" seed={self.seed_description}]"
        )
        super().__init__(f"{message} {detail}")

    def signature(self) -> Tuple[str, str]:
        """(class name, message) pair used for poison-shard classification."""
        return (type(self).__name__, str(self.args[0]))


class ShardCrash(ShardError):
    """A shard raised, or its worker process died."""

    def __init__(self, message: str, *, exitcode: Optional[int] = None, **attribution) -> None:
        self.exitcode = exitcode
        if exitcode is not None:
            message = f"{message} (worker exit code {exitcode})"
        super().__init__(message, **attribution)


class ShardTimeout(ShardError):
    """One shard attempt exceeded its per-shard timeout."""

    def __init__(self, message: str, *, timeout: Optional[float] = None, **attribution) -> None:
        self.timeout = timeout
        if timeout is not None:
            message = f"{message} (timeout {timeout:g}s)"
        super().__init__(message, **attribution)


class CorruptShardResult(ShardError):
    """A shard result failed the pre-merge integrity check."""


class PoisonShardError(ShardError):
    """A shard failed identically twice: deterministic, retry-proof failure."""

    def __init__(self, message: str, *, failure_signature: Tuple[str, str] = ("", ""),
                 **attribution) -> None:
        self.failure_signature = failure_signature
        super().__init__(message, **attribution)


class EmptyResultError(RuntimeError):
    """A partial return was requested but *zero* samples were accepted.

    ``allow_partial`` promises a degraded-but-honest answer: fewer samples,
    wider CI.  When the deadline (or attempt budget) expires before a single
    sample is accepted there is no honest answer — ``achieved_rel_error``
    would divide by zero, and the all-rejected accumulator would report a
    zero-width CI around 0.0, which reads as *perfect* confidence.  Rather
    than emit that overconfident report, the engine raises this error.
    Schedulers should treat it like a deadline failure: retry with more time
    or a larger attempt budget.
    """

    def __init__(
        self,
        message: str,
        *,
        deadline: Optional[float] = None,
        attempts: int = 0,
    ) -> None:
        self.deadline = deadline
        self.attempts = int(attempts)
        detail = f" (0 samples accepted after {self.attempts} attempts"
        if deadline is not None:
            detail += f", deadline {deadline:g}s"
        detail += ")"
        super().__init__(f"{message}{detail}")


class JobDeadlineExceeded(RuntimeError):
    """The job deadline expired with shards still outstanding.

    ``completed``/``planned`` record how much of the shard plan finished;
    ``incomplete_shards`` names the shards that did not.  Callers that want
    principled partial results pass ``allow_partial=True`` instead of
    catching this.
    """

    def __init__(
        self,
        message: str,
        *,
        deadline: Optional[float] = None,
        completed: int = 0,
        planned: int = 0,
        incomplete_shards: Sequence[int] = (),
    ) -> None:
        self.deadline = deadline
        self.completed = int(completed)
        self.planned = int(planned)
        self.incomplete_shards = tuple(incomplete_shards)
        detail = ""
        if planned:
            detail = (
                f" ({completed}/{planned} shards completed; "
                f"incomplete: {list(self.incomplete_shards)})"
            )
        super().__init__(f"{message}{detail}")


__all__ = [
    "CorruptShardResult",
    "EmptyResultError",
    "JobDeadlineExceeded",
    "PoisonShardError",
    "ShardCrash",
    "ShardError",
    "ShardTimeout",
    "describe_seed",
]
