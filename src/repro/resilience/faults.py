"""Deterministic fault injection for the parallel sampling service.

Chaos testing is only trustworthy when it is **replayable**: a fault that
appears in one run and not the next turns every failure into a heisenbug.
This module therefore derives every injection decision from a fixed key —
``(plan seed, shard id, attempt)`` — through
:func:`repro.utils.rng.keyed_rng`, so a :class:`FaultPlan` produces the exact
same faults no matter which worker executes a shard, in which order, on which
platform, or how often the run is repeated.

A plan can be **scripted** (an explicit ``{(shard_id, attempt): FaultAction}``
map, for unit tests that need one precise failure) or **rate-based** (every
``(shard_id, attempt)`` pair faults independently with probability ``rate``,
for chaos sweeps).  Scripted entries win over the rate draw.

Fault kinds (:data:`FAULT_KINDS`):

``"raise"``
    The worker raises :class:`InjectedFault` before sampling — a transient
    crash.  The default message embeds the shard id *and attempt*, so two
    consecutive rate-based faults on one shard never look identical and are
    never misclassified as a poison shard; scripted faults may pass an
    explicit ``message`` to *construct* a poison shard (identical signature
    on every attempt).
``"sleep"``
    The worker sleeps ``duration`` seconds before sampling — a hung shard,
    caught by the per-shard timeout.
``"kill"``
    The worker process hard-exits via ``os._exit`` — no exception, no
    result, just a dead process.  Only meaningful in a spawned worker;
    when injected into a thread or inline shard (where ``os._exit`` would
    take down the whole interpreter) it degrades to ``"raise"``.
``"corrupt"``
    The shard completes but its result payload is mutated *after* the
    integrity checksum was computed, simulating transport/memory corruption;
    the coordinator's pre-merge integrity check rejects it.

The environment harness (:func:`fault_plan_from_env`) lets CI run an entire
test suite under injection without touching call sites: when
``REPRO_FAULT_RATE`` is set, :func:`repro.parallel.shards.run_shard` builds a
rate-based plan from ``REPRO_FAULT_RATE`` / ``REPRO_FAULT_SEED`` /
``REPRO_FAULT_KINDS`` for any call that did not pass an explicit plan.  Pass
:data:`NO_FAULTS` to opt a specific run out even under the env harness.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.utils.rng import keyed_rng

#: Transport-level fault kinds, performed by a misbehaving *client* against
#: the HTTP server (see :mod:`repro.server.chaos`) rather than inside a
#: worker: a connection reset mid-response, a drip-feeding slow writer, an
#: oversized Content-Length, and a malformed-JSON body.  They ride the same
#: :class:`FaultPlan` keying — ``action_for(request_index, attempt)`` — so a
#: transport chaos run is exactly as replayable as a shard chaos run.
HTTP_FAULT_KINDS = ("reset", "slow-write", "oversize", "garbage")

FAULT_KINDS = ("raise", "sleep", "kill", "corrupt") + HTTP_FAULT_KINDS

#: Fault kinds applied *before* the shard samples (vs. ``corrupt``, applied
#: to the finished result).  HTTP kinds are no-ops inside a worker: they
#: only mean something at a socket, and :func:`apply_pre_fault` ignores
#: them so a mixed-kind plan can drive both layers from one seed.
PRE_FAULT_KINDS = ("raise", "sleep", "kill")


class InjectedFault(RuntimeError):
    """The exception a ``"raise"`` fault throws inside a worker."""


@dataclass(frozen=True)
class FaultAction:
    """One concrete fault to perform in a worker.

    ``duration`` is the sleep length for ``"sleep"``; ``message`` overrides
    the default :class:`InjectedFault` text for ``"raise"`` (pass the same
    message on consecutive attempts to script a poison shard).
    """

    kind: str
    duration: float = 0.05
    message: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, picklable description of which shard attempts fault.

    Attributes
    ----------
    seed:
        Root of the injection keys; with everything else fixed, one seed is
        one exact fault pattern.
    rate:
        Independent fault probability per ``(shard_id, attempt)`` pair
        (``0.0`` disables the random component).
    kinds:
        Fault kinds the rate-based draw chooses among, uniformly.
    sleep_duration:
        Sleep length used by rate-drawn ``"sleep"`` faults.
    scripted:
        Explicit ``(shard_id, attempt) -> FaultAction`` map; wins over the
        rate draw.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: Tuple[str, ...] = ("raise",)
    sleep_duration: float = 0.05
    scripted: Mapping[Tuple[int, int], FaultAction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        for (shard_id, attempt), action in self.scripted.items():
            if shard_id < 0 or attempt < 0:
                raise ValueError("scripted keys are (shard_id >= 0, attempt >= 0)")
            if not isinstance(action, FaultAction):
                raise ValueError("scripted values must be FaultAction instances")

    def action_for(self, shard_id: int, attempt: int) -> Optional[FaultAction]:
        """The fault this plan injects for one shard attempt, or ``None``.

        Pure function of ``(self.seed, shard_id, attempt)`` — execution
        order, worker identity, and wall clock never enter the decision.
        """
        scripted = self.scripted.get((int(shard_id), int(attempt)))
        if scripted is not None:
            return scripted
        if self.rate <= 0.0 or not self.kinds:
            return None
        rng = keyed_rng(self.seed, int(shard_id), int(attempt))
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[int(rng.integers(0, len(self.kinds)))]
        return FaultAction(kind=kind, duration=self.sleep_duration)

    def is_noop(self) -> bool:
        return self.rate <= 0.0 and not self.scripted


#: Explicit "inject nothing" plan: passing it disables even the
#: ``REPRO_FAULT_RATE`` environment harness for that run.
NO_FAULTS = FaultPlan()


def fault_plan_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """Build the CI chaos plan from ``REPRO_FAULT_*`` variables, if set.

    ``REPRO_FAULT_RATE`` (float, required to enable), ``REPRO_FAULT_SEED``
    (int, default 2023), ``REPRO_FAULT_KINDS`` (comma list, default
    ``raise`` — the one kind that is safe to spray across a whole test
    suite: sleeps need timeouts configured and kills need process rungs).
    Returns ``None`` when injection is not enabled.
    """
    env = os.environ if environ is None else environ
    raw_rate = env.get("REPRO_FAULT_RATE", "").strip()
    if not raw_rate:
        return None
    rate = float(raw_rate)
    if rate <= 0.0:
        return None
    seed = int(env.get("REPRO_FAULT_SEED", "2023"))
    kinds = tuple(
        k.strip() for k in env.get("REPRO_FAULT_KINDS", "raise").split(",") if k.strip()
    )
    return FaultPlan(seed=seed, rate=rate, kinds=kinds)


def in_worker_process() -> bool:
    """True when running inside a spawned/forked child process."""
    return multiprocessing.parent_process() is not None


def apply_pre_fault(action: Optional[FaultAction], shard_id: int, attempt: int) -> None:
    """Perform a pre-sampling fault inside the worker.

    ``"kill"`` outside a child process degrades to ``"raise"``: calling
    ``os._exit`` on the coordinator's interpreter would turn a simulated
    worker death into a real coordinator death.
    """
    if action is None or action.kind not in PRE_FAULT_KINDS:
        return
    if action.kind == "sleep":
        time.sleep(action.duration)
        return
    if action.kind == "kill" and in_worker_process():
        os._exit(KILL_EXIT_CODE)
    message = action.message or (
        f"injected fault (shard {shard_id}, attempt {attempt + 1})"
    )
    raise InjectedFault(message)


#: Exit code a ``"kill"`` fault dies with — distinctive in crash reports.
KILL_EXIT_CODE = 117


__all__ = [
    "FAULT_KINDS",
    "HTTP_FAULT_KINDS",
    "KILL_EXIT_CODE",
    "NO_FAULTS",
    "PRE_FAULT_KINDS",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "apply_pre_fault",
    "fault_plan_from_env",
    "in_worker_process",
]
