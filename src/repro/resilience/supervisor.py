"""Shard supervision: per-shard dispatch, retries, timeouts, degradation.

:class:`ShardSupervisor` is the fault-tolerance engine underneath
:class:`repro.parallel.pool.ParallelSamplerPool`.  Where the pre-resilience
pool handed the whole shard list to one ``starmap`` batch — so any single
failure tore down every shard — the supervisor dispatches **each shard
individually** and walks a small state machine per shard:

``PENDING --launch--> RUNNING --ok--> DONE``
``                       |--fail--> classify --> retry (backoff) / degrade /``
``                                              poison / give up``

The pieces:

* **Per-shard timeouts** — process attempts are terminated at the deadline;
  thread attempts are *abandoned* (a thread cannot be forcibly cancelled:
  the supervisor emits a ``RuntimeWarning``, discards the late result, and
  retries).  Thread and inline attempts additionally carry a cooperative
  deadline that :func:`repro.parallel.shards.run_shard` polls at stage
  boundaries.
* **Bounded retries with exponential backoff + deterministic jitter** —
  :class:`RetryPolicy`; the jitter is derived from
  :func:`repro.utils.rng.keyed_rng` ``(seed, shard, attempt)``, so a retried
  run sleeps the same schedule every time.  Retries are *answer-preserving*
  by construction: a shard's sample stream depends only on its task and
  seed, never on the attempt number, so the retry reproduces the payload the
  failed attempt would have produced.
* **Failure classification** — in-shard exceptions (poison-eligible),
  worker-process deaths (*crashes*), timeouts, and pre-merge integrity
  rejections are tracked separately; a shard that fails with an **identical
  exception signature twice in a row** is declared a
  :class:`~repro.resilience.errors.PoisonShardError` and not retried
  further (determinism means the third attempt would fail identically too).
* **Graceful-degradation ladder** — ``process -> thread -> inline``.  Two
  consecutive worker-process deaths on one shard step that shard down a
  rung: if spawned workers keep dying (resource limits, a hostile
  ``os._exit``), the same task re-runs on an in-process thread, and as a
  last resort inline in the coordinator — same seed, same answer, less
  isolation.
* **Job deadlines with principled partial results** — when the job-level
  deadline expires, running processes are terminated and, under
  ``allow_partial``, the shards that *did* complete are returned with
  ``degraded=True``; because every shard is an independent fixed-seed HT
  estimate, the merged partial answer is still unbiased for the snapshot —
  just wider (fewer attempts in the denominator).  Without
  ``allow_partial`` the supervisor raises
  :class:`~repro.resilience.errors.JobDeadlineExceeded` naming the
  incomplete shards.
* **Result integrity before merge** —
  :func:`repro.parallel.shards.verify_shard_result` (shard-id echo, epoch
  echo, payload checksum); rejected results count as transient failures and
  the shard re-runs.

Fault-free overhead is kept near zero: thread-rung shards go straight onto
one ``ThreadPoolExecutor`` and the supervisor blocks on a completion event
(no polling); the single-worker thread case collapses to a plain inline
loop, exactly like the pre-resilience fast path.
"""

from __future__ import annotations

import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # the runtime import is deferred: repro.parallel.pool
    from repro.parallel.shards import ShardResult, ShardTask  # pragma: no cover
    # imports this module, so a top-level import back into repro.parallel
    # would be circular.

from repro.resilience.errors import (
    CorruptShardResult,
    JobDeadlineExceeded,
    PoisonShardError,
    ShardCrash,
    ShardError,
    ShardTimeout,
)
from repro.resilience.faults import FaultPlan
from repro.utils.rng import keyed_rng

#: The degradation ladder, most isolated rung first.  A shard starts on the
#: rung matching the pool's resolved execution mode and only ever steps down.
LADDER = ("process", "thread", "inline")

#: Upper bound on one wait slice when thread and process attempts are in
#: flight simultaneously (mixed-rung runs mid-degradation) and no single
#: waitable covers both.
_MIXED_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_retries`` counts *re*-executions per shard (``2`` means up to three
    attempts).  The backoff before retry ``r`` (1-based) is
    ``min(base * factor**(r-1), cap)`` scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from ``keyed_rng(jitter_seed, shard,
    r)`` — deterministic per (seed, shard, retry), so replays sleep the same
    schedule and concurrent retries still de-synchronize.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_for(self, shard_id: int, retry: int) -> float:
        """Backoff seconds before the ``retry``-th re-execution (1-based)."""
        if retry < 1:
            return 0.0
        raw = min(self.backoff_base * self.backoff_factor ** (retry - 1), self.backoff_cap)
        if raw <= 0.0 or self.jitter == 0.0:
            return raw
        u = keyed_rng(self.jitter_seed, shard_id, retry).random()
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass
class SupervisionStats:
    """Fleet-level counters of one supervised run."""

    attempts: int = 0
    retries: int = 0
    shard_exceptions: int = 0
    shard_crashes: int = 0
    shard_timeouts: int = 0
    corrupt_results: int = 0
    poison_shards: int = 0
    degradations: int = 0
    abandoned_threads: int = 0
    completed: int = 0
    failed: int = 0
    rungs: Dict[str, int] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)

    def merge(self, other: "SupervisionStats") -> "SupervisionStats":
        """Fold counters of another run in (epoch restarts re-run the job)."""
        for name in (
            "attempts", "retries", "shard_exceptions", "shard_crashes",
            "shard_timeouts", "corrupt_results", "poison_shards",
            "degradations", "abandoned_threads",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        # completed/failed describe the *latest* run's shard plan.
        self.completed = other.completed
        self.failed = other.failed
        for rung, count in other.rungs.items():
            self.rungs[rung] = self.rungs.get(rung, 0) + count
        self.warnings.extend(other.warnings)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "shard_exceptions": self.shard_exceptions,
            "shard_crashes": self.shard_crashes,
            "shard_timeouts": self.shard_timeouts,
            "corrupt_results": self.corrupt_results,
            "poison_shards": self.poison_shards,
            "degradations": self.degradations,
            "abandoned_threads": self.abandoned_threads,
            "completed": self.completed,
            "failed": self.failed,
            "rungs": dict(self.rungs),
        }


@dataclass
class ShardFailure:
    """Terminal failure record of one shard (``allow_partial`` runs)."""

    shard_id: int
    attempts: int
    error: ShardError
    history: List[str] = field(default_factory=list)


@dataclass
class SupervisedOutcome:
    """Everything one supervised run hands back to the pool."""

    results: List[ShardResult]
    stats: SupervisionStats
    failures: List[ShardFailure]
    planned: int
    degraded: bool = False
    deadline_hit: bool = False
    incomplete_shards: Tuple[int, ...] = ()


class CooperativeDeadline:
    """In-process deadline polled by ``run_shard`` at stage boundaries.

    Threads cannot be forcibly cancelled, so thread/inline shard attempts
    carry one of these and check it between stages; blowing the budget
    raises :class:`ShardTimeout` from *inside* the worker, which the
    supervisor classifies exactly like an external timeout.
    """

    def __init__(self, expires_at: float, *, shard_id: int, backend: str,
                 seed: object, attempt: int, rung: str, timeout: Optional[float]) -> None:
        self.expires_at = expires_at
        self._attribution = dict(
            shard_id=shard_id, backend=backend, seed=seed, attempt=attempt, rung=rung
        )
        self._timeout = timeout

    def check(self, stage: str = "") -> None:
        if time.monotonic() >= self.expires_at:
            raise ShardTimeout(
                f"cooperative deadline expired at stage {stage!r}",
                timeout=self._timeout,
                **self._attribution,
            )


class _ShardState:
    """Supervisor-side bookkeeping for one shard of the plan."""

    __slots__ = (
        "task", "attempt", "rung_index", "not_before", "last_signature",
        "crash_streak", "history", "done", "failure",
    )

    def __init__(self, task: ShardTask, rung_index: int) -> None:
        self.task = task
        self.attempt = 0          # next attempt number to launch
        self.rung_index = rung_index
        self.not_before = 0.0     # monotonic launch gate (backoff)
        self.last_signature: Optional[Tuple[str, str]] = None
        self.crash_streak = 0
        self.history: List[str] = []
        self.done = False
        self.failure: Optional[ShardFailure] = None

    @property
    def rung(self) -> str:
        return LADDER[self.rung_index]


class _Handle:
    """One in-flight shard attempt (thread future or worker process)."""

    __slots__ = ("state", "attempt", "rung", "future", "process", "conn",
                 "started_at", "abandoned", "message")

    def __init__(self, state: _ShardState, attempt: int, rung: str) -> None:
        self.state = state
        self.attempt = attempt
        self.rung = rung
        self.future = None
        self.process = None
        self.conn = None
        self.started_at: Optional[float] = None
        self.abandoned = False
        self.message = None  # received process message, pre-collection


def _process_shard_entry(conn, task: "ShardTask", attempt: int,
                         fault_plan: Optional[FaultPlan]) -> None:
    """Worker-process entry point (module-level: ``spawn`` imports by name)."""
    try:
        from repro.parallel.shards import run_shard

        result = run_shard(task, attempt, fault_plan)
        conn.send(("ok", result))
    except BaseException as error:  # noqa: BLE001 - full fidelity back to parent
        try:
            conn.send(("error", type(error).__name__, str(error),
                       traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _RemoteShardException(RuntimeError):
    """An exception re-materialized from a worker process."""

    def __init__(self, type_name: str, message: str, formatted: str) -> None:
        self.type_name = type_name
        self.remote_message = message
        self.formatted = formatted
        super().__init__(f"{type_name}: {message}")


class ShardSupervisor:
    """Dispatch a shard plan with retries, timeouts, and degradation.

    Parameters
    ----------
    tasks:
        The fixed shard plan (see ``ParallelSamplerPool.plan_tasks``).
    execution:
        Starting rung: ``"process"``, ``"thread"``, or ``"inline"``.
    workers:
        Concurrency cap across all rungs.
    policy:
        Retry/backoff policy.
    shard_timeout:
        Per-shard-attempt wall-clock budget (``None``: unbounded).
    deadline:
        Job-level wall-clock budget measured from ``run()`` entry.
    allow_partial:
        On deadline expiry or exhausted shards, return completed shards
        (``degraded=True``) instead of raising.
    fault_plan:
        Deterministic fault plan threaded into every ``run_shard`` call
        (``None``: workers fall back to the ``REPRO_FAULT_RATE`` env
        harness).
    start_method:
        ``multiprocessing`` start method for process-rung attempts.
    executor:
        Optional pre-built ``ThreadPoolExecutor`` for thread-rung attempts.
        Borrowed, not owned: reused across supervisor runs (the long-lived
        pool hands its executor to every run) and never shut down here.
    """

    def __init__(
        self,
        tasks: Sequence[ShardTask],
        *,
        execution: str = "thread",
        workers: int = 1,
        policy: Optional[RetryPolicy] = None,
        shard_timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        allow_partial: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        start_method: str = "spawn",
        executor: Optional[object] = None,
    ) -> None:
        if execution not in LADDER:
            raise ValueError(f"execution must be one of {LADDER}, got {execution!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        self.tasks = list(tasks)
        self.execution = execution
        self.workers = int(workers)
        self.policy = policy or RetryPolicy()
        self.shard_timeout = shard_timeout
        self.deadline = deadline
        self.allow_partial = allow_partial
        self.fault_plan = fault_plan
        self.start_method = start_method
        self.stats = SupervisionStats()
        if self.tasks:
            from repro.parallel.shards import observed_versions

            self._expected_versions: Optional[Tuple[int, ...]] = observed_versions(
                self.tasks[0].queries
            )
        else:
            self._expected_versions = None
        self._results: Dict[int, ShardResult] = {}
        self._states: List[_ShardState] = []
        self._running: List[_Handle] = []
        self._deadline_at: Optional[float] = None
        #: thread-rung executor.  A caller-provided executor (the pool's
        #: long-lived one) is borrowed — reused across supervisors and never
        #: shut down here; a lazily-created one is owned and reaped in
        #: ``_cleanup``.
        self._executor = executor
        self._owns_executor = executor is None
        self._event = None
        self._mp_context = None
        self._warned_thread_cancel = False

    # ------------------------------------------------------------------ public
    def run(self) -> SupervisedOutcome:
        """Execute the plan; returns completed results in shard-id order."""
        rung_index = LADDER.index(self.execution)
        self._states = [_ShardState(task, rung_index) for task in self.tasks]
        started = time.monotonic()
        self._deadline_at = None if self.deadline is None else started + self.deadline
        try:
            return self._loop()
        finally:
            self._cleanup()

    def close(self) -> None:
        """Release any still-live workers and the owned executor; idempotent.

        :meth:`run` already cleans up on every exit path, so this only
        matters for a supervisor abandoned before (or killed during) a run —
        but having the lifecycle method makes ownership of the lazily
        created thread executor explicit.
        """
        self._cleanup()

    # -------------------------------------------------------------------- loop
    def _loop(self) -> SupervisedOutcome:
        # Loop on shard *states*, not in-flight handles: an abandoned thread
        # future may outlive every shard's resolution and must not keep the
        # supervisor spinning.
        while any(s for s in self._states if not s.done and s.failure is None):
            now = time.monotonic()
            if self._deadline_at is not None and now >= self._deadline_at:
                return self._finish_deadline()
            self._launch_ready(now)
            if not any(s for s in self._states if not s.done and s.failure is None):
                break  # inline launches may have resolved everything
            self._wait_for_event()
            self._collect_finished()
            self._expire_timeouts()
        return self._finish()

    def _is_running(self, state: _ShardState) -> bool:
        return any(h.state is state and not h.abandoned for h in self._running)

    def _launch_ready(self, now: float) -> None:
        for state in self._states:
            if state.done or state.failure is not None or self._is_running(state):
                continue
            if state.not_before > now:
                continue
            rung = state.rung
            if rung != "thread" and self._live_slots() >= self.workers:
                continue
            self._launch(state, now)

    def _live_slots(self) -> int:
        """Process/inline attempts occupy real capacity; thread attempts are
        queued by the executor itself (its ``max_workers`` is the cap)."""
        return sum(1 for h in self._running if h.rung == "process" and not h.abandoned)

    def _launch(self, state: _ShardState, now: float) -> None:
        attempt = state.attempt
        rung = state.rung
        self.stats.attempts += 1
        self.stats.rungs[rung] = self.stats.rungs.get(rung, 0) + 1
        if attempt > 0:
            self.stats.retries += 1
        handle = _Handle(state, attempt, rung)
        if rung == "process":
            try:
                self._start_process(handle)
            except Exception as error:
                # The attempt never launched (unpicklable task, spawn
                # failure): the process rung itself is broken for this
                # shard — step straight down the ladder and retry there.
                self._note(state, f"attempt {attempt + 1}: process launch failed: {error}")
                self._degrade(state, reason=f"process launch failed: {error}")
                self._after_failure(state, self._crash_error(state, handle, error), "crash",
                                    original=error, count_crash=True, force_retry=True)
                return
            self._running.append(handle)
        elif rung == "thread":
            self._start_thread(handle)
            self._running.append(handle)
        else:
            self._run_inline(handle, now)

    # ------------------------------------------------------------------- rungs
    def _start_process(self, handle: _Handle) -> None:
        import multiprocessing as mp

        if self._mp_context is None:
            self._mp_context = mp.get_context(self.start_method)
        parent_conn, child_conn = self._mp_context.Pipe(duplex=False)
        process = self._mp_context.Process(
            target=_process_shard_entry,
            args=(child_conn, handle.state.task, handle.attempt, self.fault_plan),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.started_at = time.monotonic()

    def _start_thread(self, handle: _Handle) -> None:
        import threading
        from concurrent.futures import ThreadPoolExecutor

        if self._event is None:
            self._event = threading.Event()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
            self._owns_executor = True
        handle.future = self._executor.submit(self._thread_entry, handle)
        handle.future.add_done_callback(lambda _f: self._event.set())

    def _thread_entry(self, handle: _Handle) -> "ShardResult":
        from repro.parallel.shards import run_shard

        handle.started_at = time.monotonic()
        deadline = self._coop_deadline(handle)
        return run_shard(handle.state.task, handle.attempt, self.fault_plan, deadline)

    def _run_inline(self, handle: _Handle, now: float) -> None:
        from repro.parallel.shards import run_shard

        handle.started_at = now
        deadline = self._coop_deadline(handle)
        try:
            result = run_shard(handle.state.task, handle.attempt, self.fault_plan, deadline)
        except ShardTimeout as error:
            self._handle_failure(handle, error, "timeout", original=error)
            return
        except Exception as error:  # noqa: BLE001 - classified below
            self._handle_failure(handle, error, "exception", original=error)
            return
        self._accept_result(handle, result)

    def _coop_deadline(self, handle: _Handle) -> Optional[CooperativeDeadline]:
        expires = []
        if self.shard_timeout is not None:
            expires.append(handle.started_at + self.shard_timeout)
        if self._deadline_at is not None:
            expires.append(self._deadline_at)
        if not expires:
            return None
        task = handle.state.task
        return CooperativeDeadline(
            min(expires),
            shard_id=task.shard_id,
            backend=task.backend,
            seed=task.seed,
            attempt=handle.attempt,
            rung=handle.rung,
            timeout=self.shard_timeout,
        )

    # ------------------------------------------------------------------ waiting
    def _next_event_delay(self) -> Optional[float]:
        now = time.monotonic()
        candidates: List[float] = []
        if self._deadline_at is not None:
            candidates.append(self._deadline_at)
        if self.shard_timeout is not None:
            for handle in self._running:
                if handle.started_at is not None and not handle.abandoned:
                    candidates.append(handle.started_at + self.shard_timeout)
        for state in self._states:
            if not state.done and state.failure is None and not self._is_running(state):
                candidates.append(max(state.not_before, now))
        if not candidates:
            return None
        return max(0.0, min(candidates) - now)

    def _wait_for_event(self) -> None:
        live = [h for h in self._running if not h.abandoned]
        if not live:
            # Everything launchable is backing off: sleep to the gate.
            delay = self._next_event_delay()
            if delay:
                time.sleep(min(delay, self.policy.backoff_cap or 0.05))
            return
        delay = self._next_event_delay()
        processes = [h for h in live if h.process is not None]
        threads = [h for h in live if h.future is not None]
        if processes and threads:
            time.sleep(_MIXED_POLL_SECONDS if delay is None else min(delay, _MIXED_POLL_SECONDS))
        elif processes:
            from multiprocessing import connection

            waitables = []
            for h in processes:
                waitables.append(h.conn)
                waitables.append(h.process.sentinel)
            connection.wait(waitables, timeout=delay)
        else:
            if any(h.future.done() for h in threads):
                return
            self._event.wait(timeout=delay)
            self._event.clear()

    # --------------------------------------------------------------- collection
    def _collect_finished(self) -> None:
        for handle in list(self._running):
            if handle.process is not None:
                self._collect_process(handle)
            else:
                self._collect_thread(handle)

    def _collect_thread(self, handle: _Handle) -> None:
        future = handle.future
        if not future.done():
            return
        self._running.remove(handle)
        if handle.abandoned:
            return  # late result of a timed-out attempt: discarded
        error = future.exception()
        if error is None:
            self._accept_result(handle, future.result())
        elif isinstance(error, ShardTimeout):
            self._handle_failure(handle, error, "timeout", original=error)
        else:
            self._handle_failure(handle, error, "exception", original=error)

    def _collect_process(self, handle: _Handle) -> None:
        if handle.message is None and handle.conn.poll():
            try:
                handle.message = handle.conn.recv()
            except EOFError:
                handle.message = ("eof",)
        if handle.message is None:
            if handle.process.is_alive():
                return
            # Died without a message: hard crash (os._exit, OOM kill, ...).
            self._running.remove(handle)
            exitcode = handle.process.exitcode
            self._close_process(handle)
            error = self._crash_error(handle.state, handle, None, exitcode=exitcode)
            self._handle_failure(handle, error, "crash")
            return
        self._running.remove(handle)
        message = handle.message
        self._close_process(handle, join=True)
        if message[0] == "ok":
            self._accept_result(handle, message[1])
        elif message[0] == "error":
            remote = _RemoteShardException(message[1], message[2], message[3])
            self._handle_failure(handle, remote, "exception", original=remote)
        else:  # "eof": the pipe died mid-send
            error = self._crash_error(handle.state, handle, None,
                                      exitcode=handle.process.exitcode)
            self._handle_failure(handle, error, "crash")

    def _close_process(self, handle: _Handle, join: bool = False) -> None:
        try:
            if join:
                handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        finally:
            try:
                handle.conn.close()
            except Exception:
                pass

    def _expire_timeouts(self) -> None:
        if self.shard_timeout is None:
            return
        now = time.monotonic()
        for handle in list(self._running):
            if handle.abandoned or handle.started_at is None:
                continue
            if now - handle.started_at < self.shard_timeout:
                continue
            state = state_ = handle.state
            task = state_.task
            error = ShardTimeout(
                "shard attempt exceeded its per-shard timeout",
                timeout=self.shard_timeout,
                shard_id=task.shard_id,
                backend=task.backend,
                seed=task.seed,
                attempt=handle.attempt,
                rung=handle.rung,
            )
            if handle.process is not None:
                self._running.remove(handle)
                self._close_process(handle)
            else:
                # A thread cannot be forcibly cancelled: abandon the future
                # (its eventual result is discarded) and warn once.
                handle.abandoned = True
                self.stats.abandoned_threads += 1
                if not self._warned_thread_cancel:
                    self._warned_thread_cancel = True
                    message = (
                        f"shard {task.shard_id} exceeded its {self.shard_timeout:g}s "
                        "timeout on the thread rung; thread workers cannot be "
                        "forcibly cancelled — the attempt is abandoned (cooperative "
                        "deadline checks run at stage boundaries only) and the "
                        "shard is retried"
                    )
                    self.stats.warnings.append(message)
                    warnings.warn(message, RuntimeWarning, stacklevel=2)
            self._handle_failure(handle, error, "timeout")
            del state

    # ----------------------------------------------------------- classification
    def _accept_result(self, handle: _Handle, result: "ShardResult") -> None:
        from repro.parallel.shards import verify_shard_result

        state = handle.state
        problem = verify_shard_result(state.task, result, self._expected_versions)
        if problem is not None:
            task = state.task
            error = CorruptShardResult(
                problem,
                shard_id=task.shard_id,
                backend=task.backend,
                seed=task.seed,
                attempt=handle.attempt,
                rung=handle.rung,
            )
            self._handle_failure(handle, error, "corrupt")
            return
        state.done = True
        state.crash_streak = 0
        self._results[state.task.shard_id] = result
        self.stats.completed += 1

    def _crash_error(self, state: _ShardState, handle: _Handle, original,
                     exitcode: Optional[int] = None) -> ShardCrash:
        task = state.task
        message = "worker process died before returning a result"
        if original is not None:
            message = f"shard attempt could not be executed: {original}"
        return ShardCrash(
            message,
            exitcode=exitcode,
            shard_id=task.shard_id,
            backend=task.backend,
            seed=task.seed,
            attempt=handle.attempt,
            rung=handle.rung,
        )

    def _handle_failure(self, handle: _Handle, error: BaseException, category: str,
                        original: Optional[BaseException] = None) -> None:
        state = handle.state
        task = state.task
        if not isinstance(error, ShardError):
            wrapped = ShardCrash(
                f"shard raised {type(error).__name__}: {error}",
                shard_id=task.shard_id,
                backend=task.backend,
                seed=task.seed,
                attempt=handle.attempt,
                rung=handle.rung,
            )
            wrapped.__cause__ = original if original is not None else error
            shard_error: ShardError = wrapped
        else:
            if original is not None and original is not error:
                error.__cause__ = original
            shard_error = error

        counter = {
            "exception": "shard_exceptions",
            "crash": "shard_crashes",
            "timeout": "shard_timeouts",
            "corrupt": "corrupt_results",
        }[category]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        self._note(state, f"attempt {handle.attempt + 1} [{handle.rung}] "
                          f"{category}: {shard_error}")

        # Poison detection: only deterministic in-shard exceptions qualify
        # (timeouts, process deaths, and integrity rejections are
        # infrastructure noise, not proof the shard itself is poisoned).
        poison = False
        if category == "exception":
            signature = self._signature_of(original if original is not None else error)
            if state.last_signature is not None and state.last_signature == signature:
                poison = True
            state.last_signature = signature
        else:
            state.last_signature = None

        if category == "crash":
            state.crash_streak += 1
            if state.crash_streak >= 2:
                self._degrade(state, reason="worker keeps dying")
        else:
            state.crash_streak = 0

        if poison:
            self.stats.poison_shards += 1
            poison_error = PoisonShardError(
                "shard failed identically twice; retries cannot succeed "
                f"(signature {state.last_signature!r})",
                failure_signature=state.last_signature or ("", ""),
                shard_id=task.shard_id,
                backend=task.backend,
                seed=task.seed,
                attempt=handle.attempt,
                rung=handle.rung,
            )
            poison_error.__cause__ = shard_error
            self._fail_shard(state, handle.attempt + 1, poison_error)
            return

        self._after_failure(state, shard_error, category, original=original)

    def _after_failure(self, state: _ShardState, shard_error: ShardError, category: str,
                       original: Optional[BaseException] = None,
                       count_crash: bool = False, force_retry: bool = False) -> None:
        if count_crash:
            counter = "shard_crashes"
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        attempts_used = state.attempt + 1
        if not force_retry and attempts_used > self.policy.max_retries:
            self._fail_shard(state, attempts_used, shard_error)
            return
        retry = state.attempt + 1
        state.attempt = retry
        state.not_before = time.monotonic() + self.policy.backoff_for(
            state.task.shard_id, retry
        )

    def _signature_of(self, error: BaseException) -> Tuple[str, str]:
        if isinstance(error, _RemoteShardException):
            return (error.type_name, error.remote_message)
        if isinstance(error, ShardError):
            return error.signature()
        return (type(error).__name__, str(error))

    def _fail_shard(self, state: _ShardState, attempts: int, error: ShardError) -> None:
        state.failure = ShardFailure(
            shard_id=state.task.shard_id,
            attempts=attempts,
            error=error,
            history=list(state.history),
        )
        self.stats.failed += 1
        if not self.allow_partial:
            # Re-raise with full shard attribution, chaining the original
            # traceback where one exists (thread-rung exceptions carry it;
            # process-rung failures carry the formatted remote traceback).
            raise error from error.__cause__

    def _degrade(self, state: _ShardState, reason: str) -> None:
        if state.rung_index + 1 < len(LADDER):
            state.rung_index += 1
            state.crash_streak = 0
            self.stats.degradations += 1
            self._note(state, f"degraded to rung {state.rung!r}: {reason}")

    def _note(self, state: _ShardState, message: str) -> None:
        state.history.append(message)

    # ------------------------------------------------------------------- finish
    def _finish(self) -> SupervisedOutcome:
        failures = [s.failure for s in self._states if s.failure is not None]
        incomplete = tuple(sorted(
            s.task.shard_id for s in self._states if not s.done
        ))
        return SupervisedOutcome(
            results=[self._results[i] for i in sorted(self._results)],
            stats=self.stats,
            failures=failures,
            planned=len(self._states),
            degraded=bool(failures),
            incomplete_shards=incomplete,
        )

    def _finish_deadline(self) -> SupervisedOutcome:
        for handle in list(self._running):
            if handle.process is not None:
                self._running.remove(handle)
                self._close_process(handle)
            else:
                handle.abandoned = True
                self.stats.abandoned_threads += 1
        incomplete = tuple(sorted(
            s.task.shard_id for s in self._states if not s.done
        ))
        if not self.allow_partial:
            raise JobDeadlineExceeded(
                f"parallel job exceeded its {self.deadline:g}s deadline",
                deadline=self.deadline,
                completed=len(self._results),
                planned=len(self._states),
                incomplete_shards=incomplete,
            )
        failures = [s.failure for s in self._states if s.failure is not None]
        return SupervisedOutcome(
            results=[self._results[i] for i in sorted(self._results)],
            stats=self.stats,
            failures=failures,
            planned=len(self._states),
            degraded=True,
            deadline_hit=True,
            incomplete_shards=incomplete,
        )

    def _cleanup(self) -> None:
        for handle in list(self._running):
            if handle.process is not None:
                self._close_process(handle)
        self._running.clear()
        if self._executor is not None:
            if self._owns_executor:
                self._executor.shutdown(wait=False)
            self._executor = None


__all__ = [
    "LADDER",
    "CooperativeDeadline",
    "RetryPolicy",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisedOutcome",
    "SupervisionStats",
]
