"""JSON-over-HTTP transport for :class:`~repro.server.service.SamplingService`.

Stdlib only — :class:`http.server.ThreadingHTTPServer` on the server side,
:mod:`http.client` in :class:`ServerClient` — so the server adds zero
dependencies.  One endpoint does the work:

``POST /api``
    Body: one request JSON object (see :mod:`repro.server.protocol`).
    Response: the service's payload, with the HTTP status derived from the
    protocol error code (200 on success).

``GET /health`` / ``GET /stats``
    Convenience mirrors of the corresponding request kinds, so a plain
    ``curl`` (or an orchestrator's liveness probe) needs no body.

Each request runs on its own thread (``ThreadingHTTPServer``), all threads
multiplexing onto the one shared service — which is exactly the concurrency
regime the service's epoch protocol and warm-clone design are built for.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple

from repro.server.protocol import ERROR_CODES
from repro.server.service import SamplingService

#: requests larger than this are refused unread (a body this size is never
#: a legitimate request against this protocol)
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class SamplingRequestHandler(BaseHTTPRequestHandler):
    """Per-connection handler; delegates everything to the shared service."""

    protocol_version = "HTTP/1.1"
    server: "SamplingHTTPServer"

    # ------------------------------------------------------------------ verbs
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") not in ("", "/api"):
            self._reply(404, {"ok": False, "error": {
                "code": "invalid-request", "message": f"no such path {self.path!r}"}})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            self._reply(400, {"ok": False, "error": {
                "code": "invalid-request",
                "message": f"bad or oversized Content-Length {length}"}})
            return
        body = self.rfile.read(length)
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._reply(400, {"ok": False, "error": {
                "code": "invalid-request", "message": f"bad JSON body: {error}"}})
            return
        self._dispatch(request)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        kind = self.path.rstrip("/").lstrip("/")
        if kind not in ("health", "stats"):
            self._reply(404, {"ok": False, "error": {
                "code": "invalid-request", "message": f"no such path {self.path!r}"}})
            return
        self._dispatch({"kind": kind})

    # -------------------------------------------------------------- plumbing
    def _dispatch(self, request: object) -> None:
        payload = self.server.service.handle(request)
        if payload.get("ok"):
            status = 200
        else:
            code = payload.get("error", {}).get("code", "internal")
            status = ERROR_CODES.get(code, 500)
        self._reply(status, payload)

    def _reply(self, status: int, payload: Mapping[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.verbose:  # quiet by default: the server is a service,
            super().log_message(format, *args)  # not a traffic logger


class SamplingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP front-end bound to one :class:`SamplingService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SamplingService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, SamplingRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_server(
    service: SamplingService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> Tuple[SamplingHTTPServer, threading.Thread]:
    """Bind and start serving on a daemon thread; returns (server, thread).

    ``port=0`` binds an ephemeral port — read the actual one off
    ``server.port``.  Call ``server.shutdown()`` then ``service.close()``
    to stop.
    """
    server = SamplingHTTPServer((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-server", daemon=True
    )
    thread.start()
    return server, thread


class ServerError(RuntimeError):
    """Raised by :meth:`ServerClient.call` on an error payload."""

    def __init__(self, code: str, message: str, details: Dict[str, object]) -> None:
        self.code = code
        self.details = details
        super().__init__(f"[{code}] {message}")


class ServerClient:
    """Minimal blocking client over :mod:`http.client`.

    One connection per request: the load generator runs many client threads,
    and per-request connections sidestep every connection-reuse/threading
    subtlety at a latency cost that is noise next to the sampling itself.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """POST one request; returns the decoded payload, errors included."""
        body = json.dumps(payload).encode("utf-8")
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "POST", "/api", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def call(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """POST one request; returns ``result`` or raises :class:`ServerError`."""
        answer = self.request(payload)
        if answer.get("ok"):
            return answer["result"]
        error = answer.get("error", {})
        raise ServerError(
            error.get("code", "internal"),
            error.get("message", "malformed error payload"),
            {k: v for k, v in error.items() if k not in ("code", "message")},
        )

    # ------------------------------------------------------- request builders
    def sample(self, query: str, count: int, **options: object) -> Dict[str, object]:
        return self.call({"kind": "sample", "query": query, "count": count, **options})

    def aggregate(self, query: str, aggregate: str, **options: object) -> Dict[str, object]:
        return self.call({"kind": "aggregate", "query": query,
                          "aggregate": aggregate, **options})

    def mutate(self, relation: str, delete_positions: list) -> Dict[str, object]:
        return self.call({"kind": "mutate", "relation": relation,
                          "delete_positions": delete_positions})

    def health(self) -> Dict[str, object]:
        return self.call({"kind": "health"})

    def stats(self) -> Dict[str, object]:
        return self.call({"kind": "stats"})


__all__ = [
    "MAX_REQUEST_BYTES",
    "SamplingHTTPServer",
    "SamplingRequestHandler",
    "ServerClient",
    "ServerError",
    "start_server",
]
