"""JSON-over-HTTP transport for :class:`~repro.server.service.SamplingService`.

Stdlib only — :class:`http.server.ThreadingHTTPServer` on the server side,
:mod:`http.client` in :class:`ServerClient` — so the server adds zero
dependencies.  One endpoint does the work:

``POST /api``
    Body: one request JSON object (see :mod:`repro.server.protocol`).
    Response: the service's payload, with the HTTP status derived from the
    protocol error code (200 on success).

``GET /health`` / ``GET /stats``
    Convenience mirrors of the corresponding request kinds, so a plain
    ``curl`` (or an orchestrator's liveness probe) needs no body.

Each request runs on its own thread (``ThreadingHTTPServer``), all threads
multiplexing onto the one shared service — which is exactly the concurrency
regime the service's epoch protocol and warm-clone design are built for.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple

from repro.resilience.supervisor import RetryPolicy
from repro.server.protocol import ERROR_CODES, RETRYABLE_CODES
from repro.server.service import SamplingService

#: requests larger than this are refused unread (a body this size is never
#: a legitimate request against this protocol)
MAX_REQUEST_BYTES = 4 * 1024 * 1024


class SamplingRequestHandler(BaseHTTPRequestHandler):
    """Per-connection handler; delegates everything to the shared service."""

    protocol_version = "HTTP/1.1"
    server: "SamplingHTTPServer"

    def setup(self) -> None:
        # Slow-loris defense: a per-connection socket timeout bounds every
        # blocking read *and* write against this client, so a stalled or
        # drip-feeding peer can pin a daemon handler thread for at most
        # `connection_timeout` seconds before the connection is dropped
        # (BaseHTTPRequestHandler turns the timeout into close_connection).
        self.timeout = self.server.connection_timeout
        super().setup()

    # ------------------------------------------------------------------ verbs
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") not in ("", "/api"):
            self._reply(404, {"ok": False, "error": {
                "code": "invalid-request", "message": f"no such path {self.path!r}"}})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_REQUEST_BYTES:
            # The body is refused *unread*; whatever the client sends next
            # is unparseable mid-stream, so drop the connection after the
            # structured reply instead of misreading body bytes as requests.
            self.close_connection = True
            self._reply(400, {"ok": False, "error": {
                "code": "invalid-request",
                "message": f"bad or oversized Content-Length {length}"}})
            return
        body = self.rfile.read(length)
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._reply(400, {"ok": False, "error": {
                "code": "invalid-request", "message": f"bad JSON body: {error}"}})
            return
        self._dispatch(request)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        kind = self.path.rstrip("/").lstrip("/")
        if kind not in ("health", "stats"):
            self._reply(404, {"ok": False, "error": {
                "code": "invalid-request", "message": f"no such path {self.path!r}"}})
            return
        self._dispatch({"kind": kind})

    # -------------------------------------------------------------- plumbing
    def _dispatch(self, request: object) -> None:
        payload = self.server.service.handle(request)
        if payload.get("ok"):
            status = 200
        else:
            code = payload.get("error", {}).get("code", "internal")
            status = ERROR_CODES.get(code, 500)
        self._reply(status, payload)

    def _reply(self, status: int, payload: Mapping[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after = None
        error = payload.get("error")
        if isinstance(error, Mapping):
            retry_after = error.get("retry_after")
        if (
            isinstance(retry_after, (int, float))
            and not isinstance(retry_after, bool)
            and retry_after > 0
        ):
            # Standard header mirror of the payload hint, so plain HTTP
            # clients (and proxies) can honor sheds without parsing JSON.
            self.send_header("Retry-After", str(int(math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.verbose:  # quiet by default: the server is a service,
            super().log_message(format, *args)  # not a traffic logger


class SamplingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP front-end bound to one :class:`SamplingService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SamplingService,
        verbose: bool = False,
        connection_timeout: Optional[float] = 30.0,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.connection_timeout = connection_timeout
        super().__init__(address, SamplingRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def handle_error(self, request: object, client_address: object) -> None:
        """Client-side transport failures are chaos, not server bugs.

        A peer that resets mid-response, stalls past the socket timeout, or
        vanishes raises out of the handler thread; counting it quietly (the
        ``transport_errors`` counter in ``/stats``) keeps the chaos harness
        from flooding stderr while real handler bugs still get the full
        traceback treatment.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            self.service.note_transport_error()
            return
        super().handle_error(request, client_address)


def start_server(
    service: SamplingService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    connection_timeout: Optional[float] = 30.0,
) -> Tuple[SamplingHTTPServer, threading.Thread]:
    """Bind and start serving on a daemon thread; returns (server, thread).

    ``port=0`` binds an ephemeral port — read the actual one off
    ``server.port``.  Call ``server.shutdown()`` then ``service.close()``
    to stop.  ``connection_timeout`` bounds every per-connection socket
    read/write (slow-loris defense); ``None`` disables it.
    """
    server = SamplingHTTPServer(
        (host, port), service, verbose=verbose,
        connection_timeout=connection_timeout,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="repro-server", daemon=True
    )
    thread.start()
    return server, thread


class ServerError(RuntimeError):
    """Raised by :meth:`ServerClient.call` on an error payload.

    ``retry_after`` is the server's machine-readable hint in seconds when
    the rejection is transient (load sheds, open breakers), ``None`` when
    retrying cannot help (an oversized request stays oversized).
    """

    def __init__(self, code: str, message: str, details: Dict[str, object]) -> None:
        self.code = code
        self.details = details
        super().__init__(f"[{code}] {message}")

    @property
    def retry_after(self) -> Optional[float]:
        value = self.details.get("retry_after")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


class ServerClient:
    """Minimal blocking client over :mod:`http.client`.

    One connection per request: the load generator runs many client threads,
    and per-request connections sidestep every connection-reuse/threading
    subtlety at a latency cost that is noise next to the sampling itself.

    Retries
    -------
    ``retries > 0`` arms a bounded retry loop in :meth:`call`: transient
    rejections (:data:`~repro.server.protocol.RETRYABLE_CODES`) and
    transport failures (connection refused/reset, socket timeouts) are
    retried with the PR 6 :class:`~repro.resilience.supervisor.RetryPolicy`
    — exponential backoff whose jitter comes from ``keyed_rng(retry_seed,
    request seed, attempt)``, deterministic per (client, request, attempt)
    — and the server's ``Retry-After`` hint, when present, *raises* the
    backoff floor (capped at ``max_retry_after`` so a test client never
    sleeps a production-sized hint).  Retrying is safe by construction:
    every answer is a pure function of (request, snapshot), so a replay can
    never double-apply work.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 120.0, retries: int = 0,
                 retry_policy: Optional[RetryPolicy] = None,
                 retry_seed: int = 0,
                 max_retry_after: float = 5.0) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=retries, backoff_base=0.05, backoff_cap=2.0,
            jitter=0.5, jitter_seed=retry_seed,
        )
        self.max_retry_after = max_retry_after
        #: transparency counter: total retry sleeps this client performed
        self.retries_performed = 0

    def request(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """POST one request; returns the decoded payload, errors included."""
        body = json.dumps(payload).encode("utf-8")
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "POST", "/api", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def _retry_delay(self, payload: Mapping[str, object], attempt: int,
                     hint: Optional[float]) -> float:
        """Backoff before retry ``attempt`` (1-based), honoring the hint."""
        seed = payload.get("seed", 0)
        key = seed if isinstance(seed, int) and not isinstance(seed, bool) else 0
        delay = self.retry_policy.backoff_for(key, attempt)
        if hint is not None:
            delay = max(delay, min(float(hint), self.max_retry_after))
        return delay

    def call(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """POST one request; returns ``result`` or raises :class:`ServerError`."""
        attempt = 0
        while True:
            try:
                answer = self.request(payload)
            except (ConnectionError, TimeoutError, OSError):
                # The transport died before a structured answer existed;
                # purity makes the replay safe, so treat it like a shed.
                if attempt >= self.retries:
                    raise
                time.sleep(self._retry_delay(payload, attempt + 1, None))
                attempt += 1
                self.retries_performed += 1
                continue
            if answer.get("ok"):
                return answer["result"]
            error = answer.get("error", {})
            server_error = ServerError(
                error.get("code", "internal"),
                error.get("message", "malformed error payload"),
                {k: v for k, v in error.items() if k not in ("code", "message")},
            )
            if not server_error.retryable or attempt >= self.retries:
                raise server_error
            time.sleep(
                self._retry_delay(payload, attempt + 1, server_error.retry_after)
            )
            attempt += 1
            self.retries_performed += 1

    # ------------------------------------------------------- request builders
    def sample(self, query: str, count: int, **options: object) -> Dict[str, object]:
        return self.call({"kind": "sample", "query": query, "count": count, **options})

    def aggregate(self, query: str, aggregate: str, **options: object) -> Dict[str, object]:
        return self.call({"kind": "aggregate", "query": query,
                          "aggregate": aggregate, **options})

    def mutate(self, relation: str, delete_positions: list) -> Dict[str, object]:
        return self.call({"kind": "mutate", "relation": relation,
                          "delete_positions": delete_positions})

    def health(self) -> Dict[str, object]:
        return self.call({"kind": "health"})

    def stats(self) -> Dict[str, object]:
        return self.call({"kind": "stats"})


__all__ = [
    "MAX_REQUEST_BYTES",
    "SamplingHTTPServer",
    "SamplingRequestHandler",
    "ServerClient",
    "ServerError",
    "start_server",
]
