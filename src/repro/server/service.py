"""The sampling service: warm state, epoch-consistent snapshots, multiplexing.

:class:`SamplingService` is the server's brain, independent of any
transport: it loads the workload's relations **once**, keeps the expensive
per-query structures warm, and answers ``sample``/``aggregate``/``mutate``/
``health``/``stats`` request dictionaries (see :mod:`repro.server.protocol`)
from any number of concurrent threads.  :mod:`repro.server.http` bolts an
HTTP front-end on top; tests call :meth:`SamplingService.handle` directly.

Warm state
----------

The seed-level costs of a request are the O(rows) structures: weight
functions, level plans, root and per-segment alias tables.  The service
keeps one **warm prototype** :class:`~repro.sampling.join_sampler.JoinSampler`
per ``(query, weights)`` and serves each request from an O(1) clone
(``split(1, seed=request_seed, share_plans=True)``) that borrows the
prototype's fully built structures read-only.  Clones draw from their own
request-seeded stream without consuming the prototype's, so a request's
answer is a pure function of ``(request, snapshot)`` — bit-identical whether
it runs alone or besides 16 others (the gate in
``benchmarks/bench_server.py``).

Epoch consistency
-----------------

Mutations (``mutate`` requests, or any writer sharing the process) bump
``Relation.version``.  A request must never blend snapshots: the warm path
snapshots every base-relation version before drawing, re-checks between
chunks and before projecting values, and on any bump **discards** the draw
wholesale and restarts against the new snapshot (bounded by
``max_epoch_restarts``, then ``epoch-restart-exhausted``).  Values are
projected only after the final check, so a shape-changing mutation can
never be read through stale row positions.  Pool-routed requests inherit
the same guarantee from the coordinator epoch guard in
:mod:`repro.parallel.pool`.

Deadlines map onto the PR 6 resilience contract: ``deadline`` without
``allow_partial`` fails with ``deadline-exceeded``; with ``allow_partial``
the completed part comes back marked ``degraded`` — unless *nothing* was
accepted, which is refused as ``empty-result``
(:class:`~repro.resilience.errors.EmptyResultError`) rather than dressed up
as an estimate.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.aqp import AggregateSpec, OnlineAggregator
from repro.aqp.online import planning_budget
from repro.aqp.planner import BACKEND_WEIGHTS
from repro.cache.store import SampleCache
from repro.joins.query import JoinQuery
from repro.parallel.pool import ParallelSamplerPool
from repro.parallel.shards import observed_versions
from repro.resilience import EmptyResultError, JobDeadlineExceeded
from repro.sampling.join_sampler import JoinSampler
from repro.server.admission import AdmissionController, AdmissionLimits
from repro.server.overload import (
    BREAKER_FAILURE_CODES,
    HEALTHY,
    BreakerRegistry,
    Clock,
    HealthMonitor,
    OverloadConfig,
    OverloadGate,
    Watchdog,
)
from repro.server.protocol import (
    RequestError,
    get_bool,
    get_float,
    get_int,
    get_str,
    ok_response,
)
from repro.tpch.workloads import UnionWorkload, build_workload
from repro.utils.rng import spawn_rngs

#: weights string of each warm-capable backend (inverse of BACKEND_WEIGHTS)
_WEIGHTS_TO_BACKEND = {w: b for b, w in BACKEND_WEIGHTS.items()}

_KINDS = ("sample", "aggregate", "mutate", "health", "stats")
#: error codes that mean "the request never ran" — they carry no latency
#: signal and must not poison the health monitor's EWMAs.
_UNEXECUTED_CODES = frozenset(
    {"admission-rejected", "overloaded", "circuit-open",
     "invalid-request", "unknown-query"}
)
_SHED_CODES = frozenset({"admission-rejected", "overloaded", "circuit-open"})
_AGGREGATES = ("count", "sum", "avg")
_METHODS = ("auto", "exact-weight", "olken", "wander-join", "online-union")


def jsonify(value):
    """Recursively convert numpy scalars/containers to JSON-native types."""
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    return value


class SamplingService:
    """Long-lived, thread-safe request broker over one loaded workload.

    Parameters
    ----------
    workload:
        A prebuilt :class:`~repro.tpch.workloads.UnionWorkload`; when absent
        one is built from ``workload_name``/``scale_factor``/
        ``overlap_scale``/``seed`` (paid once, at startup — never per
        request).
    workers:
        Worker budget of the shared :class:`ParallelSamplerPool` that
        multi-worker and union requests multiplex onto.
    limits / admission:
        Admission-control knobs (see :class:`AdmissionLimits`) or a
        prebuilt controller.
    warm_on_start:
        Build the ``"ew"`` warm prototype of every query at startup so the
        first request is as fast as the thousandth.  Lazy otherwise.
    sample_chunk:
        Draw granularity of the warm sample path; each chunk boundary is an
        epoch checkpoint and a deadline checkpoint, so smaller chunks react
        faster to mutations at slightly more bookkeeping.
    cache:
        Optional :class:`~repro.cache.store.SampleCache` shared by every
        warm aggregate request (see ``docs/cache.md``).  Off by default:
        a shared cache makes a response depend on which requests ran
        before it, so it is strictly opt-in — without it every response
        stays a pure function of ``(request, snapshot)``.  Individual
        requests opt out with ``"cache": false`` even on a caching server.
    overload:
        The overload-robustness layer (see :mod:`repro.server.overload` and
        ``docs/overload.md``): health state machine, priced-seconds
        backpressure/shedding, per-(query, weights) circuit breakers, and
        the stuck-request watchdog.  ``True`` (default) enables it with
        :class:`OverloadConfig` defaults, ``False`` disables it (PR 7
        behavior), or pass a config to tune the thresholds.
    clock:
        Monotonic clock the overload layer runs on; tests inject a manual
        clock to pin state transitions deterministically.
    """

    def __init__(
        self,
        workload: Optional[UnionWorkload] = None,
        *,
        workload_name: str = "UQ1",
        scale_factor: float = 0.001,
        overlap_scale: float = 0.3,
        seed: int = 2023,
        workers: Optional[int] = None,
        limits: Optional[AdmissionLimits] = None,
        admission: Optional[AdmissionController] = None,
        max_epoch_restarts: int = 3,
        warm_on_start: bool = True,
        sample_chunk: int = 1024,
        cache: Optional[SampleCache] = None,
        overload: Union[OverloadConfig, bool, None] = True,
        clock: Optional[Clock] = None,
    ) -> None:
        if sample_chunk < 1:
            raise ValueError(f"sample_chunk must be >= 1, got {sample_chunk}")
        self.workload = workload or build_workload(
            workload_name, scale_factor, overlap_scale, seed
        )
        # Threads, not processes: the whole point of the server is that every
        # request shares the already-loaded relations and warm structures.
        self.pool = ParallelSamplerPool(workers=workers, execution="thread")
        self.admission = admission or AdmissionController(limits)
        self.cache = cache
        self.max_epoch_restarts = int(max_epoch_restarts)
        self.sample_chunk = int(sample_chunk)
        # ---- overload layer (docs/overload.md): the injected clock makes
        # every health/breaker/watchdog transition unit-testable; `True`
        # enables the layer with defaults, `False`/`None` disables it (the
        # gate then hands out free no-op tickets so the handler shape —
        # admit in, release in a finally — is identical either way).
        self._clock: Clock = clock if clock is not None else time.monotonic
        if overload is True:
            overload_config: Optional[OverloadConfig] = OverloadConfig()
        elif not overload:
            overload_config = None
        else:
            overload_config = overload
        self.overload_config = overload_config
        base_config = overload_config or OverloadConfig()
        self._monitor = HealthMonitor(base_config, self._clock)
        self._overload = OverloadGate(overload_config, self._monitor, self._clock)
        self._breakers = BreakerRegistry(
            base_config, self._clock, enabled=overload_config is not None
        )
        self._watchdog = Watchdog(base_config, self._clock)
        self._prototypes: Dict[Tuple[str, str], JoinSampler] = {}
        self._proto_lock = threading.Lock()
        self._proto_builds: Dict[Tuple[str, str], threading.Lock] = {}
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests": 0,
            "ok": 0,
            "errors": 0,
            "samples_served": 0,
            "epoch_restarts": 0,
            "warm_requests": 0,
            "pool_requests": 0,
            "prototype_builds": 0,
            "cache_requests": 0,
            "cache_invalidations": 0,
            "shed_requests": 0,
            "transport_errors": 0,
        }
        self._closed = False
        #: test hook: called after every warm-path chunk, before its epoch
        #: check — deterministic mid-flight fault injection, same spirit as
        #: resilience.faults.FaultPlan.
        self._after_chunk: Optional[Callable[["SamplingService", JoinQuery], None]] = None
        if warm_on_start:
            for query in self.workload.queries:
                self._prototype(query, "ew")

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the shared pool; idempotent."""
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- warm state
    def _prototype(self, query: JoinQuery, weights: str) -> JoinSampler:
        """The warm, fully-built sampler of ``(query, weights)``.

        The prototype's own stream is never drawn from — request clones are
        seeded explicitly — so its RNG state carries no cross-request
        coupling.

        Builds are guarded per key: the global registry lock only maps a key
        to its build lock (O(1)), and the O(rows) warm build itself runs
        under the key's own lock.  Concurrent first requests for the *same*
        (query, weights) serialize — exactly one builds, the rest adopt it —
        while first requests for *different* keys build in parallel instead
        of queueing on one global lock.
        """
        key = (query.name, weights)
        with self._proto_lock:
            proto = self._prototypes.get(key)
            if proto is not None:
                return proto
            build_lock = self._proto_builds.setdefault(key, threading.Lock())
        with build_lock:
            with self._proto_lock:
                proto = self._prototypes.get(key)
            if proto is not None:
                return proto
            proto = JoinSampler(query, weights=weights, seed=0).warm()
            with self._stats_lock:
                self._counters["prototype_builds"] += 1
            with self._proto_lock:
                self._prototypes[key] = proto
            return proto

    @property
    def warm_prototypes(self) -> int:
        with self._proto_lock:
            return len(self._prototypes)

    # --------------------------------------------------------------- dispatch
    def handle(self, request: Mapping[str, object]) -> Dict[str, object]:
        """Answer one request dict; never raises — errors become payloads."""
        with self._stats_lock:
            self._counters["requests"] += 1
        started = self._clock()
        kind: Optional[str] = None
        try:
            if not isinstance(request, Mapping):
                raise RequestError("invalid-request", "request must be a JSON object")
            if self._closed:
                raise RequestError("internal", "server is shutting down")
            kind = get_str(request, "kind", required=True, choices=_KINDS)
            if kind == "health":
                result = self._handle_health()
            elif kind == "stats":
                result = self._handle_stats()
            elif kind == "mutate":
                result = self._handle_mutate(request)
            elif kind == "sample":
                # sample/aggregate admit themselves: the ticket (slot +
                # priced seconds) is reserved atomically once the request is
                # fully priced and released in the handler's own finally.
                result = self._handle_sample(request)
            else:
                result = self._handle_aggregate(request)
        except RequestError as error:
            return self._finish(self._error(error), kind, started)
        except JobDeadlineExceeded as error:
            return self._finish(
                self._error(RequestError("deadline-exceeded", str(error))),
                kind, started,
            )
        except EmptyResultError as error:
            return self._finish(
                self._error(RequestError("empty-result", str(error))),
                kind, started,
            )
        except ValueError as error:
            return self._finish(
                self._error(RequestError("invalid-request", str(error))),
                kind, started,
            )
        except RuntimeError as error:
            code = "epoch-restart-exhausted" if "mutation epoch" in str(error) else "internal"
            return self._finish(
                self._error(RequestError(code, str(error))), kind, started
            )
        except Exception as error:  # noqa: BLE001 - the server must not die
            return self._finish(
                self._error(
                    RequestError("internal", f"{type(error).__name__}: {error}")
                ),
                kind, started,
            )
        with self._stats_lock:
            self._counters["ok"] += 1
        return self._finish(ok_response(result), kind, started)

    def _finish(
        self,
        payload: Dict[str, object],
        kind: Optional[str],
        started: float,
    ) -> Dict[str, object]:
        """Feed the health monitor from the finished request's outcome.

        Only executed ``sample``/``aggregate`` work carries a latency
        signal; sheds and caller mistakes return in microseconds and would
        drag the p99/miss EWMAs toward rosy, so they only bump counters.
        """
        if kind not in ("sample", "aggregate"):
            return payload
        code: Optional[str] = None
        if not payload.get("ok"):
            error = payload.get("error")
            code = error.get("code") if isinstance(error, dict) else "internal"
        if code in _SHED_CODES:
            with self._stats_lock:
                self._counters["shed_requests"] += 1
        if code in _UNEXECUTED_CODES:
            return payload
        self._monitor.record(
            self._clock() - started,
            deadline_missed=code in ("deadline-exceeded", "empty-result"),
        )
        return payload

    def _error(self, error: RequestError) -> Dict[str, object]:
        with self._stats_lock:
            self._counters["errors"] += 1
        return error.to_payload()

    def _resolve_queries(self, name: str) -> Tuple[str, List[JoinQuery]]:
        if name == "union":
            return f"union of {len(self.workload)} joins", list(self.workload.queries)
        try:
            return name, [self.workload.query(name)]
        except KeyError:
            raise RequestError(
                "unknown-query",
                f"workload {self.workload.name!r} has no join {name!r}; "
                f"choose from {self.workload.query_names} or 'union'",
                queries=self.workload.query_names,
            ) from None

    # ----------------------------------------------------------------- sample
    def _handle_sample(self, request: Mapping[str, object]) -> Dict[str, object]:
        label, queries = self._resolve_queries(
            get_str(request, "query", required=True)
        )
        count = get_int(request, "count", required=True, minimum=1)
        seed = get_int(request, "seed", 0, minimum=0)
        weights = get_str(request, "weights", "ew", choices=tuple(_WEIGHTS_TO_BACKEND))
        workers = get_int(request, "workers", 1, minimum=1)
        deadline = get_float(request, "deadline", minimum=0.0)
        allow_partial = get_bool(request, "allow_partial", False)
        max_attempts = get_int(request, "max_attempts", 1_000_000, minimum=1)
        union = len(queries) > 1
        warm = not union and workers == 1
        # Price once, up front: the overload gate and the admission
        # controller both account the same deterministic cost-model seconds.
        priced = self.admission.price(queries, count, warm=warm)
        breaker_key = (label, weights)
        self._breakers.check(breaker_key)
        outcome = "neutral"
        try:
            gate_ticket = self._overload.admit(priced)
            try:
                ticket = self.admission.admit(
                    queries, count, warm=warm, priced=priced
                )
                try:
                    watch = self._watchdog.watch("sample", label, deadline)
                    try:
                        with self._stats_lock:
                            self._counters[
                                "warm_requests" if warm else "pool_requests"
                            ] += 1
                        if warm:
                            result = self._sample_warm(
                                queries[0], count, seed, weights, deadline,
                                allow_partial, max_attempts,
                            )
                        else:
                            result = self._sample_pooled(
                                queries, count, seed, weights, workers,
                                deadline, allow_partial, max_attempts, union,
                            )
                        outcome = "success"
                    finally:
                        watch.release()
                finally:
                    # The reservation must drain even when the draw fails
                    # mid-flight (deadline, epoch exhaustion, fault
                    # injection): leaking it here would wedge the inflight
                    # count until restart.
                    ticket.release()
            finally:
                gate_ticket.release()
        except RequestError as error:
            if error.code in BREAKER_FAILURE_CODES:
                outcome = "failure"
            raise
        except (JobDeadlineExceeded, EmptyResultError):
            outcome = "failure"
            raise
        except RuntimeError as error:
            if "mutation epoch" in str(error):  # epoch-restart-exhausted
                outcome = "failure"
            raise
        finally:
            # Pairs with the check() above: success closes a half-open
            # probe, deadline/epoch failures trip the breaker, sheds hand
            # the probe slot back untouched.
            self._breakers.record(breaker_key, outcome)
        result.update(
            kind="sample", query=label, seed=seed,
            priced_seconds=ticket.priced_seconds,
        )
        with self._stats_lock:
            self._counters["samples_served"] += len(result["values"])
        return result

    def _sample_warm(
        self,
        query: JoinQuery,
        count: int,
        seed: int,
        weights: str,
        deadline: Optional[float],
        allow_partial: bool,
        max_attempts: int,
    ) -> Dict[str, object]:
        """Serve from a warm prototype clone under the epoch protocol."""
        proto = self._prototype(query, weights)
        start = time.monotonic()
        restarts = 0
        while True:
            before = observed_versions((query,))
            # split() warms (refresh + build) the prototype; if a mutation
            # slipped in between the snapshot and the clone, the final check
            # below catches the mismatch and we restart — never blend.
            clone = proto.split(1, seed=seed, share_plans=True)[0]
            blocks = []
            drawn = 0
            degraded = False
            clean = True
            while drawn < count:
                if deadline is not None and time.monotonic() - start >= deadline:
                    if not allow_partial:
                        raise JobDeadlineExceeded(
                            f"sample request exceeded its {deadline:g}s deadline "
                            f"after {drawn} of {count} samples",
                            deadline=deadline,
                        )
                    degraded = True
                    break
                chunk = min(count - drawn, self.sample_chunk)
                block = clone.sample_block(chunk, max_attempts=max_attempts)
                if self._after_chunk is not None:
                    self._after_chunk(self, query)
                if observed_versions((query,)) != before:
                    clean = False
                    break
                blocks.append(block)
                drawn += len(block)
            if clean:
                break
            # A mutation epoch landed mid-draw: the chunks describe a mix of
            # snapshots.  Discard them all and redraw against the new epoch.
            restarts += 1
            with self._stats_lock:
                self._counters["epoch_restarts"] += 1
            if restarts > self.max_epoch_restarts:
                raise RequestError(
                    "epoch-restart-exhausted",
                    f"sample request restarted {restarts} times on mutation "
                    "epochs without completing; pause the update stream or "
                    "raise max_epoch_restarts",
                    restarts=restarts,
                )
        if degraded and drawn == 0:
            raise EmptyResultError(
                "sample deadline expired before any sample was drawn; "
                "no partial result exists — retry with a larger deadline",
                deadline=deadline,
            )
        # Values are projected only now, after the final epoch check: the
        # relations provably match the snapshot every block was drawn from,
        # so stale row positions can never be read through.
        values: List = []
        for block in blocks:
            values.extend(block.values(query))
        return {
            "count": count,
            "backend": _WEIGHTS_TO_BACKEND[weights],
            "weights": weights,
            "warm": True,
            "workers": 1,
            "attempts": int(sum(b.attempts for b in blocks)),
            "accepted": len(values),
            "epoch_restarts": restarts,
            "degraded": degraded,
            "values": jsonify(values),
            "sources": [query.name] * len(values),
        }

    def _sample_pooled(
        self,
        queries: Sequence[JoinQuery],
        count: int,
        seed: int,
        weights: str,
        workers: int,
        deadline: Optional[float],
        allow_partial: bool,
        max_attempts: int,
        union: bool,
    ) -> Dict[str, object]:
        """Route through the shared pool (union sampling / multi-worker)."""
        method = "auto" if union else _WEIGHTS_TO_BACKEND[weights]
        report = self.pool.sample(
            queries,
            count,
            seed=seed,
            method=method,
            max_attempts=max_attempts,
            job_timeout=deadline,
            allow_partial=allow_partial,
        )
        if report.degraded and count > 0 and not report.values:
            raise EmptyResultError(
                "sample deadline expired before any shard completed; "
                "no partial result exists — retry with a larger deadline",
                deadline=deadline,
                attempts=report.attempts,
            )
        return {
            "count": count,
            "backend": report.backend,
            "weights": weights,
            "warm": False,
            "workers": min(workers, report.workers),
            "attempts": report.attempts,
            "accepted": report.accepted,
            "epoch_restarts": report.epochs_restarted,
            "degraded": report.degraded,
            "values": jsonify(report.values),
            "sources": list(report.sources),
        }

    # -------------------------------------------------------------- aggregate
    def _handle_aggregate(self, request: Mapping[str, object]) -> Dict[str, object]:
        label, queries = self._resolve_queries(
            get_str(request, "query", required=True)
        )
        aggregate = get_str(request, "aggregate", required=True, choices=_AGGREGATES)
        attribute = get_str(request, "attribute")
        group_by = get_str(request, "group_by")
        method = get_str(request, "method", "auto", choices=_METHODS)
        rel_error = get_float(request, "rel_error", 0.05, minimum=0.0,
                              exclusive_minimum=True)
        confidence = get_float(request, "confidence", 0.95, minimum=0.0,
                               exclusive_minimum=True)
        ci_method = get_str(request, "ci", "clt", choices=("clt", "bootstrap"))
        workers = get_int(request, "workers", 1, minimum=1)
        seed = get_int(request, "seed", 0, minimum=0)
        deadline = get_float(request, "deadline", minimum=0.0)
        allow_partial = get_bool(request, "allow_partial", False)
        max_attempts = get_int(request, "max_attempts", 1_000_000, minimum=1)
        if aggregate in ("sum", "avg") and not attribute:
            raise RequestError(
                "invalid-request", "field 'attribute' is required for sum/avg"
            )
        union = len(queries) > 1
        if union and method not in ("auto", "online-union"):
            raise RequestError(
                "invalid-request",
                f"method {method!r} cannot sample a union; use auto or online-union",
            )
        if not union and method == "online-union":
            raise RequestError(
                "invalid-request",
                "method 'online-union' samples a union of joins; use query='union'",
            )
        # Aggregate requests are priced at the sample demand their error
        # target implies — the same budget the planner amortizes setup over.
        budget = planning_budget(rel_error, confidence)
        warm = not union and workers == 1 and method in BACKEND_WEIGHTS
        use_cache = get_bool(request, "cache", self.cache is not None)
        if use_cache and self.cache is None:
            raise RequestError(
                "invalid-request",
                "this server runs without a sample cache; start it with "
                "--cache to enable cached aggregates",
            )
        # The cache tier rides the warm path only: shared-weight prototype
        # backends over a single join.  Anything else runs uncached.
        cache = self.cache if (use_cache and warm) else None
        cached_available = 0
        if cache is not None:
            entry = cache.peek(queries[0], BACKEND_WEIGHTS[method])
            if entry is not None:
                cached_available = min(entry.samples, budget)
        priced = self.admission.price(
            queries, budget, warm=warm, cached_samples=cached_available
        )
        breaker_key = (label, BACKEND_WEIGHTS.get(method, method))
        self._breakers.check(breaker_key)
        outcome = "neutral"
        try:
            gate_ticket = self._overload.admit(priced)
            try:
                ticket = self.admission.admit(
                    queries, budget, warm=warm,
                    cached_samples=cached_available, priced=priced,
                )
                try:
                    watch = self._watchdog.watch("aggregate", label, deadline)
                    try:
                        with self._stats_lock:
                            self._counters[
                                "warm_requests" if warm else "pool_requests"
                            ] += 1
                            if cache is not None:
                                self._counters["cache_requests"] += 1

                        spec = AggregateSpec(
                            aggregate, attribute=attribute, group_by=group_by
                        )
                        if warm:
                            # Two independent streams: one seeds the prototype
                            # clone, one the aggregator's own draws —
                            # deterministic per request, and the prototype's
                            # stream is untouched either way.
                            clone_rng, agg_rng = spawn_rngs(seed, 2)
                            clone = self._prototype(
                                queries[0], BACKEND_WEIGHTS[method]
                            ).split(1, seed=clone_rng, share_plans=True)[0]
                            aggregator = OnlineAggregator(
                                queries,
                                spec,
                                method=method,
                                seed=agg_rng,
                                confidence=confidence,
                                ci_method=ci_method,
                                target_samples=budget,
                                join_sampler=clone,
                                cache=cache,
                            )
                        else:
                            aggregator = OnlineAggregator(
                                queries,
                                spec,
                                method=method,
                                seed=seed,
                                confidence=confidence,
                                ci_method=ci_method,
                                parallelism=workers,
                                target_samples=budget,
                            )
                        report = aggregator.until(
                            rel_error,
                            max_attempts=max_attempts,
                            deadline=deadline,
                            allow_partial=allow_partial,
                        )
                        outcome = "success"
                    finally:
                        watch.release()
                finally:
                    ticket.release()
            finally:
                gate_ticket.release()
        except RequestError as error:
            if error.code in BREAKER_FAILURE_CODES:
                outcome = "failure"
            raise
        except (JobDeadlineExceeded, EmptyResultError):
            outcome = "failure"
            raise
        except RuntimeError as error:
            if "mutation epoch" in str(error):  # epoch-restart-exhausted
                outcome = "failure"
            raise
        finally:
            self._breakers.record(breaker_key, outcome)
        result = {
            "kind": "aggregate",
            "query": label,
            "aggregate": spec.describe(),
            "method": method,
            "backend": aggregator.backend,
            "weights": aggregator.plan.weights,
            "warm": warm,
            "workers": workers,
            "seed": seed,
            "rel_error": rel_error,
            "epochs_restarted": aggregator.epochs_restarted,
            "priced_seconds": ticket.priced_seconds,
            "report": jsonify(report.to_dict()),
        }
        if cache is not None:
            result["cache"] = {
                "cached_samples": aggregator.cached_samples,
                "fresh_samples": aggregator.fresh_samples,
            }
        return result

    # ----------------------------------------------------------------- mutate
    def _handle_mutate(self, request: Mapping[str, object]) -> Dict[str, object]:
        name = get_str(request, "relation", required=True)
        raw = request.get("delete_positions")
        if (
            not isinstance(raw, list)
            or not raw
            or not all(isinstance(p, int) and not isinstance(p, bool) and p >= 0
                       for p in raw)
        ):
            raise RequestError(
                "invalid-request",
                "field 'delete_positions' must be a non-empty list of "
                "non-negative integers",
            )
        positions = sorted(set(raw))
        # The same relation name may back several joins as distinct filtered
        # objects (UQ1's regional partitions); mutate every instance so the
        # workload stays union-consistent.
        instances: Dict[int, object] = {}
        for query in self.workload.queries:
            relation = query.relations.get(name)
            if relation is not None:
                instances[id(relation)] = relation
        if not instances:
            raise RequestError(
                "unknown-query",
                f"workload {self.workload.name!r} has no relation {name!r}",
            )
        deleted = 0
        versions: List[int] = []
        for relation in instances.values():
            if positions[-1] >= len(relation):
                raise RequestError(
                    "invalid-request",
                    f"delete position {positions[-1]} out of range for "
                    f"relation {name!r} with {len(relation)} rows",
                )
            deleted += relation.delete_rows(positions)
            versions.append(relation.version)
        if self.cache is not None:
            # Eager, incremental invalidation: only streams whose join
            # touches the mutated relation drop; the epoch pin would catch
            # them lazily anyway, this just frees the bytes now.
            dropped = self.cache.drop_relation(name)
            with self._stats_lock:
                self._counters["cache_invalidations"] += dropped
        return {
            "kind": "mutate",
            "relation": name,
            "instances": len(instances),
            "rows_deleted": deleted,
            "versions": versions,
        }

    # ----------------------------------------------------------- health/stats
    def note_transport_error(self) -> None:
        """Count one transport-level failure (reset/timeout on a client)."""
        with self._stats_lock:
            self._counters["transport_errors"] += 1

    def _handle_health(self) -> Dict[str, object]:
        # Health is the one endpoint that must answer even while everything
        # else is being shed: it never enters the gate or admission, and it
        # reads only lock-protected snapshots.
        state = self._overload.state()
        stuck = self._watchdog.scan()
        status = "ok" if state == HEALTHY else state
        if stuck and status == "ok":
            status = "degraded"
        return {
            "kind": "health",
            "status": status,
            "state": state,
            "workload": self.workload.name,
            "queries": self.workload.query_names,
            "warm_prototypes": self.warm_prototypes,
            "inflight": self.admission.inflight,
            "stuck_requests": len(stuck),
        }

    def _handle_stats(self) -> Dict[str, object]:
        with self._stats_lock:
            counters = dict(self._counters)
        pool_stats = {
            key: value
            for key, value in vars(self.pool.stats).items()
            if isinstance(value, (int, float))
        }
        return {
            "kind": "stats",
            "workload": self.workload.name,
            "counters": counters,
            "admission": {
                "admitted": self.admission.admitted,
                "rejected": self.admission.rejected,
                "inflight": self.admission.inflight,
                "inflight_seconds": self.admission.inflight_seconds,
                "max_request_seconds": self.admission.limits.max_request_seconds,
                "max_samples": self.admission.limits.max_samples,
                "max_inflight": self.admission.limits.max_inflight,
            },
            "cache": (
                {"enabled": True, **self.cache.stats_dict()}
                if self.cache is not None
                else {"enabled": False}
            ),
            "overload": self._overload.snapshot(),
            "breakers": self._breakers.snapshot(),
            "watchdog": self._watchdog.snapshot(),
            "pool": {
                "workers": self.pool.workers,
                "epochs_restarted": self.pool.epochs_restarted,
                **pool_stats,
            },
        }


__all__ = ["SamplingService", "jsonify"]
