"""Sampling-as-a-service: a long-lived concurrent query server.

Load the relations once, keep the per-query sampling structures warm, and
serve concurrent ``sample``/``aggregate`` jobs over JSON-over-HTTP — each
answer epoch-consistent, admission-controlled, and bit-identical to the
same request served sequentially.  See ``docs/server.md``.
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionLimits,
    AdmissionTicket,
)
from repro.server.http import (
    SamplingHTTPServer,
    ServerClient,
    ServerError,
    start_server,
)
from repro.server.protocol import ERROR_CODES, RequestError
from repro.server.service import SamplingService

__all__ = [
    "ERROR_CODES",
    "AdmissionController",
    "AdmissionLimits",
    "AdmissionTicket",
    "RequestError",
    "SamplingHTTPServer",
    "SamplingService",
    "ServerClient",
    "ServerError",
    "start_server",
]
