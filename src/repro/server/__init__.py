"""Sampling-as-a-service: a long-lived concurrent query server.

Load the relations once, keep the per-query sampling structures warm, and
serve concurrent ``sample``/``aggregate`` jobs over JSON-over-HTTP — each
answer epoch-consistent, admission-controlled, and bit-identical to the
same request served sequentially.  The overload layer
(:mod:`repro.server.overload`) adds graceful degradation on top: a health
state machine, priced-seconds backpressure with load shedding, per-query
circuit breakers, and a stuck-request watchdog.  See ``docs/server.md``
and ``docs/overload.md``.
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionLimits,
    AdmissionTicket,
)
from repro.server.chaos import ChaosClient
from repro.server.http import (
    SamplingHTTPServer,
    ServerClient,
    ServerError,
    start_server,
)
from repro.server.overload import (
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    OVERLOADED,
    BreakerRegistry,
    HealthMonitor,
    OverloadConfig,
    OverloadGate,
    Watchdog,
    retry_after_hint,
)
from repro.server.protocol import ERROR_CODES, RETRYABLE_CODES, RequestError
from repro.server.service import SamplingService

__all__ = [
    "DEGRADED",
    "ERROR_CODES",
    "HEALTHY",
    "HEALTH_STATES",
    "OVERLOADED",
    "RETRYABLE_CODES",
    "AdmissionController",
    "AdmissionLimits",
    "AdmissionTicket",
    "BreakerRegistry",
    "ChaosClient",
    "HealthMonitor",
    "OverloadConfig",
    "OverloadGate",
    "RequestError",
    "SamplingHTTPServer",
    "SamplingService",
    "ServerClient",
    "ServerError",
    "Watchdog",
    "retry_after_hint",
    "start_server",
]
