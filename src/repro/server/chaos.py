"""Transport-level chaos: deterministic misbehaving HTTP clients.

The PR 6 fault harness injects failures *inside* workers; production
failures just as often arrive at the socket — clients that reset
connections mid-response, drip-feed bytes, claim absurd Content-Lengths, or
flood the server with garbage.  :class:`ChaosClient` performs exactly those
four misbehaviors (:data:`~repro.resilience.faults.HTTP_FAULT_KINDS`)
against a live :class:`~repro.server.http.SamplingHTTPServer`, scheduled by
the same :class:`~repro.resilience.faults.FaultPlan` machinery — the strike
for request index ``i`` is ``plan.action_for(i, attempt)``, a pure function
of ``(plan.seed, i, attempt)``, so a transport chaos run replays bit for
bit.

The server is expected to *survive* every strike with bounded resources:

``"garbage"`` / ``"oversize"``
    Answered with a structured 400 (malformed JSON / refused-unread body)
    and, for oversize, a dropped connection.
``"reset"``
    The client vanishes mid-response with an RST; the handler's write
    fails, :meth:`SamplingHTTPServer.handle_error` counts it quietly
    (``transport_errors`` in ``/stats``) and the thread exits.
``"slow-write"``
    The client drip-feeds the body slower than the per-connection socket
    timeout; the server drops the connection instead of letting the
    handler thread be pinned (the slow-loris defense).

Every strike helper swallows the connection errors the *server's* defense
is supposed to cause — a reset socket mid-strike is the expected outcome,
not a harness failure — and returns a small outcome dict for the caller's
accounting.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from typing import Dict, Optional

from repro.resilience.faults import FaultAction, FaultPlan, HTTP_FAULT_KINDS
from repro.server.http import MAX_REQUEST_BYTES


def _recv_all(sock: socket.socket, limit: int = 65536) -> bytes:
    """Read until the peer closes, errors, or ``limit`` bytes arrive."""
    chunks = []
    total = 0
    try:
        while total < limit:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
    except OSError:
        pass
    return b"".join(chunks)


def _status_of(raw: bytes) -> Optional[int]:
    """HTTP status code of a raw response, or None if unparseable."""
    try:
        head = raw.split(b"\r\n", 1)[0].decode("latin-1")
        return int(head.split()[1])
    except (IndexError, ValueError, UnicodeDecodeError):
        return None


class ChaosClient:
    """Drive one server with deterministic transport-level misbehavior."""

    def __init__(
        self,
        host: str,
        port: int,
        plan: FaultPlan,
        *,
        timeout: float = 5.0,
        slow_write_seconds: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.plan = plan
        self.timeout = timeout
        self.slow_write_seconds = slow_write_seconds
        self.strikes: Dict[str, int] = {kind: 0 for kind in HTTP_FAULT_KINDS}

    # ------------------------------------------------------------- scheduling
    def action_for(self, index: int, attempt: int = 0) -> Optional[FaultAction]:
        """The transport strike scheduled for request ``index``, if any."""
        action = self.plan.action_for(index, attempt)
        if action is None or action.kind not in HTTP_FAULT_KINDS:
            return None
        return action

    def strike(self, index: int, attempt: int = 0) -> Optional[Dict[str, object]]:
        """Perform the scheduled strike for ``index``; None when none is due."""
        action = self.action_for(index, attempt)
        if action is None:
            return None
        outcome = getattr(self, "_" + action.kind.replace("-", "_"))()
        self.strikes[action.kind] += 1
        outcome["kind"] = action.kind
        outcome["index"] = index
        return outcome

    # ---------------------------------------------------------------- strikes
    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _garbage(self) -> Dict[str, object]:
        """POST a malformed-JSON body; the server must answer 400."""
        body = b'{"kind": "sample", not json at all &&&'
        request = (
            b"POST /api HTTP/1.1\r\n"
            b"Host: chaos\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n" + body
        )
        sock = self._connect()
        try:
            sock.sendall(request)
            return {"status": _status_of(_recv_all(sock))}
        except OSError:
            return {"status": None}
        finally:
            sock.close()

    def _oversize(self) -> Dict[str, object]:
        """Claim a body larger than MAX_REQUEST_BYTES; expect a 400, unread."""
        request = (
            b"POST /api HTTP/1.1\r\n"
            b"Host: chaos\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(MAX_REQUEST_BYTES + 1).encode() + b"\r\n"
            b"\r\n"
        )
        sock = self._connect()
        try:
            sock.sendall(request)
            # The server must reply *without* waiting for the body it would
            # never be willing to read, then drop the connection.
            return {"status": _status_of(_recv_all(sock))}
        except OSError:
            return {"status": None}
        finally:
            sock.close()

    def _reset(self) -> Dict[str, object]:
        """Send a valid request, then vanish mid-response with an RST."""
        body = json.dumps({"kind": "stats"}).encode()
        request = (
            b"POST /api HTTP/1.1\r\n"
            b"Host: chaos\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        sock = self._connect()
        got = b""
        try:
            sock.sendall(request)
            got = sock.recv(64)  # let the response start flowing
        except OSError:
            pass
        try:
            # SO_LINGER(on, 0): close() sends RST instead of FIN, aborting
            # whatever the handler is still writing.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        sock.close()
        return {"got_bytes": len(got)}

    def _slow_write(self) -> Dict[str, object]:
        """Stall mid-body longer than the server's connection timeout.

        The defense is a *per-read* socket timeout, so the strike that
        tests it is a gap between reads: headers plus half the promised
        body, then ``slow_write_seconds`` of silence, then an attempt to
        finish.  A correctly defended server has dropped the connection
        during the stall, observed here as a send failure, an error, or an
        empty (EOF) read instead of an HTTP response.
        """
        body = b'{"kind": "health"}                      '
        headers = (
            b"POST /api HTTP/1.1\r\n"
            b"Host: chaos\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n"
        )
        half = len(body) // 2
        sock = self._connect()
        cut = False
        try:
            sock.sendall(headers + body[:half])
            time.sleep(self.slow_write_seconds)
            sock.sendall(body[half:])
            # If the server dropped us mid-stall, the late bytes vanish
            # into a closed peer: the read sees EOF (or a reset), never a
            # well-formed response.
            cut = _status_of(_recv_all(sock)) is None
        except OSError:
            cut = True
        finally:
            sock.close()
        return {"stalled_seconds": self.slow_write_seconds,
                "connection_cut": cut}


__all__ = ["ChaosClient"]
