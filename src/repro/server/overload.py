"""Overload robustness: health states, backpressure, breakers, watchdog.

PR 7's server admits work until its inflight slots run out and then
hard-rejects; it has no notion of *being in trouble*.  This module gives it
one, as four cooperating pieces — each driven by an **injected clock**
(``clock: Callable[[], float]``, defaulting to ``time.monotonic`` at the
service level) so every state transition is unit-testable without sleeping:

:class:`HealthMonitor`
    A three-state machine — ``healthy`` → ``degraded`` → ``overloaded`` —
    driven by three signals: the fraction of priced-seconds capacity
    currently reserved, an EWMA of the deadline-miss rate, and a peak-decay
    p99-latency tracker.  Severity escalates immediately; recovery requires
    the signals to clear *and* a hysteresis dwell, so the state cannot
    flap request to request.

:class:`OverloadGate`
    Priced-seconds backpressure in front of admission.  Reserved work is
    bounded by ``capacity_seconds``; requests that arrive while capacity is
    full wait briefly in a **bounded priced-seconds backlog**
    (``backlog_seconds``) for headroom, and are shed with a structured
    429/503 carrying a computed ``Retry-After`` once the backlog is full,
    the wait budget expires, or the health state forbids them.  Because a
    request's cost counts against both bounds, the policy sheds the most
    expensive admissible requests first: as pressure mounts, the priced
    ceiling a request must fit under shrinks (``degraded`` halves the
    remaining headroom; ``overloaded`` sheds everything with a nonzero
    price) while cheap requests — and the unpriced ``/health`` probe, which
    never enters the gate — keep flowing.

:class:`BreakerRegistry`
    One circuit breaker per ``(query, weights)``.  ``breaker_threshold``
    consecutive deadline/epoch failures open it; while open, requests for
    that key are rejected up front (``circuit-open``, ``Retry-After`` = the
    remaining open window) instead of burning capacity on work that keeps
    timing out.  After ``breaker_open_seconds`` the breaker lets **one**
    half-open probe through: success closes it, failure re-opens it with a
    doubled (capped) window.

:class:`Watchdog`
    Stuck-request detection.  Every executing request is tracked with its
    start time and deadline budget; :meth:`Watchdog.scan` reports requests
    that outlived their budget plus ``watchdog_grace_seconds`` — the
    in-process complement of the transport-level socket timeouts in
    :mod:`repro.server.http` (a handler thread cannot be killed in Python,
    but it can always be *seen*).

Shedding decisions are per-request and deterministic given the gate state;
``Retry-After`` hints come from :func:`retry_after_hint`, a pure function
of the pending priced seconds and the configured drain rate.  See
``docs/overload.md`` for the full policy.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.server.protocol import RequestError

#: An injected monotonic clock; the service passes ``time.monotonic``,
#: deterministic tests pass a manually-advanced counter.
Clock = Callable[[], float]

HEALTHY = "healthy"
DEGRADED = "degraded"
OVERLOADED = "overloaded"
#: severity order of the health states (index = rank)
HEALTH_STATES = (HEALTHY, DEGRADED, OVERLOADED)

#: error codes that count as a breaker failure: the request ran and died on
#: its deadline/epoch budget (sheds and caller mistakes are neutral).
BREAKER_FAILURE_CODES = frozenset(
    {"deadline-exceeded", "empty-result", "epoch-restart-exhausted"}
)


def retry_after_hint(pending_seconds: float, drain_rate: float) -> int:
    """Whole seconds until ``pending_seconds`` of priced work should drain.

    Pure function of its arguments (no clock, no state): the server retires
    roughly ``drain_rate`` priced seconds per wall second, so the earliest
    useful retry is the drain time of everything already reserved or
    queued, never less than 1s (a sub-second hint is noise to a client).
    """
    if drain_rate <= 0.0 or pending_seconds <= 0.0:
        return 1
    return max(1, int(math.ceil(pending_seconds / drain_rate)))


@dataclass(frozen=True)
class OverloadConfig:
    """Every knob of the overload layer, with serving-friendly defaults.

    ``capacity_seconds`` / ``backlog_seconds`` bound the priced seconds the
    server will run / queue at once; ``drain_rate`` (priced seconds retired
    per wall second) converts pending work into ``Retry-After`` hints.
    ``max_queue_wait`` is the longest a request may wait in the backlog for
    capacity before being shed — brief on purpose: queueing smooths bursts,
    it must not become an unbounded hidden queue.
    """

    capacity_seconds: float = 60.0
    backlog_seconds: float = 30.0
    max_queue_wait: float = 0.25
    drain_rate: float = 1.0
    # ---- health thresholds -------------------------------------------------
    degraded_utilisation: float = 0.5
    overloaded_utilisation: float = 0.9
    degraded_miss_rate: float = 0.1
    overloaded_miss_rate: float = 0.5
    p99_budget_seconds: float = 2.0
    ewma_alpha: float = 0.2
    recovery_dwell_seconds: float = 1.0
    # ---- degraded-state shedding -------------------------------------------
    shed_ceiling_fraction: float = 0.5
    # ---- circuit breakers ---------------------------------------------------
    breaker_threshold: int = 3
    breaker_open_seconds: float = 5.0
    breaker_max_open_seconds: float = 60.0
    # ---- watchdog ------------------------------------------------------------
    watchdog_grace_seconds: float = 2.0
    watchdog_default_budget: float = 30.0

    def __post_init__(self) -> None:
        if self.capacity_seconds <= 0.0:
            raise ValueError("capacity_seconds must be positive")
        if self.backlog_seconds < 0.0 or self.max_queue_wait < 0.0:
            raise ValueError("backlog_seconds/max_queue_wait must be non-negative")
        if not 0.0 < self.degraded_utilisation <= self.overloaded_utilisation:
            raise ValueError(
                "need 0 < degraded_utilisation <= overloaded_utilisation"
            )
        if not 0.0 < self.degraded_miss_rate <= self.overloaded_miss_rate <= 1.0:
            raise ValueError(
                "need 0 < degraded_miss_rate <= overloaded_miss_rate <= 1"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.shed_ceiling_fraction <= 1.0:
            raise ValueError("shed_ceiling_fraction must be in (0, 1]")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if not 0.0 < self.breaker_open_seconds <= self.breaker_max_open_seconds:
            raise ValueError(
                "need 0 < breaker_open_seconds <= breaker_max_open_seconds"
            )
        if self.watchdog_grace_seconds < 0.0 or self.watchdog_default_budget <= 0.0:
            raise ValueError("watchdog grace/budget must be sane")


# ----------------------------------------------------------------- health
class HealthMonitor:
    """The HEALTHY → DEGRADED → OVERLOADED state machine.

    ``record()`` feeds it per-request observations (latency, deadline
    missed); ``assess()`` folds in the current capacity utilisation and
    returns the state.  The p99 tracker is a peak-decay envelope — each
    observation decays the previous estimate by ``1 - ewma_alpha`` and
    takes the max with the new latency — which converges to the plateau
    under steady load, jumps instantly on a spike, and forgets it
    geometrically; the miss rate is a plain EWMA of the miss indicator.
    Escalation is immediate; de-escalation additionally waits
    ``recovery_dwell_seconds`` after the last state change (hysteresis).
    """

    def __init__(self, config: OverloadConfig, clock: Clock) -> None:
        self._config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._p99 = 0.0
        self._miss_rate = 0.0
        self._state = HEALTHY
        self._state_since = clock()
        self._observations = 0

    def record(self, latency: float, deadline_missed: bool) -> None:
        """Fold one served request into the latency/miss-rate signals."""
        alpha = self._config.ewma_alpha
        with self._lock:
            self._p99 = max(float(latency), self._p99 * (1.0 - alpha))
            self._miss_rate += alpha * ((1.0 if deadline_missed else 0.0)
                                        - self._miss_rate)
            self._observations += 1

    def _target(self, utilisation: float) -> str:
        c = self._config
        if (
            utilisation >= c.overloaded_utilisation
            or self._miss_rate >= c.overloaded_miss_rate
            or self._p99 >= 2.0 * c.p99_budget_seconds
        ):
            return OVERLOADED
        if (
            utilisation >= c.degraded_utilisation
            or self._miss_rate >= c.degraded_miss_rate
            or self._p99 >= c.p99_budget_seconds
        ):
            return DEGRADED
        return HEALTHY

    def assess(self, utilisation: float) -> str:
        """Current health state given ``reserved+queued / capacity``."""
        with self._lock:
            target = self._target(utilisation)
            now = self._clock()
            current_rank = HEALTH_STATES.index(self._state)
            target_rank = HEALTH_STATES.index(target)
            if target_rank > current_rank:
                self._state = target
                self._state_since = now
            elif target_rank < current_rank and (
                now - self._state_since >= self._config.recovery_dwell_seconds
            ):
                self._state = target
                self._state_since = now
            return self._state

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "p99_ewma_seconds": self._p99,
                "deadline_miss_rate": self._miss_rate,
                "observations": self._observations,
            }


# ------------------------------------------------------------------- gate
class GateTicket:
    """One admitted request's priced-seconds reservation in the gate.

    ``release()`` is idempotent, mirroring :class:`AdmissionTicket` — the
    service releases it in a ``finally`` so no exit path leaks capacity.
    """

    __slots__ = ("priced_seconds", "_gate", "_released")

    def __init__(self, gate: Optional["OverloadGate"], priced_seconds: float) -> None:
        self.priced_seconds = priced_seconds
        self._gate = gate
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        if self._gate is not None:
            self._gate._release(self)


class OverloadGate:
    """Backpressure and load shedding over priced seconds.

    A disabled gate (``config=None``) admits everything through a no-op
    ticket, so call sites keep the exact acquire/``finally``-release shape
    the lint resource rules check either way.
    """

    def __init__(
        self,
        config: Optional[OverloadConfig],
        monitor: HealthMonitor,
        clock: Clock,
    ) -> None:
        self.enabled = config is not None
        self._config = config or OverloadConfig()
        self._monitor = monitor
        self._clock = clock
        self._cond = threading.Condition()
        self._reserved = 0.0
        self._queued = 0.0
        self.admitted = 0
        self.sheds = 0

    # The monitor folds live pressure in: utilisation is everything reserved
    # or waiting over capacity.  Callers hold _cond; the monitor has its own
    # leaf lock and never calls back into the gate.
    def _assess_locked(self) -> str:
        utilisation = (self._reserved + self._queued) / self._config.capacity_seconds
        return self._monitor.assess(utilisation)

    def state(self) -> str:
        """Current health state (also re-assessed by every admit)."""
        if not self.enabled:
            return HEALTHY
        with self._cond:
            return self._assess_locked()

    def admit(self, priced_seconds: float) -> GateTicket:
        """Reserve ``priced_seconds`` of capacity or shed with Retry-After.

        Sheds raise :class:`RequestError` — ``overloaded`` (503) when the
        health state forbids priced work entirely, ``admission-rejected``
        (429) when this particular request does not fit — always with a
        ``retry_after`` detail.  Admitted requests get a ticket that MUST
        be released in a ``finally``.
        """
        if not self.enabled:
            return GateTicket(None, 0.0)
        priced = max(float(priced_seconds), 0.0)
        c = self._config
        with self._cond:
            state = self._assess_locked()
            pending = self._reserved + self._queued
            hint = retry_after_hint(pending + priced, c.drain_rate)
            if state == OVERLOADED and priced > 0.0:
                self.sheds += 1
                raise RequestError(
                    "overloaded",
                    "server is overloaded and shedding all priced work; "
                    f"retry after ~{hint}s",
                    state=state,
                    retry_after=hint,
                )
            if state == DEGRADED:
                headroom = max(c.capacity_seconds - pending, 0.0)
                ceiling = c.shed_ceiling_fraction * headroom
                if priced > ceiling:
                    self.sheds += 1
                    raise RequestError(
                        "admission-rejected",
                        f"server is degraded: request priced at {priced:.3f}s "
                        f"exceeds the shrunken {ceiling:.3f}s ceiling; "
                        "cheaper requests are still admitted",
                        limit="overload-shed",
                        state=state,
                        priced_seconds=priced,
                        retry_after=hint,
                    )
            if self._queued + priced > c.backlog_seconds:
                self.sheds += 1
                raise RequestError(
                    "admission-rejected",
                    f"backlog is full ({self._queued:.3f}s of "
                    f"{c.backlog_seconds:g}s priced seconds queued); "
                    f"retry after ~{hint}s",
                    limit="backlog",
                    state=state,
                    retry_after=hint,
                )
            # Backpressure: wait (bounded) in the backlog for capacity.
            self._queued += priced
            try:
                wait_until = self._clock() + c.max_queue_wait
                while self._reserved + priced > c.capacity_seconds:
                    remaining = wait_until - self._clock()
                    if remaining <= 0.0:
                        self.sheds += 1
                        raise RequestError(
                            "admission-rejected",
                            f"no capacity freed within the {c.max_queue_wait:g}s "
                            "queue-wait budget",
                            limit="capacity",
                            state=state,
                            retry_after=retry_after_hint(
                                self._reserved + self._queued, c.drain_rate
                            ),
                        )
                    self._cond.wait(remaining)
                self._reserved += priced
                self.admitted += 1
            finally:
                self._queued -= priced
        return GateTicket(self, priced)

    def _release(self, ticket: GateTicket) -> None:
        with self._cond:
            self._reserved = max(self._reserved - ticket.priced_seconds, 0.0)
            if self._reserved < 1e-9 and self._queued == 0.0:
                # Snap float drift exactly like the admission controller: an
                # idle gate reports exactly 0.0 reserved seconds.
                self._reserved = 0.0
            self._cond.notify_all()

    def snapshot(self) -> Dict[str, object]:
        if not self.enabled:
            return {"enabled": False, "state": HEALTHY}
        with self._cond:
            state = self._assess_locked()
            reserved, queued = self._reserved, self._queued
            admitted, sheds = self.admitted, self.sheds
        return {
            "enabled": True,
            "state": state,
            "reserved_seconds": reserved,
            "queued_seconds": queued,
            "capacity_seconds": self._config.capacity_seconds,
            "backlog_seconds": self._config.backlog_seconds,
            "admitted": admitted,
            "sheds": sheds,
            **self._monitor.snapshot(),
        }


# --------------------------------------------------------------- breakers
class _Breaker:
    """Per-key breaker record; only ever touched under the registry lock."""

    __slots__ = ("state", "failures", "opened_at", "open_seconds", "probes")

    def __init__(self, open_seconds: float) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.open_seconds = open_seconds
        self.probes = 0


class BreakerRegistry:
    """Per-(query, weights) circuit breakers over the injected clock.

    Protocol: the service calls :meth:`check` *before* running a request
    (raises ``circuit-open`` while the key's breaker is open) and
    :meth:`record` in a ``finally`` with the outcome — ``"success"``,
    ``"failure"`` (a :data:`BREAKER_FAILURE_CODES` error), or
    ``"neutral"`` (sheds, caller mistakes) — so a half-open probe slot is
    always returned no matter how the probe ends.
    """

    def __init__(self, config: OverloadConfig, clock: Clock,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self._config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[Tuple[str, str], _Breaker] = {}
        self.rejections = 0

    def check(self, key: Tuple[str, str]) -> None:
        """Raise ``circuit-open`` if ``key``'s breaker refuses requests."""
        if not self.enabled:
            return
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None or breaker.state == "closed":
                return
            now = self._clock()
            if breaker.state == "open":
                remaining = breaker.opened_at + breaker.open_seconds - now
                if remaining > 0.0:
                    self.rejections += 1
                    raise RequestError(
                        "circuit-open",
                        f"circuit for {key[0]!r}/{key[1]} is open after "
                        f"{breaker.failures} consecutive failures; "
                        f"probes resume in {remaining:.1f}s",
                        query=key[0],
                        weights=key[1],
                        retry_after=max(1, int(math.ceil(remaining))),
                    )
                breaker.state = "half-open"
                breaker.probes = 0
            # half-open: exactly one probe may be in flight at a time.
            if breaker.probes >= 1:
                self.rejections += 1
                raise RequestError(
                    "circuit-open",
                    f"circuit for {key[0]!r}/{key[1]} is half-open with a "
                    "probe already in flight",
                    query=key[0],
                    weights=key[1],
                    retry_after=max(1, int(math.ceil(breaker.open_seconds))),
                )
            breaker.probes += 1

    def record(self, key: Tuple[str, str], outcome: str) -> None:
        """Fold one finished request (that passed ``check``) back in."""
        if not self.enabled:
            return
        if outcome not in ("success", "failure", "neutral"):
            raise ValueError(f"unknown breaker outcome {outcome!r}")
        c = self._config
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                if outcome != "failure":
                    return
                breaker = _Breaker(c.breaker_open_seconds)
                self._breakers[key] = breaker
            if breaker.state == "half-open":
                breaker.probes = max(breaker.probes - 1, 0)
                if outcome == "success":
                    breaker.state = "closed"
                    breaker.failures = 0
                    breaker.open_seconds = c.breaker_open_seconds
                elif outcome == "failure":
                    # The probe failed: back to open, with a doubled window.
                    breaker.state = "open"
                    breaker.opened_at = self._clock()
                    breaker.open_seconds = min(
                        breaker.open_seconds * 2.0, c.breaker_max_open_seconds
                    )
                    breaker.failures += 1
                return
            if breaker.state == "open":
                # Stale record from before the breaker opened; ignore.
                return
            if outcome == "success":
                breaker.failures = 0
            elif outcome == "failure":
                breaker.failures += 1
                if breaker.failures >= c.breaker_threshold:
                    breaker.state = "open"
                    breaker.opened_at = self._clock()

    def state_of(self, key: Tuple[str, str]) -> str:
        with self._lock:
            breaker = self._breakers.get(key)
            return "closed" if breaker is None else breaker.state

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            states = [b.state for b in self._breakers.values()]
            rejections = self.rejections
        return {
            "enabled": self.enabled,
            "keys": len(states),
            "open": states.count("open"),
            "half_open": states.count("half-open"),
            "rejections": rejections,
        }


# --------------------------------------------------------------- watchdog
class WatchTicket:
    """One executing request under watchdog observation."""

    __slots__ = ("ticket_id", "kind", "label", "started", "budget",
                 "_watchdog", "_released")

    def __init__(self, watchdog: "Watchdog", ticket_id: int, kind: str,
                 label: str, started: float, budget: float) -> None:
        self.ticket_id = ticket_id
        self.kind = kind
        self.label = label
        self.started = started
        self.budget = budget
        self._watchdog = watchdog
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._watchdog._release(self)


class Watchdog:
    """Registry of executing requests; flags the ones past deadline+grace.

    Python cannot kill a wedged handler thread, but it can make one
    impossible to miss: :meth:`scan` (called by every ``/health`` and
    ``/stats``) lists requests that outlived their deadline budget plus
    the grace window, with their age — turning a silent hang into an
    observable, alertable fact.
    """

    def __init__(self, config: OverloadConfig, clock: Clock) -> None:
        self._config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._active: Dict[int, WatchTicket] = {}
        self._next_id = 0
        self.stuck_seen = 0

    def watch(self, kind: str, label: str,
              deadline: Optional[float] = None) -> WatchTicket:
        """Track one executing request; release() in a ``finally``."""
        budget = (self._config.watchdog_default_budget
                  if deadline is None else float(deadline))
        with self._lock:
            self._next_id += 1
            ticket = WatchTicket(
                self, self._next_id, kind, label, self._clock(), budget
            )
            self._active[ticket.ticket_id] = ticket
        return ticket

    def _release(self, ticket: WatchTicket) -> None:
        with self._lock:
            self._active.pop(ticket.ticket_id, None)

    def scan(self) -> List[Dict[str, object]]:
        """Requests that outlived ``budget + grace``, oldest first."""
        now = self._clock()
        grace = self._config.watchdog_grace_seconds
        with self._lock:
            stuck = [
                {
                    "id": t.ticket_id,
                    "kind": t.kind,
                    "label": t.label,
                    "age_seconds": now - t.started,
                    "budget_seconds": t.budget,
                }
                for t in self._active.values()
                if now - t.started > t.budget + grace
            ]
            if stuck:
                self.stuck_seen = max(self.stuck_seen, len(stuck))
        return sorted(stuck, key=lambda item: item["id"])

    def snapshot(self) -> Dict[str, object]:
        stuck = self.scan()
        with self._lock:
            active = len(self._active)
            worst = self.stuck_seen
        return {"active": active, "stuck": len(stuck),
                "stuck_requests": stuck, "max_stuck_seen": worst}


__all__ = [
    "BREAKER_FAILURE_CODES",
    "BreakerRegistry",
    "Clock",
    "DEGRADED",
    "GateTicket",
    "HEALTHY",
    "HEALTH_STATES",
    "HealthMonitor",
    "OVERLOADED",
    "OverloadConfig",
    "OverloadGate",
    "WatchTicket",
    "Watchdog",
    "retry_after_hint",
]
