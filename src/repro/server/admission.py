"""Admission control: price requests before they run, bound what runs at once.

A long-lived server multiplexing many clients onto one
:class:`~repro.parallel.pool.ParallelSamplerPool` has three resources to
protect — CPU seconds, the per-request sample budget, and concurrency slots
— and it must refuse work *up front* (a structured ``admission-rejected``
error the client can act on) rather than let an oversized request starve
everyone else mid-flight.

The pricing reuses the planner's calibrated
:class:`~repro.analysis.cost.BackendCostModel`
(:func:`~repro.analysis.cost.estimate_backend_costs`): a request is charged
the *cheapest* backend that could serve it — rejecting on an expensive
backend the planner would never pick would be wrong — and requests that
ride the server's warm per-query prototypes are charged only the marginal
per-sample term, because the O(rows) setup they would otherwise pay is
already resident.  Priced seconds are model units, not a wall-clock promise;
they only need to rank requests consistently, exactly like the planner.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.cost import BackendCostModel, estimate_backend_costs
from repro.joins.query import JoinQuery
from repro.server.protocol import RequestError


@dataclass(frozen=True)
class AdmissionLimits:
    """The knobs of one :class:`AdmissionController`.

    ``max_request_seconds``
        Priced-cost ceiling per request, in cost-model seconds.
    ``max_samples``
        Per-request sample budget (aggregate requests are priced at the
        sample demand their error target implies, and that demand is
        bounded too).
    ``max_inflight``
        Concurrent sample/aggregate requests allowed inside the service;
        request N+1 is rejected, not queued — a client that wants queueing
        semantics can retry on ``admission-rejected``.
    """

    max_request_seconds: float = 30.0
    max_samples: int = 1_000_000
    max_inflight: int = 32


class AdmissionController:
    """Price-and-count gatekeeper in front of the sampling service."""

    def __init__(
        self,
        limits: Optional[AdmissionLimits] = None,
        model: Optional[BackendCostModel] = None,
    ) -> None:
        self.limits = limits or AdmissionLimits()
        self.model = model
        self._lock = threading.Lock()
        self._inflight = 0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------ price
    def price(
        self,
        queries: Sequence[JoinQuery],
        sample_size: int,
        *,
        warm: bool = False,
    ) -> float:
        """Cheapest-backend cost of the request, in cost-model seconds.

        Unions are priced as the sum of their per-join minima (the union
        sampler visits every join).  ``warm=True`` subtracts the setup term
        — ``estimate_backend_costs(q, 0)`` is exactly the setup-only price —
        because requests served from a warm prototype never pay it.
        """
        total = 0.0
        for query in queries:
            costs = estimate_backend_costs(query, sample_size, model=self.model)
            if warm:
                setup = estimate_backend_costs(query, 0, model=self.model)
                costs = {name: cost - setup[name] for name, cost in costs.items()}
            total += min(costs.values())
        return total

    # ------------------------------------------------------------------ admit
    def check(
        self,
        queries: Sequence[JoinQuery],
        sample_size: int,
        *,
        warm: bool = False,
    ) -> float:
        """Raise ``admission-rejected`` when the request busts a limit.

        Returns the priced cost on success so the caller can report it.
        """
        limits = self.limits
        if sample_size > limits.max_samples:
            with self._lock:
                self.rejected += 1
            raise RequestError(
                "admission-rejected",
                f"request wants {sample_size} samples but the per-request "
                f"budget is {limits.max_samples}; split the request or ask "
                "the operator to raise max_samples",
                limit="max_samples",
                max_samples=limits.max_samples,
                requested_samples=sample_size,
            )
        priced = self.price(queries, sample_size, warm=warm)
        if priced > limits.max_request_seconds:
            with self._lock:
                self.rejected += 1
            raise RequestError(
                "admission-rejected",
                f"request priced at {priced:.3f} cost-model seconds exceeds "
                f"the {limits.max_request_seconds:g}s admission ceiling; "
                "reduce the sample count or loosen the error target",
                limit="max_request_seconds",
                max_request_seconds=limits.max_request_seconds,
                priced_seconds=priced,
            )
        return priced

    # --------------------------------------------------------------- inflight
    def acquire_slot(self) -> None:
        """Claim a concurrency slot or raise ``admission-rejected``."""
        with self._lock:
            if self._inflight >= self.limits.max_inflight:
                self.rejected += 1
                raise RequestError(
                    "admission-rejected",
                    f"server already has {self._inflight} requests in flight "
                    f"(limit {self.limits.max_inflight}); retry later",
                    limit="max_inflight",
                    max_inflight=self.limits.max_inflight,
                )
            self._inflight += 1
            self.admitted += 1

    def release_slot(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight


__all__ = ["AdmissionController", "AdmissionLimits"]
