"""Admission control: price requests before they run, bound what runs at once.

A long-lived server multiplexing many clients onto one
:class:`~repro.parallel.pool.ParallelSamplerPool` has three resources to
protect — CPU seconds, the per-request sample budget, and concurrency slots
— and it must refuse work *up front* (a structured ``admission-rejected``
error the client can act on) rather than let an oversized request starve
everyone else mid-flight.

The pricing reuses the planner's calibrated
:class:`~repro.analysis.cost.BackendCostModel`
(:func:`~repro.analysis.cost.estimate_backend_costs`): a request is charged
the *cheapest* backend that could serve it — rejecting on an expensive
backend the planner would never pick would be wrong — and requests that
ride the server's warm per-query prototypes are charged only the marginal
per-sample term, because the O(rows) setup they would otherwise pay is
already resident.  Samples the cache tier already holds
(``cached_samples``) are likewise free: re-consuming a materialized block
is an array gather, not a draw, so a fully cached warm request prices at
(near) zero.  Priced seconds are model units, not a wall-clock promise;
they only need to rank requests consistently, exactly like the planner.

Accounting is transactional: :meth:`AdmissionController.admit` checks every
limit and reserves the slot *and* the priced seconds in one locked step,
returning an :class:`AdmissionTicket` whose :meth:`~AdmissionTicket.release`
the service calls in a ``finally`` — so a request that fails (or dies) after
admission always returns its slot and its priced seconds, and ``/stats``
inflight drains back to zero no matter how requests end.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.cost import BackendCostModel, estimate_backend_costs
from repro.joins.query import JoinQuery
from repro.server.protocol import RequestError


@dataclass(frozen=True)
class AdmissionLimits:
    """The knobs of one :class:`AdmissionController`.

    ``max_request_seconds``
        Priced-cost ceiling per request, in cost-model seconds.
    ``max_samples``
        Per-request sample budget (aggregate requests are priced at the
        sample demand their error target implies, and that demand is
        bounded too).
    ``max_inflight``
        Concurrent sample/aggregate requests allowed inside the service;
        request N+1 is rejected, not queued — a client that wants queueing
        semantics can retry on ``admission-rejected``.
    """

    max_request_seconds: float = 30.0
    max_samples: int = 1_000_000
    max_inflight: int = 32


class AdmissionTicket:
    """One admitted request's reservation: a slot plus its priced seconds.

    ``release()`` is idempotent — the service calls it in a ``finally`` so
    double-release on a convoluted error path can never drive the inflight
    accounting negative.
    """

    __slots__ = ("priced_seconds", "_controller", "_released")

    def __init__(self, controller: "AdmissionController", priced_seconds: float) -> None:
        self.priced_seconds = priced_seconds
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self)


class AdmissionController:
    """Price-and-count gatekeeper in front of the sampling service."""

    def __init__(
        self,
        limits: Optional[AdmissionLimits] = None,
        model: Optional[BackendCostModel] = None,
    ) -> None:
        self.limits = limits or AdmissionLimits()
        self.model = model
        self._lock = threading.Lock()
        self._inflight = 0
        self._inflight_seconds = 0.0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------ price
    def price(
        self,
        queries: Sequence[JoinQuery],
        sample_size: int,
        *,
        warm: bool = False,
        cached_samples: int = 0,
    ) -> float:
        """Cheapest-backend cost of the request, in cost-model seconds.

        Unions are priced as the sum of their per-join minima (the union
        sampler visits every join).  ``warm=True`` subtracts the setup term
        — ``estimate_backend_costs(q, 0)`` is exactly the setup-only price —
        because requests served from a warm prototype never pay it.
        ``cached_samples`` discounts the sample demand: draws the cache
        tier already materialized under the current epoch cost a gather,
        not a walk, so a fully cached warm request prices at zero.
        """
        effective = max(int(sample_size) - max(int(cached_samples), 0), 0)
        total = 0.0
        for query in queries:
            costs = estimate_backend_costs(query, effective, model=self.model)
            if warm:
                setup = estimate_backend_costs(query, 0, model=self.model)
                costs = {name: cost - setup[name] for name, cost in costs.items()}
            total += min(costs.values())
        return total

    # ------------------------------------------------------------------ admit
    def admit(
        self,
        queries: Sequence[JoinQuery],
        sample_size: int,
        *,
        warm: bool = False,
        cached_samples: int = 0,
        priced: Optional[float] = None,
    ) -> AdmissionTicket:
        """Admit the request or raise ``admission-rejected``.

        Checks the sample budget, the priced-seconds ceiling, and the
        inflight cap, then reserves the slot and the priced seconds in one
        locked step.  The returned ticket MUST be released in a ``finally``:
        the reservation survives any exception the request raises later, and
        only ``release()`` gives it back.

        ``priced`` short-circuits the pricing step with a cost the caller
        already computed (the overload gate prices first) — the cost model
        is deterministic, so pricing once and reusing is exact, not a
        shortcut.  Transient rejections (the inflight cap) carry a
        ``retry_after`` hint — the mean priced seconds per inflight request
        approximates the time until a slot frees; budget/ceiling rejections
        are permanent for that request and carry none.
        """
        limits = self.limits
        if sample_size > limits.max_samples:
            with self._lock:
                self.rejected += 1
            raise RequestError(
                "admission-rejected",
                f"request wants {sample_size} samples but the per-request "
                f"budget is {limits.max_samples}; split the request or ask "
                "the operator to raise max_samples",
                limit="max_samples",
                max_samples=limits.max_samples,
                requested_samples=sample_size,
            )
        if priced is None:
            priced = self.price(
                queries, sample_size, warm=warm, cached_samples=cached_samples
            )
        if priced > limits.max_request_seconds:
            with self._lock:
                self.rejected += 1
            raise RequestError(
                "admission-rejected",
                f"request priced at {priced:.3f} cost-model seconds exceeds "
                f"the {limits.max_request_seconds:g}s admission ceiling; "
                "reduce the sample count or loosen the error target",
                limit="max_request_seconds",
                max_request_seconds=limits.max_request_seconds,
                priced_seconds=priced,
            )
        with self._lock:
            if self._inflight >= limits.max_inflight:
                self.rejected += 1
                raise RequestError(
                    "admission-rejected",
                    f"server already has {self._inflight} requests in flight "
                    f"(limit {limits.max_inflight}); retry later",
                    limit="max_inflight",
                    max_inflight=limits.max_inflight,
                    retry_after=self._retry_hint_locked(),
                )
            self._inflight += 1
            self._inflight_seconds += priced
            self.admitted += 1
        return AdmissionTicket(self, priced)

    # Backwards-compatible single-purpose entry points.  ``check`` prices and
    # validates without reserving; the slot pair is the legacy protocol that
    # leaked reservations when an exception hit between acquire and release —
    # new code goes through admit()/ticket.release() instead.
    def check(
        self,
        queries: Sequence[JoinQuery],
        sample_size: int,
        *,
        warm: bool = False,
        cached_samples: int = 0,
    ) -> float:
        ticket = self.admit(
            queries, sample_size, warm=warm, cached_samples=cached_samples
        )
        ticket.release()
        return ticket.priced_seconds

    def acquire_slot(self) -> None:
        """Claim a bare concurrency slot (no priced seconds) or reject."""
        with self._lock:
            if self._inflight >= self.limits.max_inflight:
                self.rejected += 1
                raise RequestError(
                    "admission-rejected",
                    f"server already has {self._inflight} requests in flight "
                    f"(limit {self.limits.max_inflight}); retry later",
                    limit="max_inflight",
                    max_inflight=self.limits.max_inflight,
                    retry_after=self._retry_hint_locked(),
                )
            self._inflight += 1
            self.admitted += 1

    def release_slot(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    # --------------------------------------------------------------- internals
    def _retry_hint_locked(self) -> int:
        """Seconds until a slot plausibly frees; caller holds ``_lock``.

        The mean priced seconds per inflight request is the expected drain
        time of one slot under FIFO-ish completion — a hint, not a promise,
        floored at 1s so clients never busy-spin on a zero.
        """
        if self._inflight <= 0:
            return 1
        return max(1, int(math.ceil(self._inflight_seconds / self._inflight)))

    def _release(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
            self._inflight_seconds = max(
                self._inflight_seconds - ticket.priced_seconds, 0.0
            )
            if self._inflight == 0:
                # Snap float accumulation drift: an idle controller reports
                # exactly 0.0 priced seconds inflight, not 1e-18.
                self._inflight_seconds = 0.0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def inflight_seconds(self) -> float:
        """Priced seconds currently reserved by admitted, unfinished requests."""
        with self._lock:
            return self._inflight_seconds


__all__ = ["AdmissionController", "AdmissionLimits", "AdmissionTicket"]
