"""Wire protocol of the sampling server: requests, responses, error codes.

The protocol is deliberately plain: one JSON object per request, one JSON
object per response, transported over HTTP POST (see
:mod:`repro.server.http`) or handed directly to
:meth:`repro.server.service.SamplingService.handle` for in-process use
(tests, embedding).  Every response has the shape::

    {"ok": true,  "result": {...}}                          # success
    {"ok": false, "error": {"code": "...", "message": "...", ...}}

``error.code`` is the machine-readable contract (the ``message`` is for
humans and may change); the codes are enumerated in :data:`ERROR_CODES` and
each maps to a stable HTTP status so socket clients can route on either.

Request kinds
-------------

``sample``
    ``{"kind": "sample", "query": <join name>, "count": N, "seed": S}``
    plus optional ``weights`` (``"ew"``/``"eo"``), ``workers`` (> 1 routes
    through the shared :class:`~repro.parallel.pool.ParallelSamplerPool`),
    ``deadline`` (seconds), ``allow_partial``, ``max_attempts``.
``aggregate``
    ``{"kind": "aggregate", "query": ..., "aggregate": "count|sum|avg",
    "seed": S}`` plus optional ``attribute``, ``group_by``, ``rel_error``,
    ``confidence``, ``method``, ``workers``, ``deadline``,
    ``allow_partial``, ``max_attempts``.
``mutate``
    ``{"kind": "mutate", "relation": <name>, "delete_positions": [...]}`` —
    deletes rows by position and bumps the relation's mutation epoch.
``health`` / ``stats``
    No arguments; liveness echo and server counters.

Retry contract: transient rejections (the :data:`RETRYABLE_CODES` — load
sheds, open breakers, exhausted epoch restarts) carry a machine-readable
``retry_after`` detail (seconds), mirrored by the HTTP layer as a standard
``Retry-After`` header; permanent refusals never do.  See
``docs/overload.md``.

Determinism contract: a ``sample``/``aggregate`` response is a pure function
of the request (including ``seed``) and the database snapshot it ran
against — never of what else the server is doing concurrently.  The
concurrency suite and ``benchmarks/bench_server.py`` hold the server to
that bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

#: Machine-readable error codes -> HTTP status.
ERROR_CODES: Dict[str, int] = {
    # The request does not parse / misses fields / has out-of-range values.
    "invalid-request": 400,
    # The named query or relation is not part of the served workload.
    "unknown-query": 404,
    # Admission control refused the request (priced cost, sample budget, or
    # concurrent-request cap); the error payload carries the offending limit.
    "admission-rejected": 429,
    # The per-request deadline expired before the job finished (and the
    # request did not allow a partial answer).
    "deadline-exceeded": 504,
    # A partial answer was allowed but zero samples were accepted — there is
    # no honest estimate to return (see resilience.errors.EmptyResultError).
    "empty-result": 504,
    # Mutations kept landing mid-flight until the restart budget ran out.
    "epoch-restart-exhausted": 503,
    # The overload gate is shedding all priced work until pressure drains
    # (health state OVERLOADED); the payload carries a retry_after hint.
    "overloaded": 503,
    # The per-(query, weights) circuit breaker is open after consecutive
    # deadline/epoch failures; retry_after is the remaining open window.
    "circuit-open": 503,
    # Anything else (reported honestly, with the exception text).
    "internal": 500,
}

#: codes a client may retry verbatim: the refusal is about *when* the
#: request arrived, not about the request itself — and every answer is a
#: pure function of (request, snapshot), so a retry can never double-apply.
RETRYABLE_CODES = frozenset(
    {"admission-rejected", "overloaded", "circuit-open",
     "epoch-restart-exhausted"}
)


class RequestError(Exception):
    """A request failed with a structured, protocol-level error."""

    def __init__(self, code: str, message: str, **details: object) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        self.details = details
        super().__init__(message)

    @property
    def http_status(self) -> int:
        return ERROR_CODES[self.code]

    @property
    def retry_after(self) -> Optional[float]:
        """Computed retry hint in seconds, when the rejection is transient.

        Present on load sheds (429/503) and open breakers; absent on
        permanent refusals (an oversized request stays oversized no matter
        when it is retried).  The HTTP layer mirrors it as a standard
        ``Retry-After`` header.
        """
        value = self.details.get("retry_after")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    def to_payload(self) -> Dict[str, object]:
        error: Dict[str, object] = {"code": self.code, "message": str(self)}
        error.update(self.details)
        return {"ok": False, "error": error}


def ok_response(result: Mapping[str, object]) -> Dict[str, object]:
    return {"ok": True, "result": dict(result)}


# ------------------------------------------------------------------ parsing
def get_str(request: Mapping[str, object], key: str, default: Optional[str] = None,
            *, required: bool = False,
            choices: Optional[Tuple[str, ...]] = None) -> Optional[str]:
    value = request.get(key, default)
    if value is None:
        if required:
            raise RequestError("invalid-request", f"missing required field {key!r}")
        return None
    if not isinstance(value, str):
        raise RequestError("invalid-request", f"field {key!r} must be a string")
    if choices is not None and value not in choices:
        raise RequestError(
            "invalid-request", f"field {key!r} must be one of {list(choices)}, got {value!r}"
        )
    return value


def get_int(request: Mapping[str, object], key: str, default: Optional[int] = None,
            *, required: bool = False, minimum: Optional[int] = None) -> Optional[int]:
    value = request.get(key, default)
    if value is None:
        if required:
            raise RequestError("invalid-request", f"missing required field {key!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError("invalid-request", f"field {key!r} must be an integer")
    if minimum is not None and value < minimum:
        raise RequestError(
            "invalid-request", f"field {key!r} must be >= {minimum}, got {value}"
        )
    return value


def get_float(request: Mapping[str, object], key: str, default: Optional[float] = None,
              *, minimum: Optional[float] = None,
              exclusive_minimum: bool = False) -> Optional[float]:
    value = request.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError("invalid-request", f"field {key!r} must be a number")
    value = float(value)
    if minimum is not None:
        if exclusive_minimum and value <= minimum:
            raise RequestError(
                "invalid-request", f"field {key!r} must be > {minimum}, got {value}"
            )
        if not exclusive_minimum and value < minimum:
            raise RequestError(
                "invalid-request", f"field {key!r} must be >= {minimum}, got {value}"
            )
    return value


def get_bool(request: Mapping[str, object], key: str, default: bool = False) -> bool:
    value = request.get(key, default)
    if not isinstance(value, bool):
        raise RequestError("invalid-request", f"field {key!r} must be a boolean")
    return value


__all__ = [
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "RequestError",
    "get_bool",
    "get_float",
    "get_int",
    "get_str",
    "ok_response",
]
