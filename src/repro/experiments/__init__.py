"""Experiment harness reproducing the paper's figures (§9) and ablations."""

from repro.experiments.config import BENCH_CONFIG, DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.figures import (
    INSTANTIATIONS,
    build_workload,
    make_estimator,
    run_ablation_bernoulli,
    run_ablation_template,
    run_fig4_ratio_error,
    run_fig4_runtime,
    run_fig5_breakdown,
    run_fig5_sample_size,
    run_fig5a_ratio_error,
    run_fig5b_data_scale,
    run_fig6_reuse_per_sample,
    run_fig6_reuse_time,
)
from repro.experiments.reporting import SeriesTable, combine_tables

__all__ = [
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "BENCH_CONFIG",
    "SeriesTable",
    "combine_tables",
    "INSTANTIATIONS",
    "build_workload",
    "make_estimator",
    "run_fig4_ratio_error",
    "run_fig4_runtime",
    "run_fig5a_ratio_error",
    "run_fig5b_data_scale",
    "run_fig5_sample_size",
    "run_fig5_breakdown",
    "run_fig6_reuse_time",
    "run_fig6_reuse_per_sample",
    "run_ablation_bernoulli",
    "run_ablation_template",
]
