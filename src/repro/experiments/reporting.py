"""Plain-text reporting for the figure-reproduction experiments.

The paper reports its evaluation as line plots; this module renders the same
series as aligned text tables so that running a benchmark prints the rows the
corresponding figure plots (one row per x-axis point, one column per series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class SeriesTable:
    """A figure rendered as a table: one row per x value, one column per series."""

    title: str
    x_label: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, x_value: object, **series: object) -> None:
        """Append one x-axis point with its per-series values."""
        row: Dict[str, object] = {self.x_label: x_value}
        row.update(series)
        self.rows.append(row)

    @property
    def columns(self) -> List[str]:
        columns: List[str] = [self.x_label]
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order (None when missing)."""
        return [row.get(name) for row in self.rows]

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render the table as aligned plain text."""
        columns = self.columns
        rendered: List[List[str]] = [columns]
        for row in self.rows:
            rendered.append([_format_cell(row.get(c), float_format) for c in columns])
        widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
        lines = [f"# {self.title}"]
        header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in rendered[1:]:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.to_text())


def _format_cell(value: object, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def combine_tables(tables: Sequence[SeriesTable]) -> str:
    """Concatenate several rendered tables with blank lines between them."""
    return "\n\n".join(t.to_text() for t in tables)


__all__ = ["SeriesTable", "combine_tables"]
