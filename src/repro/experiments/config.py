"""Experiment configuration objects.

Every figure-reproduction function in :mod:`repro.experiments.figures` takes an
:class:`ExperimentConfig` describing the data scale, overlap scales, sample
sizes and random seed, so benchmarks, examples and the test-suite can run the
same experiments at different sizes (tiny for CI, larger for the recorded
results in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the figure-reproduction experiments.

    Attributes
    ----------
    scale_factor:
        TPC-H scale factor used to generate the base data.
    overlap_scales:
        Overlap-scale sweep used by the Fig. 4 experiments (fraction of data
        shared across the joins of a workload).
    sample_sizes:
        Sample-size sweep used by the Fig. 5c–e and Fig. 6 experiments.
    data_scales:
        Scale-factor sweep used by the Fig. 5b experiment.
    default_overlap:
        Overlap scale used by experiments that do not sweep it.
    walks_per_join:
        Warm-up walk budget of the random-walk estimator.
    seed:
        Base random seed (experiments derive per-run seeds from it).
    """

    scale_factor: float = 0.002
    overlap_scales: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.6, 0.8)
    sample_sizes: Tuple[int, ...] = (50, 100, 200, 400)
    data_scales: Tuple[float, ...] = (0.001, 0.002, 0.004)
    default_overlap: float = 0.2
    walks_per_join: int = 500
    seed: int = 2023

    def scaled_down(self, factor: float = 0.5) -> "ExperimentConfig":
        """A cheaper copy of this configuration (for smoke runs)."""
        return ExperimentConfig(
            scale_factor=self.scale_factor * factor,
            overlap_scales=self.overlap_scales[:3],
            sample_sizes=tuple(max(10, int(s * factor)) for s in self.sample_sizes[:3]),
            data_scales=self.data_scales[:2],
            default_overlap=self.default_overlap,
            walks_per_join=max(100, int(self.walks_per_join * factor)),
            seed=self.seed,
        )


#: Configuration used by the committed EXPERIMENTS.md numbers.
DEFAULT_CONFIG = ExperimentConfig()

#: Tiny configuration used by the pytest-benchmark harness so a full
#: ``pytest benchmarks/`` run stays in the minutes range on a laptop.
BENCH_CONFIG = ExperimentConfig(
    scale_factor=0.001,
    overlap_scales=(0.1, 0.3, 0.6),
    sample_sizes=(25, 50, 100),
    data_scales=(0.0005, 0.001, 0.002),
    walks_per_join=300,
    seed=2023,
)

__all__ = ["ExperimentConfig", "DEFAULT_CONFIG", "BENCH_CONFIG"]
