"""Reproduction of every figure in the paper's evaluation (§9).

Each ``run_*`` function regenerates the data behind one figure (or one
ablation) and returns a :class:`~repro.experiments.reporting.SeriesTable`
holding exactly the series the paper plots.  The pytest-benchmark harness in
``benchmarks/`` wraps these functions; ``EXPERIMENTS.md`` records their output
at the committed configuration.

Absolute runtimes are not expected to match the paper (the authors ran C++-
adjacent Python on a 64-core server against multi-GB TPC-H data; this is a
pure-Python laptop-scale reproduction) — the comparisons of interest are the
*relative* behaviours: which estimator is more accurate, which instantiation
is faster, how the methods scale with sample size / data size / overlap, and
how much sample reuse helps.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.errors import mean_ratio_error, ratio_estimation_errors
from repro.core.online_sampler import OnlineUnionSampler
from repro.core.union_sampler import BernoulliUnionSampler, SetUnionSampler
from repro.estimation.exact import FullJoinUnionEstimator
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.parameters import UnionParameters
from repro.estimation.random_walk import RandomWalkUnionEstimator
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.reporting import SeriesTable
from repro.joins.executor import exact_overlap_size
from repro.joins.query import JoinQuery
from repro.joins.template import Template, find_standard_template
from repro.tpch.workloads import UnionWorkload, build_uq1, build_uq2, build_uq3

#: The three framework instantiations compared throughout §9.2:
#: (label, warm-up estimator, join-sampling weights).
INSTANTIATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("histogram+EW", "histogram", "ew"),
    ("histogram+EO", "histogram", "eo"),
    ("random-walk+EW", "random-walk", "ew"),
)


def build_workload(
    name: str, config: ExperimentConfig, overlap_scale: Optional[float] = None,
    scale_factor: Optional[float] = None,
) -> UnionWorkload:
    """Build UQ1/UQ2/UQ3 at the configuration's scale (overlap optionally overridden)."""
    overlap = config.default_overlap if overlap_scale is None else overlap_scale
    scale = config.scale_factor if scale_factor is None else scale_factor
    key = name.upper()
    if key == "UQ1":
        return build_uq1(scale, overlap, seed=config.seed)
    if key == "UQ2":
        return build_uq2(scale, seed=config.seed)
    if key == "UQ3":
        return build_uq3(scale, overlap, seed=config.seed)
    raise ValueError(f"unknown workload {name!r}")


def make_estimator(
    method: str,
    queries: Sequence[JoinQuery],
    config: ExperimentConfig,
    join_size_method: str = "ew",
):
    """Warm-up estimator factory for the instantiation labels used in §9."""
    if method == "histogram":
        return HistogramUnionEstimator(queries, join_size_method=join_size_method)
    if method == "random-walk":
        return RandomWalkUnionEstimator(
            queries, walks_per_join=config.walks_per_join, seed=config.seed
        )
    if method == "full-join":
        return FullJoinUnionEstimator(queries)
    raise ValueError(f"unknown estimation method {method!r}")


# ------------------------------------------------------------------ Fig. 4a / 4b
def run_fig4_ratio_error(
    workload_name: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> SeriesTable:
    """Error of the |J_i|/|U| ratio estimation (histogram-based + EO).

    Fig. 4a uses UQ1, Fig. 4b uses UQ3; the x axis is the overlap scale.
    """
    table = SeriesTable(
        title=f"Fig4 ratio-estimation error ({workload_name}, histogram+EO)",
        x_label="overlap_scale",
    )
    for overlap in config.overlap_scales:
        workload = build_workload(workload_name, config, overlap_scale=overlap)
        exact = FullJoinUnionEstimator(workload.queries).estimate()
        estimated = HistogramUnionEstimator(
            workload.queries, join_size_method="eo"
        ).estimate()
        errors = ratio_estimation_errors(estimated, exact)
        table.add_row(
            overlap,
            mean_error=sum(errors.values()) / len(errors),
            max_error=max(errors.values()),
            min_error=min(errors.values()),
        )
    return table


# ------------------------------------------------------------------ Fig. 4c / 4d
def run_fig4_runtime(
    workload_name: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> SeriesTable:
    """Runtime of union-size estimation: histogram-based vs FullJoinUnion."""
    table = SeriesTable(
        title=f"Fig4 union-size estimation runtime ({workload_name})",
        x_label="overlap_scale",
    )
    for overlap in config.overlap_scales:
        workload = build_workload(workload_name, config, overlap_scale=overlap)

        started = time.perf_counter()
        HistogramUnionEstimator(workload.queries, join_size_method="eo").estimate()
        histogram_seconds = time.perf_counter() - started

        started = time.perf_counter()
        FullJoinUnionEstimator(workload.queries).estimate()
        full_join_seconds = time.perf_counter() - started

        table.add_row(
            overlap,
            histogram_seconds=histogram_seconds,
            full_join_seconds=full_join_seconds,
            speedup=(full_join_seconds / histogram_seconds) if histogram_seconds else 0.0,
        )
    return table


# ------------------------------------------------------------------------ Fig. 5a
def run_fig5a_ratio_error(config: ExperimentConfig = DEFAULT_CONFIG) -> SeriesTable:
    """Per-join ratio error: histogram+EO vs random-walk, on UQ1."""
    workload = build_workload("UQ1", config)
    exact = FullJoinUnionEstimator(workload.queries).estimate()
    histogram = HistogramUnionEstimator(workload.queries, join_size_method="eo").estimate()
    random_walk = RandomWalkUnionEstimator(
        workload.queries, walks_per_join=config.walks_per_join, seed=config.seed
    ).estimate()
    hist_errors = ratio_estimation_errors(histogram, exact)
    walk_errors = ratio_estimation_errors(random_walk, exact)
    table = SeriesTable(
        title="Fig5a |J|/|U| ratio error per join (UQ1)", x_label="join"
    )
    for name in exact.join_order:
        table.add_row(
            name,
            histogram_eo_error=hist_errors[name],
            random_walk_error=walk_errors[name],
        )
    return table


# ------------------------------------------------------------------------ Fig. 5b
def run_fig5b_data_scale(
    config: ExperimentConfig = DEFAULT_CONFIG, sample_size: int = 100
) -> SeriesTable:
    """SetUnion sampling time vs data scale on UQ1, for all three instantiations."""
    table = SeriesTable(title="Fig5b sampling time vs data scale (UQ1)", x_label="scale_factor")
    for scale in config.data_scales:
        row: Dict[str, float] = {}
        for label, method, weights in INSTANTIATIONS:
            workload = build_workload("UQ1", config, scale_factor=scale)
            estimator = make_estimator(method, workload.queries, config, join_size_method=weights)
            started = time.perf_counter()
            sampler = SetUnionSampler(
                workload.queries, estimator, join_weights=weights, seed=config.seed
            )
            sampler.sample(sample_size)
            row[label] = time.perf_counter() - started
        table.add_row(scale, **row)
    return table


# -------------------------------------------------------------------- Fig. 5c/d/e
def run_fig5_sample_size(
    workload_name: str, config: ExperimentConfig = DEFAULT_CONFIG
) -> SeriesTable:
    """Sampling time vs sample size for the three instantiations (Fig. 5c–e)."""
    workload = build_workload(workload_name, config)
    table = SeriesTable(
        title=f"Fig5 sampling time vs sample size ({workload_name})",
        x_label="samples",
    )
    for count in config.sample_sizes:
        row: Dict[str, float] = {}
        for label, method, weights in INSTANTIATIONS:
            estimator = make_estimator(method, workload.queries, config, join_size_method=weights)
            started = time.perf_counter()
            sampler = SetUnionSampler(
                workload.queries, estimator, join_weights=weights, seed=config.seed
            )
            sampler.sample(count)
            row[label] = time.perf_counter() - started
        table.add_row(count, **row)
    return table


# -------------------------------------------------------------------- Fig. 5f/g/h
def run_fig5_breakdown(
    workload_name: str,
    config: ExperimentConfig = DEFAULT_CONFIG,
    sample_size: int = 200,
) -> SeriesTable:
    """Wall-clock breakdown (estimation / accepted / rejected) per instantiation."""
    workload = build_workload(workload_name, config)
    table = SeriesTable(
        title=f"Fig5 time breakdown ({workload_name}, N={sample_size})",
        x_label="instantiation",
    )
    for label, method, weights in INSTANTIATIONS:
        estimator = make_estimator(method, workload.queries, config, join_size_method=weights)
        sampler = SetUnionSampler(
            workload.queries, estimator, join_weights=weights, seed=config.seed
        )
        result = sampler.sample(sample_size)
        breakdown = result.stats.breakdown()
        table.add_row(
            label,
            estimation_seconds=breakdown["estimation"],
            accepted_seconds=breakdown["accepted"],
            rejected_seconds=breakdown["rejected"],
            duplicate_rejections=result.stats.rejected_duplicate,
            join_sampler_rejections=result.stats.join_sampler_rejections,
        )
    return table


# -------------------------------------------------------------------- Fig. 6a / 6b
def run_fig6_reuse_time(
    config: ExperimentConfig = DEFAULT_CONFIG,
    workload_names: Sequence[str] = ("UQ1", "UQ2", "UQ3"),
) -> SeriesTable:
    """Online union sampling time vs sample size, with and without reuse (Fig. 6a)."""
    table = SeriesTable(title="Fig6a online sampling time with/without reuse", x_label="samples")
    workloads = {name: build_workload(name, config) for name in workload_names}
    for count in config.sample_sizes:
        row: Dict[str, float] = {}
        for name, workload in workloads.items():
            for reuse in (True, False):
                started = time.perf_counter()
                sampler = OnlineUnionSampler(
                    workload.queries,
                    seed=config.seed,
                    reuse=reuse,
                    walks_per_join=config.walks_per_join,
                )
                sampler.sample(count)
                label = f"{name}:{'reuse' if reuse else 'no-reuse'}"
                row[label] = time.perf_counter() - started
        table.add_row(count, **row)
    return table


def run_fig6_reuse_per_sample(
    config: ExperimentConfig = DEFAULT_CONFIG,
    workload_names: Sequence[str] = ("UQ1", "UQ2", "UQ3"),
    sample_size: int = 200,
    walks_per_join: Optional[int] = None,
) -> SeriesTable:
    """Time per accepted sample: regular phase vs reuse phase (Fig. 6b).

    ``walks_per_join`` controls the warm-up budget; choosing it smaller than
    the sample size guarantees that the reuse pool drains and the regular
    phase is exercised too (otherwise every sample would come from the pool).
    """
    budget = walks_per_join if walks_per_join is not None else config.walks_per_join
    table = SeriesTable(
        title=f"Fig6b time per accepted sample (N={sample_size})", x_label="workload"
    )
    for name in workload_names:
        workload = build_workload(name, config)
        sampler = OnlineUnionSampler(
            workload.queries,
            seed=config.seed,
            reuse=True,
            walks_per_join=budget,
        )
        result = sampler.sample(sample_size)
        table.add_row(
            name,
            reuse_phase_seconds=result.stats.time_per_accepted("reuse"),
            regular_phase_seconds=result.stats.time_per_accepted("regular"),
            reused_samples=result.stats.reused_accepted,
            regular_samples=result.stats.accepted - result.stats.reused_accepted,
        )
    return table


# ------------------------------------------------------------------------ ablations
def run_ablation_bernoulli(
    config: ExperimentConfig = DEFAULT_CONFIG, sample_size: int = 200
) -> SeriesTable:
    """Bernoulli vs non-Bernoulli (cover-based) set-union sampling on UQ1.

    The paper argues (§3) that the Bernoulli "union trick" has a higher
    rejection ratio on highly overlapping joins; this ablation measures draws
    and rejections per accepted sample for the two policies plus the strict
    cover-enforcing variant.
    """
    workload = build_workload("UQ1", config)
    exact = FullJoinUnionEstimator(workload.queries).estimate()
    table = SeriesTable(title="Ablation: Bernoulli vs non-Bernoulli (UQ1)", x_label="policy")

    samplers = {
        "bernoulli": BernoulliUnionSampler(workload.queries, exact, seed=config.seed),
        "cover-record": SetUnionSampler(workload.queries, exact, seed=config.seed, mode="record"),
        "cover-strict": SetUnionSampler(workload.queries, exact, seed=config.seed, mode="strict"),
    }
    for label, sampler in samplers.items():
        started = time.perf_counter()
        result = sampler.sample(sample_size)
        elapsed = time.perf_counter() - started
        stats = result.stats
        table.add_row(
            label,
            seconds=elapsed,
            draws_per_sample=stats.total_draws / max(len(result), 1),
            duplicate_rejections=stats.rejected_duplicate,
            revisions=stats.revisions,
        )
    return table


def run_ablation_template(config: ExperimentConfig = DEFAULT_CONFIG) -> SeriesTable:
    """Impact of the standard-template choice on the UQ3 overlap bound (§8.1.2).

    Compares the score-optimized template against a naive alphabetical
    ordering; a bad template loses co-location information and yields a much
    looser (larger) overlap bound.
    """
    workload = build_workload("UQ3", config)
    queries = workload.queries
    exact_overlap = exact_overlap_size(queries)
    table = SeriesTable(title="Ablation: template choice (UQ3 overlap bound)", x_label="template")

    optimized = find_standard_template(queries)
    naive = Template(tuple(sorted(queries[0].output_schema)), float("nan"))
    for label, template in (("score-optimized", optimized), ("alphabetical", naive)):
        estimator = HistogramUnionEstimator(
            queries, join_size_method="ew", mode="split", template=template
        )
        bound = estimator.overlap(queries)
        table.add_row(
            label,
            overlap_bound=bound,
            exact_overlap=float(exact_overlap),
            looseness=(bound / exact_overlap) if exact_overlap else float("inf"),
        )
    return table


__all__ = [
    "INSTANTIATIONS",
    "build_workload",
    "make_estimator",
    "run_fig4_ratio_error",
    "run_fig4_runtime",
    "run_fig5a_ratio_error",
    "run_fig5b_data_scale",
    "run_fig5_sample_size",
    "run_fig5_breakdown",
    "run_fig6_reuse_time",
    "run_fig6_reuse_per_sample",
    "run_ablation_bernoulli",
    "run_ablation_template",
]
