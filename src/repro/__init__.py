"""repro — Sampling over Union of Joins.

A pure-Python reproduction of *Sampling over Union of Joins* (Liu, Xu,
Nargesian): uniform, independent sampling from the set union of chain,
acyclic, and cyclic joins without materializing the joins or the union,
including the histogram-based and random-walk warm-up estimators and the
online sampler with sample reuse and backtracking.

Quickstart
----------
>>> from repro import build_uq1, SetUnionSampler, HistogramUnionEstimator
>>> workload = build_uq1(scale_factor=0.001, overlap_scale=0.3, seed=7)
>>> estimator = HistogramUnionEstimator(workload.queries, join_size_method="ew")
>>> sampler = SetUnionSampler(workload.queries, estimator, seed=7)
>>> result = sampler.sample(100)
>>> len(result) == 100
True
"""

from repro.analysis import chi_square_uniformity, mean_ratio_error
from repro.aqp import (
    AggregateAccumulator,
    AggregateEstimate,
    AggregateReport,
    AggregateSpec,
    OnlineAggregator,
    SamplerPlan,
    SamplerPlanner,
    aggregate,
    exact_aggregate,
    supported_backends,
)
from repro.cache import SampleCache
from repro.core import (
    BernoulliUnionSampler,
    DisjointUnionSampler,
    OnlineUnionSampler,
    SampleResult,
    SamplingStats,
    SetUnionSampler,
    UnionSample,
)
from repro.dynamic import (
    DeleteEvent,
    EpochReport,
    InsertEvent,
    StreamingScenario,
    TPCHRefreshStream,
    UpdateBatch,
    apply_batch,
    apply_event,
    build_order_stream_scenario,
)
from repro.estimation import (
    FullJoinUnion,
    FullJoinUnionEstimator,
    HistogramUnionEstimator,
    RandomWalkUnionEstimator,
    UnionParameters,
    UnionSizeEstimator,
)
from repro.joins import (
    JoinCondition,
    JoinMembershipProber,
    JoinQuery,
    JoinType,
    OutputAttribute,
    UnionMembershipIndex,
    build_join_tree,
    exact_join_size,
    exact_overlap_size,
    exact_union_size,
    execute_join,
    find_standard_template,
)
from repro.parallel import (
    ParallelRunReport,
    ParallelSamplerPool,
    ShardResult,
    ShardTask,
    parallel_aggregate,
    parallel_sample,
)
from repro.resilience import (
    FaultAction,
    FaultPlan,
    JobDeadlineExceeded,
    PoisonShardError,
    RetryPolicy,
    ShardCrash,
    ShardError,
    ShardSupervisor,
    ShardTimeout,
)
from repro.relational import (
    Attribute,
    Comparison,
    HashIndex,
    InSet,
    Relation,
    RelationDelta,
    Schema,
)
from repro.sampling import (
    ExactWeightFunction,
    ExtendedOlkenWeightFunction,
    JoinSampler,
    SampleBlock,
    WanderJoin,
    olken_upper_bound,
)
from repro.tpch import (
    TPCHGenerator,
    UnionWorkload,
    build_uq1,
    build_uq2,
    build_uq3,
    build_workload,
    generate_tpch,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "Attribute",
    "Schema",
    "Relation",
    "RelationDelta",
    "HashIndex",
    "Comparison",
    "InSet",
    # join model
    "JoinQuery",
    "JoinType",
    "JoinCondition",
    "OutputAttribute",
    "build_join_tree",
    "execute_join",
    "exact_join_size",
    "exact_overlap_size",
    "exact_union_size",
    "JoinMembershipProber",
    "UnionMembershipIndex",
    "find_standard_template",
    # single-join sampling
    "JoinSampler",
    "SampleBlock",
    "WanderJoin",
    "ExactWeightFunction",
    "ExtendedOlkenWeightFunction",
    "olken_upper_bound",
    # estimation
    "UnionParameters",
    "UnionSizeEstimator",
    "FullJoinUnionEstimator",
    "FullJoinUnion",
    "HistogramUnionEstimator",
    "RandomWalkUnionEstimator",
    # union samplers
    "DisjointUnionSampler",
    "BernoulliUnionSampler",
    "SetUnionSampler",
    "OnlineUnionSampler",
    "UnionSample",
    "SampleCache",
    "SampleResult",
    "SamplingStats",
    # data substrate
    "TPCHGenerator",
    "generate_tpch",
    "UnionWorkload",
    "build_uq1",
    "build_uq2",
    "build_uq3",
    "build_workload",
    # dynamic (streaming) scenarios
    "InsertEvent",
    "DeleteEvent",
    "UpdateBatch",
    "TPCHRefreshStream",
    "apply_event",
    "apply_batch",
    "EpochReport",
    "StreamingScenario",
    "build_order_stream_scenario",
    # analysis
    "chi_square_uniformity",
    "mean_ratio_error",
    # approximate query processing (AQP)
    "AggregateSpec",
    "AggregateEstimate",
    "AggregateReport",
    "AggregateAccumulator",
    "OnlineAggregator",
    "aggregate",
    "exact_aggregate",
    "SamplerPlan",
    "SamplerPlanner",
    "supported_backends",
    # parallel sampling service
    "ParallelSamplerPool",
    "ParallelRunReport",
    "ShardTask",
    "ShardResult",
    "parallel_sample",
    "parallel_aggregate",
    # resilience (fault-tolerant sampling service)
    "FaultAction",
    "FaultPlan",
    "JobDeadlineExceeded",
    "PoisonShardError",
    "RetryPolicy",
    "ShardCrash",
    "ShardError",
    "ShardSupervisor",
    "ShardTimeout",
]
