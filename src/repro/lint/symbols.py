"""Symbol tables for the checkers: per-file structure, cross-module facts.

:class:`ModuleSymbols` parses one file and exposes exactly what the
checkers need and nothing more:

* an **import alias map** so ``np.random.default_rng`` resolves to
  ``numpy.random.default_rng`` whatever the file imported numpy as;
* a **class model**: for every class, its methods with their decorators,
  every ``self.<attr>`` access (with the set of ``with self.<lock>:``
  blocks lexically active at that point), and every ``self.<method>()``
  call site (with the same lock context) — the inputs of the lock and
  epoch checkers' reachability analyses;
* the raw AST and source for checkers with bespoke traversals.

:class:`ProjectSymbols` aggregates cross-module facts, currently the set
of *seed-consuming callables* (functions and classes whose signature takes
a ``seed`` parameter) that powers the seed-aliasing rule: constructing two
such components from one integer seed is only detectable when the linter
knows, across modules, which callables consume seeds.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a full dotted name via the import aliases.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` yields
    ``"numpy.random.default_rng"``; names whose root was never imported
    resolve to ``None`` (they are locals, not module references).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of a call's callee, or ``None`` when it is local."""
    return resolve_dotted(node.func, aliases)


@dataclass
class AttrAccess:
    """One ``self.<attr>`` load or store inside a method."""

    attr: str
    line: int
    col: int
    is_store: bool
    #: names of ``self.<lock>`` objects whose ``with`` blocks lexically
    #: enclose this access
    locks_held: FrozenSet[str]


@dataclass
class SelfCall:
    """One ``self.<method>(...)`` call site inside a method."""

    method: str
    line: int
    locks_held: FrozenSet[str]


@dataclass
class MethodInfo:
    """One method of a class, pre-digested for the checkers."""

    name: str
    node: ast.FunctionDef
    decorators: Tuple[str, ...]
    accesses: List[AttrAccess] = field(default_factory=list)
    self_calls: List[SelfCall] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_property(self) -> bool:
        return "property" in self.decorators


@dataclass
class ClassInfo:
    """One class: its methods plus the order they appear in."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, MethodInfo] = field(default_factory=dict)


class _MethodScanner(ast.NodeVisitor):
    """Collect self-attribute accesses and self-calls with lock context."""

    def __init__(self, info: MethodInfo, self_name: str) -> None:
        self.info = info
        self.self_name = self_name
        self._lock_stack: List[str] = []

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == self.self_name
            ):
                self._lock_stack.append(expr.attr)
                pushed += 1
        for child in node.body:
            self.visit(child)
        for _ in range(pushed):
            self._lock_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested functions get a fresh `self`; do not descend.
        return None

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.self_name
        ):
            self.info.self_calls.append(
                SelfCall(
                    method=func.attr,
                    line=node.lineno,
                    locks_held=frozenset(self._lock_stack),
                )
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == self.self_name:
            self.info.accesses.append(
                AttrAccess(
                    attr=node.attr,
                    line=node.lineno,
                    col=node.col_offset,
                    is_store=isinstance(node.ctx, (ast.Store, ast.Del)),
                    locks_held=frozenset(self._lock_stack),
                )
            )
        self.generic_visit(node)


def _decorator_names(node: ast.FunctionDef) -> Tuple[str, ...]:
    names: List[str] = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return tuple(names)


class ModuleSymbols:
    """Parsed, pre-digested view of one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.aliases: Dict[str, str] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._collect_imports(tree)
        self._collect_classes(tree)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleSymbols":
        return cls(path, source, ast.parse(source, filename=path))

    # ------------------------------------------------------------------ build
    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds `a.b`.
                    full = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = full
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def _collect_classes(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassInfo(name=node.name, node=node)
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                method = MethodInfo(
                    name=stmt.name,
                    node=stmt,  # type: ignore[arg-type]
                    decorators=_decorator_names(stmt),  # type: ignore[arg-type]
                )
                self_name = "self"
                args = stmt.args.posonlyargs + stmt.args.args
                if args and "staticmethod" not in method.decorators:
                    self_name = args[0].arg
                scanner = _MethodScanner(method, self_name)
                for child in stmt.body:
                    scanner.visit(child)
                info.methods[stmt.name] = method
            self.classes[node.name] = info

    # ------------------------------------------------------------------ query
    def resolve(self, node: ast.AST) -> Optional[str]:
        return resolve_dotted(node, self.aliases)


#: names that derive independent sub-streams — passing one seed to several
#: of these is the *fix* for aliasing, never a violation of it
SEED_DERIVERS = frozenset(
    {"spawn_rngs", "shard_seed_sequences", "keyed_rng", "SeedSequence"}
)


class ProjectSymbols:
    """Cross-module facts shared by every checker run.

    ``seed_consumers`` maps the bare name of every callable that takes a
    ``seed`` parameter (functions, and classes via ``__init__``) to the
    module that defines it — built over *all* scanned files, so the
    seed-aliasing rule recognizes a sampler constructed in one module and
    an estimator imported from another.
    """

    def __init__(self) -> None:
        self.seed_consumers: Dict[str, str] = {}
        self.class_modules: Dict[str, str] = {}

    def add_module(self, module: ModuleSymbols) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._takes_seed(node):
                    self.seed_consumers.setdefault(node.name, module.path)
            elif isinstance(node, ast.ClassDef):
                self.class_modules.setdefault(node.name, module.path)
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "__init__"
                        and self._takes_seed(stmt)
                    ):
                        self.seed_consumers.setdefault(node.name, module.path)

    @staticmethod
    def _takes_seed(node: ast.FunctionDef) -> bool:
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            if arg.arg == "seed":
                return True
        return False

    def consumes_seed(self, callee: Optional[str]) -> bool:
        if callee is None:
            return False
        bare = callee.rsplit(".", 1)[-1]
        return bare in self.seed_consumers and bare not in SEED_DERIVERS


def build_project(modules: Sequence[ModuleSymbols]) -> ProjectSymbols:
    project = ProjectSymbols()
    for module in modules:
        project.add_module(module)
    return project


__all__ = [
    "AttrAccess",
    "ClassInfo",
    "MethodInfo",
    "ModuleSymbols",
    "ProjectSymbols",
    "SEED_DERIVERS",
    "SelfCall",
    "build_project",
    "call_name",
    "resolve_dotted",
]
