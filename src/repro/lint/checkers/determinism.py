"""Determinism: shard plans and cache keys are pure functions of their inputs.

The functions in :data:`repro.lint.registry.DETERMINISM_FUNCTIONS` define
identities the whole system agrees on — which cache entry a query maps to,
which seed a shard receives, which epoch a snapshot pins.  Bit-identical
parallel merges (PR 4) and sound cache reuse (PR 8) hold only while those
are pure: a wall-clock read, OS entropy, or iteration over an *unordered*
set anywhere inside makes two processes disagree about the same plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import ast
from typing import List, Set

from repro.lint.core import Finding, Rule
from repro.lint.registry import DETERMINISM_FUNCTIONS, NONDETERMINISTIC_CALLS
from repro.lint.symbols import ModuleSymbols, ProjectSymbols

if TYPE_CHECKING:
    from repro.lint.runner import LintConfig

RULES = (
    Rule(
        id="DET001",
        name="wall-clock-or-entropy",
        invariant=(
            "shard-plan/cache-key functions never read clocks, pids, or OS "
            "entropy — their output must depend on arguments alone"
        ),
    ),
    Rule(
        id="DET002",
        name="unordered-set-iteration",
        invariant=(
            "shard-plan/cache-key functions never iterate a set without "
            "sorted(); set order varies across processes and runs"
        ),
    ),
)

_BY_ID = {rule.id: rule for rule in RULES}


def _set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    """True when ``node`` evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_vars
    return False


class _FunctionScanner(ast.NodeVisitor):
    def __init__(self, module: ModuleSymbols, func_name: str) -> None:
        self.module = module
        self.func_name = func_name
        self.findings: List[Finding] = []
        self.set_vars: Set[str] = set()

    def _add(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = _BY_ID[rule_id]
        self.findings.append(
            Finding(
                rule_id=rule.id,
                severity=rule.severity,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if _set_expr(node.value, self.set_vars):
                self.set_vars.add(node.targets[0].id)
            else:
                self.set_vars.discard(node.targets[0].id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = self.module.resolve(node.func)
        if name in NONDETERMINISTIC_CALLS:
            self._add(
                "DET001", node,
                f"`{name}` inside determinism-critical `{self.func_name}`; "
                "plans and keys must be pure functions of their inputs",
            )
        # tuple(s)/list(s) over a set: order leaks into the output.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("tuple", "list")
            and node.args
            and _set_expr(node.args[0], self.set_vars)
        ):
            self._add(
                "DET002", node,
                f"materializing a set in iteration order inside "
                f"`{self.func_name}`; wrap it in sorted()",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _set_expr(node.iter, self.set_vars):
            self._add(
                "DET002", node,
                f"iterating a set inside `{self.func_name}`; set order "
                "varies across processes — wrap it in sorted()",
            )
        self.generic_visit(node)

    def visit_comprehension_iter(self, comp: ast.comprehension) -> None:
        if _set_expr(comp.iter, self.set_vars):
            self._add(
                "DET002", comp.iter,
                f"comprehension over a set inside `{self.func_name}`; set "
                "order varies across processes — wrap it in sorted()",
            )

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for comp in node.generators:
                self.visit_comprehension_iter(comp)
        super().generic_visit(node)


def check(
    module: ModuleSymbols, project: ProjectSymbols, config: "LintConfig"
) -> List[Finding]:
    if not config.is_library(module.path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in DETERMINISM_FUNCTIONS
        ):
            scanner = _FunctionScanner(module, node.name)
            for child in node.body:
                scanner.visit(child)
            findings.extend(scanner.findings)
    return findings


__all__ = ["RULES", "check"]
