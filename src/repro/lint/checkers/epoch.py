"""Epoch protocol: draw entry points must re-sync before serving (PR 2).

Classes that cache structures derived from versioned relations (weight
totals, alias tables, buffered draws) carry a staleness check —
``refresh()`` diffs ``Relation.version`` counters and patches the caches.
The protocol only works if **every** public draw/estimate entry point runs
it before touching cached state: one forgotten call serves samples drawn
against a database that no longer exists, silently, under any concurrent
mutator.  The contract per class lives in
:data:`repro.lint.registry.EPOCH_REGISTRY`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import ast
from typing import List, Optional

from repro.lint.core import Finding, Rule
from repro.lint.registry import EPOCH_REGISTRY, EpochContract
from repro.lint.symbols import ClassInfo, MethodInfo, ModuleSymbols, ProjectSymbols

if TYPE_CHECKING:
    from repro.lint.runner import LintConfig

RULES = (
    Rule(
        id="EPOCH001",
        name="missing-refresh",
        invariant=(
            "every public draw/estimate entry point of a versioned class "
            "must call its staleness check (refresh) before serving"
        ),
    ),
    Rule(
        id="EPOCH002",
        name="refresh-after-use",
        invariant=(
            "the staleness check must run before the first read of cached "
            "epoch-derived state, not after"
        ),
    ),
)

_BY_ID = {rule.id: rule for rule in RULES}


def _refresh_line(method: MethodInfo, contract: EpochContract) -> Optional[int]:
    # Delegating to another checked entry point counts: that callee runs the
    # staleness check itself (and is verified to, by this same rule).
    acceptable = contract.refresh_methods | (contract.entry_points - {method.name})
    lines = [call.line for call in method.self_calls if call.method in acceptable]
    return min(lines) if lines else None


def _first_cached_use(method: MethodInfo, contract: EpochContract) -> Optional[int]:
    lines = [
        access.line
        for access in method.accesses
        if access.attr in contract.cached_attrs
    ]
    return min(lines) if lines else None


def _check_class(
    module: ModuleSymbols, info: ClassInfo, contract: EpochContract
) -> List[Finding]:
    findings: List[Finding] = []
    for method in info.methods.values():
        if method.name.startswith("__"):
            continue
        if method.name in contract.refresh_methods or method.name in contract.exempt:
            continue
        required = method.name in contract.entry_points
        first_use = _first_cached_use(method, contract)
        if not required and (first_use is None or not method.is_public):
            continue
        refresh_at = _refresh_line(method, contract)
        if refresh_at is None:
            rule = _BY_ID["EPOCH001"]
            what = (
                f"reads cached epoch state on line {first_use} "
                if first_use is not None
                else ""
            )
            findings.append(
                Finding(
                    rule_id=rule.id,
                    severity=rule.severity,
                    path=module.path,
                    line=method.node.lineno,
                    col=method.node.col_offset,
                    message=(
                        f"{info.name}.{method.name} {what}without calling "
                        f"{'/'.join(sorted(contract.refresh_methods))}(); a "
                        "mutation epoch would be served from stale caches"
                    ),
                )
            )
        elif first_use is not None and first_use < refresh_at:
            rule = _BY_ID["EPOCH002"]
            findings.append(
                Finding(
                    rule_id=rule.id,
                    severity=rule.severity,
                    path=module.path,
                    line=first_use,
                    col=0,
                    message=(
                        f"{info.name}.{method.name} reads cached epoch state "
                        f"(line {first_use}) before its staleness check "
                        f"(line {refresh_at}); move the refresh first"
                    ),
                )
            )
    return findings


def check(
    module: ModuleSymbols, project: ProjectSymbols, config: "LintConfig"
) -> List[Finding]:
    if not config.is_library(module.path):
        return []
    findings: List[Finding] = []
    for name, info in module.classes.items():
        contract = EPOCH_REGISTRY.get(name)
        if contract is not None:
            findings.extend(_check_class(module, info, contract))
    return findings


__all__ = ["RULES", "check"]
