"""Merge law: accumulator contributions merge exactly-rounded (PR 3).

Mergeable accumulators keep raw per-attempt contributions and sum them
once, at estimate time, with :func:`math.fsum` — that is what makes merged
partials bit-identical in any chunk order, which the parallel shard
coordinator, the cache tier, and the worker-invariance tests all rely on.
Folding previously-rounded float partials with ``+=`` (or a plain binary
``+``) reintroduces order-dependent rounding; so does collapsing a
contribution list with the builtin ``sum``.  Integer tallies (attempt and
acceptance counters) are exact under ``+=`` and exempt via the contract's
``int_counters``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import ast
from typing import List

from repro.lint.core import Finding, Rule
from repro.lint.registry import MERGE_REGISTRY, MergeContract
from repro.lint.symbols import ModuleSymbols, ProjectSymbols

if TYPE_CHECKING:
    from repro.lint.runner import LintConfig

RULES = (
    Rule(
        id="MERGE001",
        name="rounded-partial-fold",
        invariant=(
            "accumulator sum fields merge by extending contribution lists, "
            "never by `+=` on rounded float partials"
        ),
    ),
    Rule(
        id="MERGE002",
        name="builtin-sum-in-accumulator",
        invariant=(
            "accumulator estimates use math.fsum (exactly rounded), never "
            "the builtin sum"
        ),
    ),
)

_BY_ID = {rule.id: rule for rule in RULES}


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _check_class(
    module: ModuleSymbols, node: ast.ClassDef, contract: MergeContract
) -> List[Finding]:
    findings: List[Finding] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Add):
            target = sub.target
            if _is_self_attr(target) and target.attr not in contract.int_counters:
                rule = _BY_ID["MERGE001"]
                findings.append(
                    Finding(
                        rule_id=rule.id,
                        severity=rule.severity,
                        path=module.path,
                        line=sub.lineno,
                        col=sub.col_offset,
                        message=(
                            f"{node.name}: `self.{target.attr} += ...` folds a "
                            "rounded partial; keep contributions and fsum at "
                            "estimate time (int counters belong in the "
                            "contract's int_counters)"
                        ),
                    )
                )
        elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if (
                _is_self_attr(target)
                and target.attr not in contract.int_counters
                and isinstance(sub.value, ast.BinOp)
                and isinstance(sub.value.op, ast.Add)
                and (
                    _matches_attr(sub.value.left, target.attr)
                    or _matches_attr(sub.value.right, target.attr)
                )
            ):
                rule = _BY_ID["MERGE001"]
                findings.append(
                    Finding(
                        rule_id=rule.id,
                        severity=rule.severity,
                        path=module.path,
                        line=sub.lineno,
                        col=sub.col_offset,
                        message=(
                            f"{node.name}: `self.{target.attr} = self."
                            f"{target.attr} + ...` folds a rounded partial; "
                            "keep contributions and fsum at estimate time"
                        ),
                    )
                )
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "sum"
            and module.aliases.get("sum") is None
        ):
            rule = _BY_ID["MERGE002"]
            findings.append(
                Finding(
                    rule_id=rule.id,
                    severity=rule.severity,
                    path=module.path,
                    line=sub.lineno,
                    col=sub.col_offset,
                    message=(
                        f"{node.name}: builtin sum() inside a mergeable "
                        "accumulator; use math.fsum for exactly-rounded, "
                        "order-invariant totals"
                    ),
                )
            )
    return findings


def _matches_attr(node: ast.AST, attr: str) -> bool:
    return _is_self_attr(node) and node.attr == attr  # type: ignore[union-attr]


def check(
    module: ModuleSymbols, project: ProjectSymbols, config: "LintConfig"
) -> List[Finding]:
    if not config.is_library(module.path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            contract = MERGE_REGISTRY.get(node.name)
            if contract is not None:
                findings.extend(_check_class(module, node, contract))
    return findings


__all__ = ["RULES", "check"]
