"""Checker registry: every project-specific rule family, in one place."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.checkers import (
    determinism,
    epoch,
    locks,
    merge,
    resources,
    rng,
)
from repro.lint.core import PARSE_RULE, Rule, SUPPRESSION_RULE

#: every checker module, in report order
CHECKERS = (rng, epoch, locks, merge, determinism, resources)


def all_rules() -> Tuple[Rule, ...]:
    """Every rule the linter can raise, framework rules included."""
    rules: List[Rule] = [SUPPRESSION_RULE, PARSE_RULE]
    for checker in CHECKERS:
        rules.extend(checker.RULES)
    return tuple(rules)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in all_rules()}


__all__ = ["CHECKERS", "all_rules", "rules_by_id"]
