"""Lock discipline: registered shared state only moves under its lock (PR 7/8).

For every class in :data:`repro.lint.registry.LOCK_REGISTRY`, each guarded
attribute may only be read or written

* lexically inside ``with self.<lock>:``,
* in a method whose decorator acquires the lock (``@_locked``),
* in a private helper *all* of whose intra-class call sites hold the lock
  (computed as a fixpoint over the class's self-call graph), or
* in ``__init__``/``__new__``/``__getstate__``/``__setstate__`` — the
  object is not shared during construction or pickling.

Everything else is a data race: maybe benign on CPython today, but the
whole point of the registry is that nobody has to re-derive which races
are benign after every refactor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lint.core import Finding, Rule
from repro.lint.registry import LOCK_REGISTRY, LockContract
from repro.lint.symbols import ClassInfo, ModuleSymbols, ProjectSymbols

if TYPE_CHECKING:
    from repro.lint.runner import LintConfig

RULES = (
    Rule(
        id="LOCK001",
        name="unguarded-shared-state",
        invariant=(
            "attributes registered as guarded-by a lock may only be touched "
            "with that lock held (with-block, @_locked, or a helper reached "
            "only from lock-holding call sites)"
        ),
    ),
)

_RULE = RULES[0]

#: methods where the instance is provably unshared
_CONSTRUCTION = frozenset({"__init__", "__new__", "__getstate__", "__setstate__"})


def _decorator_locks(
    method_decorators: Tuple[str, ...], contract: LockContract
) -> FrozenSet[str]:
    held = {
        contract.locked_decorators[d]
        for d in method_decorators
        if d in contract.locked_decorators
    }
    return frozenset(held)


def _held_everywhere(info: ClassInfo, contract: LockContract, lock: str) -> Set[str]:
    """Methods guaranteed to run with ``lock`` held at every call site.

    Fixpoint: start from every private method that has at least one
    intra-class call site, assume all hold the lock, then discard any with
    a call site outside the lock (lexically, via decorator, or via a caller
    still assumed to hold it).  Construction methods count as safe call
    sites — no second thread can exist yet.
    """
    callers: Dict[str, List[tuple]] = {}
    for method in info.methods.values():
        for call in method.self_calls:
            callers.setdefault(call.method, []).append((method, call))

    candidates = {
        name
        for name, method in info.methods.items()
        if name.startswith("_")
        and name not in _CONSTRUCTION
        and name in callers
    }
    changed = True
    while changed:
        changed = False
        for name in list(candidates):
            for caller, call in callers[name]:
                if caller.name in _CONSTRUCTION:
                    continue
                if lock in call.locks_held:
                    continue
                if lock in _decorator_locks(caller.decorators, contract):
                    continue
                if caller.name in candidates and caller.name != name:
                    continue
                candidates.discard(name)
                changed = True
                break
    return candidates


def _check_class(
    module: ModuleSymbols, info: ClassInfo, contract: LockContract
) -> List[Finding]:
    findings: List[Finding] = []
    held_closure = {
        lock: _held_everywhere(info, contract, lock) for lock in contract.locks
    }
    for method in info.methods.values():
        if method.name in _CONSTRUCTION:
            continue
        decorator_held = _decorator_locks(method.decorators, contract)
        for access in method.accesses:
            for lock in contract.guarded_by(access.attr):
                if lock in access.locks_held or lock in decorator_held:
                    continue
                if method.name in held_closure[lock]:
                    continue
                verb = "written" if access.is_store else "read"
                findings.append(
                    Finding(
                        rule_id=_RULE.id,
                        severity=_RULE.severity,
                        path=module.path,
                        line=access.line,
                        col=access.col,
                        message=(
                            f"{info.name}.{method.name} {verb} guarded "
                            f"attribute `{access.attr}` without holding "
                            f"`self.{lock}`"
                        ),
                    )
                )
    return findings


def check(
    module: ModuleSymbols, project: ProjectSymbols, config: "LintConfig"
) -> List[Finding]:
    if not config.is_library(module.path):
        return []
    findings: List[Finding] = []
    for name, info in module.classes.items():
        contract = LOCK_REGISTRY.get(name)
        if contract is not None:
            findings.extend(_check_class(module, info, contract))
    return findings


__all__ = ["RULES", "check"]
