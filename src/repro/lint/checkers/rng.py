"""RNG discipline: SeedSequence-derived streams only (the PR 4 bug class).

Every stochastic component must obtain its stream through
``repro.utils.rng`` — ``ensure_rng`` / ``spawn_rngs`` /
``shard_seed_sequences`` / ``keyed_rng`` — so that sub-streams are derived,
never shared.  A bare ``np.random.default_rng()`` in a shard path silently
re-seeds from OS entropy (goodbye reproducibility); numpy's module-state
functions share one hidden global stream across every caller; and handing
the same integer seed to a sampler *and* an estimator makes them consume
identical draws, correlating components the estimator math assumes are
independent — the exact bug PR 4 fixed in the CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.core import Finding, Rule, Severity
from repro.lint.registry import (
    NUMPY_MODULE_STATE,
    RNG_CONSTRUCTORS,
    RNG_MODULE_SUFFIX,
)
from repro.lint.symbols import ModuleSymbols, ProjectSymbols

if TYPE_CHECKING:
    from repro.lint.runner import LintConfig

RULES = (
    Rule(
        id="RNG001",
        name="raw-generator-construction",
        invariant=(
            "numpy Generators are constructed only in repro/utils/rng.py; "
            "everywhere else use ensure_rng/spawn_rngs/keyed_rng"
        ),
    ),
    Rule(
        id="RNG002",
        name="numpy-module-state",
        invariant=(
            "numpy.random module-state functions (np.random.seed/rand/...) "
            "share one hidden global stream and are forbidden everywhere"
        ),
    ),
    Rule(
        id="RNG003",
        name="stdlib-random",
        invariant=(
            "the stdlib `random` module is unseeded global state; use "
            "repro.utils.rng streams instead"
        ),
    ),
    Rule(
        id="RNG004",
        name="seed-reuse",
        invariant=(
            "one seed, one component: the same seed value must not construct "
            "two seed-consuming components (derive with spawn_rngs/"
            "shard_seed_sequences instead)"
        ),
    ),
)

_BY_ID = {rule.id: rule for rule in RULES}


def _finding(rule_id: str, module: ModuleSymbols, node: ast.AST, message: str) -> Finding:
    rule = _BY_ID[rule_id]
    return Finding(
        rule_id=rule.id,
        severity=rule.severity,
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _seed_key(node: ast.expr) -> Optional[Tuple[str, object]]:
    """Hashable identity of a seed expression worth tracking for reuse.

    Plain names and integer literals alias when reused; calls (``rngs[0]``,
    ``spawn_rngs(...)[1]``) construct fresh derived streams and are skipped.
    """
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if isinstance(node.value, bool):
            return None
        return ("const", node.value)
    return None


def check(
    module: ModuleSymbols, project: ProjectSymbols, config: "LintConfig"
) -> List[Finding]:
    findings: List[Finding] = []
    if not config.is_library(module.path):
        return findings
    is_rng_module = module.path.replace("\\", "/").endswith(RNG_MODULE_SUFFIX)

    for node in ast.walk(module.tree):
        # RNG003: the import itself is the violation — module-state enters.
        if isinstance(node, ast.Import) and not is_rng_module:
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings.append(
                        _finding(
                            "RNG003", module, node,
                            "stdlib `random` imported; use repro.utils.rng "
                            "(ensure_rng/spawn_rngs) for seeded streams",
                        )
                    )
        elif isinstance(node, ast.ImportFrom) and not is_rng_module:
            if node.level == 0 and node.module and (
                node.module == "random" or node.module.startswith("random.")
            ):
                findings.append(
                    _finding(
                        "RNG003", module, node,
                        "stdlib `random` imported; use repro.utils.rng "
                        "(ensure_rng/spawn_rngs) for seeded streams",
                    )
                )
        elif isinstance(node, ast.Call):
            name = module.resolve(node.func)
            if name is None:
                continue
            if name in RNG_CONSTRUCTORS and not is_rng_module:
                findings.append(
                    _finding(
                        "RNG001", module, node,
                        f"`{name}` constructed outside repro/utils/rng.py; "
                        "route the seed through ensure_rng (or derive child "
                        "streams with spawn_rngs/shard_seed_sequences)",
                    )
                )
            elif (
                name.startswith("numpy.random.")
                and name.rsplit(".", 1)[-1] in NUMPY_MODULE_STATE
            ):
                findings.append(
                    _finding(
                        "RNG002", module, node,
                        f"`{name}` draws from numpy's hidden module-global "
                        "stream; draw from an explicit Generator instead",
                    )
                )
            elif name.startswith("random.") and not is_rng_module:
                findings.append(
                    _finding(
                        "RNG003", module, node,
                        f"`{name}` uses the stdlib global stream; use "
                        "repro.utils.rng instead",
                    )
                )

    findings.extend(_seed_reuse(module, project))
    return findings


class _SeedPathScanner:
    """RNG004 flow analysis: per-path tracking of which seeds were consumed.

    Reuse is only a bug when both constructions can happen in **one**
    execution: if/elif/else alternatives fork the tracking state, a branch
    that returns or raises is dropped from the merge (early-return
    dispatchers construct exactly one component), and names bound by
    iterating a derivation call (``for stream in spawn_rngs(...)``) are
    fresh per-iteration streams, never shared seeds.
    """

    def __init__(self, module: ModuleSymbols, project: ProjectSymbols) -> None:
        self.module = module
        self.project = project
        self.findings: List[Finding] = []

    # -- expression level ------------------------------------------------
    def _callee(self, node: ast.Call) -> Optional[str]:
        callee = self.module.resolve(node.func)
        if callee is None and isinstance(node.func, ast.Name):
            callee = node.func.id
        elif callee is None and isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        return callee

    def _derived_targets(self, expr: ast.AST) -> Set[str]:
        """Comprehension targets within ``expr`` — per-iteration bindings."""
        names: Set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def scan_expr(self, expr: Optional[ast.AST], seen: Dict, excluded: set) -> None:
        if expr is None:
            return
        local_excluded = excluded | self._derived_targets(expr)
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee = self._callee(node)
            if not self.project.consumes_seed(callee):
                continue
            for kw in node.keywords:
                if kw.arg != "seed":
                    continue
                key = _seed_key(kw.value)
                if key is None:
                    continue
                if key[0] == "name" and key[1] in local_excluded:
                    continue
                previous = seen.get(key)
                if previous is not None and previous != (callee, node.lineno):
                    self.findings.append(
                        _finding(
                            "RNG004", self.module, node,
                            f"seed {key[1]!r} already seeded `{previous[0]}` "
                            f"on line {previous[1]}; two components on one "
                            "seed share a stream — derive children with "
                            "spawn_rngs/shard_seed_sequences",
                        )
                    )
                else:
                    seen[key] = (str(callee), node.lineno)

    # -- statement level -------------------------------------------------
    def scan_suite(self, stmts, seen: Dict, excluded: set) -> bool:
        """Scan a statement list; True when every path returns/raises."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # separate scope, scanned on its own
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self.scan_expr(getattr(stmt, "value", None), seen, excluded)
                self.scan_expr(getattr(stmt, "exc", None), seen, excluded)
                return True
            if isinstance(stmt, ast.If):
                self.scan_expr(stmt.test, seen, excluded)
                body_seen, else_seen = dict(seen), dict(seen)
                body_term = self.scan_suite(stmt.body, body_seen, excluded)
                else_term = self.scan_suite(stmt.orelse, else_seen, excluded)
                if body_term and else_term:
                    return True
                if body_term:
                    seen.clear(); seen.update(else_seen)
                elif else_term:
                    seen.clear(); seen.update(body_seen)
                else:
                    seen.update(body_seen); seen.update(else_seen)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.scan_expr(stmt.iter, seen, excluded)
                loop_names = {
                    t.id for t in ast.walk(stmt.target) if isinstance(t, ast.Name)
                }
                self.scan_suite(stmt.body, seen, excluded | loop_names)
                self.scan_suite(stmt.orelse, seen, excluded)
            elif isinstance(stmt, ast.While):
                self.scan_expr(stmt.test, seen, excluded)
                self.scan_suite(stmt.body, seen, excluded)
                self.scan_suite(stmt.orelse, seen, excluded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.scan_expr(item.context_expr, seen, excluded)
                if self.scan_suite(stmt.body, seen, excluded):
                    return True
            elif isinstance(stmt, ast.Try):
                if self.scan_suite(stmt.body, seen, excluded):
                    # The else/finally still run on success paths; keep it
                    # simple and conservative: scan them against forks.
                    pass
                merged = dict(seen)
                for handler in stmt.handlers:
                    handler_seen = dict(seen)
                    self.scan_suite(handler.body, handler_seen, excluded)
                    merged.update(handler_seen)
                self.scan_suite(stmt.orelse, seen, excluded)
                self.scan_suite(stmt.finalbody, seen, excluded)
                seen.update(merged)
            else:
                for expr in ast.iter_child_nodes(stmt):
                    self.scan_expr(expr, seen, excluded)
        return False


def _seed_reuse(module: ModuleSymbols, project: ProjectSymbols) -> List[Finding]:
    """RNG004: one seed value constructs two seed-consuming components."""
    scanner = _SeedPathScanner(module, project)
    for scope in ast.walk(module.tree):
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner.scan_suite(scope.body, {}, set())
    return scanner.findings


__all__ = ["RULES", "check"]
