"""Resource hygiene: tickets release in ``finally``, executors get closed (PR 8).

An :class:`AdmissionTicket` is a unit of the server's inflight budget; a
request that dies between ``admit()`` and ``release()`` without a
``finally`` permanently shrinks capacity until the server wedges — the
exact leak PR 8 closed.  Executors own OS threads: constructed outside a
``with`` block they must live on ``self`` in a class that has a lifecycle
method (``close``/``shutdown``/``__exit__``) responsible for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence

from repro.lint.core import Finding, Rule
from repro.lint.registry import (
    EXECUTOR_FACTORIES,
    LIFECYCLE_METHODS,
    RESOURCE_ACQUISITIONS,
)
from repro.lint.symbols import ModuleSymbols, ProjectSymbols

if TYPE_CHECKING:
    from repro.lint.runner import LintConfig

RULES = (
    Rule(
        id="RES001",
        name="unreleased-ticket",
        invariant=(
            "every admit()/acquire_slot() acquisition is released in a "
            "`finally` (or immediately, or ownership is returned)"
        ),
    ),
    Rule(
        id="RES002",
        name="unmanaged-executor",
        invariant=(
            "executors are constructed in a `with` block or stored on self "
            "in a class with a close/shutdown/__exit__ lifecycle method"
        ),
    ),
)

_BY_ID = {rule.id: rule for rule in RULES}


def _finding(rule_id: str, module: ModuleSymbols, node: ast.AST, message: str) -> Finding:
    rule = _BY_ID[rule_id]
    return Finding(
        rule_id=rule.id,
        severity=rule.severity,
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _acquisition_method(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute) and node.func.attr in RESOURCE_ACQUISITIONS:
        return node.func.attr
    return None


def _releases(stmt: ast.stmt, name: str, releasers: FrozenSet[str]) -> bool:
    """Does ``stmt`` (recursively) call ``name.<releaser>()``?"""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in releasers
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
    return False


def _bodies(node: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    """Every statement list nested inside ``node`` (incl. its own bodies)."""
    stack: List[Sequence[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        stack.append(getattr(node, field, []) or [])
    for handler in getattr(node, "handlers", []) or []:
        stack.append(handler.body)
    for body in stack:
        if body:
            yield body
            for stmt in body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from _bodies(stmt)


def _check_tickets(module: ModuleSymbols, func: ast.FunctionDef) -> List[Finding]:
    findings: List[Finding] = []
    for body in _bodies(func):
        for index, stmt in enumerate(body):
            # `obj.admit(...)` with the result discarded: unconditional leak.
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                method = _acquisition_method(stmt.value)
                if method is not None:
                    findings.append(
                        _finding(
                            "RES001", module, stmt,
                            f"`{method}()` result discarded; the ticket can "
                            "never be released",
                        )
                    )
                continue
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            method = _acquisition_method(stmt.value)
            if method is None:
                continue
            name = stmt.targets[0].id
            releasers = RESOURCE_ACQUISITIONS[method]
            rest = body[index + 1:]
            ok = False
            # Immediate release: the very next statement releases (the
            # probe pattern — admit then hand the slot straight back).
            if rest and isinstance(rest[0], ast.Expr) and _releases(
                rest[0], name, releasers
            ):
                ok = True
            # Ownership transfer: the ticket itself is returned.
            elif rest and all(
                isinstance(s, ast.Return)
                and isinstance(s.value, ast.Name)
                and s.value.id == name
                for s in rest[:1]
            ) and isinstance(rest[0], ast.Return):
                ok = True
            else:
                # A following sibling `try:` whose finally releases it.
                for later in rest:
                    if isinstance(later, ast.Try) and any(
                        _releases(s, name, releasers) for s in later.finalbody
                    ):
                        ok = True
                        break
            if not ok:
                # Enclosing try/finally releasing it also counts.
                for node in ast.walk(func):
                    if (
                        isinstance(node, ast.Try)
                        and any(stmt in list(ast.walk(b)) for b in node.body)
                        and any(
                            _releases(s, name, releasers) for s in node.finalbody
                        )
                    ):
                        ok = True
                        break
            if not ok:
                findings.append(
                    _finding(
                        "RES001", module, stmt,
                        f"`{name} = ...{method}()` has no `finally:` "
                        f"{'/'.join(sorted(releasers))}() on every path; a "
                        "failure here leaks the slot permanently",
                    )
                )
    return findings


def _enclosing_class(module: ModuleSymbols, node: ast.AST) -> Optional[ast.ClassDef]:
    for cls in module.classes.values():
        for sub in ast.walk(cls.node):
            if sub is node:
                return cls.node
    return None


def _check_executors(module: ModuleSymbols) -> List[Finding]:
    findings: List[Finding] = []
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(module.tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = module.resolve(node.func)
        if name not in EXECUTOR_FACTORIES:
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.withitem):
            continue
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Attribute)
            and isinstance(parent.targets[0].value, ast.Name)
        ):
            cls = _enclosing_class(module, node)
            if cls is not None:
                info = module.classes.get(cls.name)
                if info is not None and any(
                    m in info.methods for m in LIFECYCLE_METHODS
                ):
                    continue
            findings.append(
                _finding(
                    "RES002", module, node,
                    f"`{name}` stored on an instance with no close/shutdown/"
                    "__exit__ lifecycle method; its threads can never be "
                    "reclaimed",
                )
            )
            continue
        findings.append(
            _finding(
                "RES002", module, node,
                f"`{name}` constructed outside a `with` block and not "
                "lifecycle-managed; use `with` or store it on a class that "
                "closes it",
            )
        )
    return findings


def check(
    module: ModuleSymbols, project: ProjectSymbols, config: "LintConfig"
) -> List[Finding]:
    if not config.is_library(module.path):
        return []
    findings = _check_executors(module)
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_tickets(module, node))
    return findings


__all__ = ["RULES", "check"]
