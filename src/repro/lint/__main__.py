"""CLI: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean, 1 live error findings, 2 internal linter failure.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import List, Optional

from repro.lint.checkers import all_rules
from repro.lint.reporters import render_json, render_text, write_report
from repro.lint.runner import DEFAULT_EXCLUDES, LintConfig, run_lint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the repro codebase: RNG "
            "discipline, epoch protocol, lock discipline, merge law, "
            "determinism, resource hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the JSON report to PATH (e.g. LINT_REPORT.json)",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--exclude", metavar="NAMES", default="",
        help="extra comma-separated directory names to skip",
    )
    parser.add_argument(
        "--assume-library", action="store_true",
        help="treat every file as library code (contract rules everywhere)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines: List[str] = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name} [{rule.severity.value}]")
        lines.append(f"    {rule.invariant}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        try:
            print(_list_rules())
        except BrokenPipeError:  # `... --list-rules | head` closing early is fine
            sys.stderr.close()
        return 0
    try:
        excludes = tuple(DEFAULT_EXCLUDES) + tuple(
            name.strip() for name in args.exclude.split(",") if name.strip()
        )
        config = LintConfig(
            assume_library=args.assume_library,
            rules=tuple(
                rule.strip() for rule in args.rules.split(",") if rule.strip()
            ),
            excludes=excludes,
        )
        result = run_lint(args.paths, config)
        if args.format == "json":
            print(render_json(result))
        else:
            print(render_text(result))
        if args.report:
            write_report(result, args.report)
        return result.exit_code
    except BrokenPipeError:  # downstream pipe closed early; not an internal failure
        sys.stderr.close()
        return 0
    except Exception:  # internal failure must be distinguishable from findings
        traceback.print_exc()
        return 2


if __name__ == "__main__":
    sys.exit(main())
