"""Discovery and orchestration: files in, sorted findings and an exit code out.

The exit-code contract is what CI keys on:

* ``0`` — no live error-severity findings (suppressed ones do not count);
* ``1`` — at least one live error finding;
* ``2`` — the linter itself failed (reserved for ``__main__``).

Contract rules (RNG/epoch/lock/merge/determinism/resource) apply only to
*library* files — paths under ``src/repro/`` — so ``python -m repro.lint
src/ tests/`` does not hold test scaffolding to production invariants.
Fixture-based tests opt in with ``assume_library=True``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.checkers import CHECKERS, all_rules
from repro.lint.core import (
    Finding,
    PARSE_RULE,
    Rule,
    Severity,
    apply_suppressions,
    parse_suppressions,
)
from repro.lint.symbols import ModuleSymbols, build_project

#: directory names never descended into during discovery
DEFAULT_EXCLUDES: Tuple[str, ...] = (
    "__pycache__",
    ".git",
    "lint_fixtures",
    "goldens",
    ".venv",
    "build",
    "dist",
)


@dataclass
class LintConfig:
    """Knobs for one lint run."""

    #: treat every file as library code (fixture tests use this)
    assume_library: bool = False
    #: restrict to these rule ids; empty means all
    rules: Tuple[str, ...] = ()
    #: directory names to skip during discovery
    excludes: Tuple[str, ...] = DEFAULT_EXCLUDES

    def is_library(self, path: str) -> bool:
        if self.assume_library:
            return True
        normalized = "/" + path.replace("\\", "/").lstrip("/")
        return "/src/repro/" in normalized or normalized.startswith("/repro/")

    def wants(self, rule_id: str) -> bool:
        return not self.rules or rule_id in self.rules


@dataclass
class LintResult:
    """Everything one run produced, ready for a reporter."""

    findings: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)

    @property
    def live(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.live if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def discover(paths: Sequence[str], excludes: Iterable[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    excluded = set(excludes)
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in excluded for part in candidate.parts):
                continue
            out.append(candidate)
    # De-duplicate while preserving the sorted-per-root order.
    seen = set()
    unique: List[Path] = []
    for path in out:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _parse_modules(
    files: Sequence[Path],
) -> Tuple[List[ModuleSymbols], List[Finding]]:
    modules: List[ModuleSymbols] = []
    parse_findings: List[Finding] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        try:
            modules.append(ModuleSymbols.parse(str(path), text))
        except SyntaxError as exc:
            parse_findings.append(
                Finding(
                    rule_id=PARSE_RULE.id,
                    severity=PARSE_RULE.severity,
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
    return modules, parse_findings


def run_lint(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintResult:
    """Lint ``paths`` (files or directories) under ``config``."""
    config = config or LintConfig()
    files = discover(paths, config.excludes)
    modules, parse_findings = _parse_modules(files)
    project = build_project(modules)

    result = LintResult(files=[str(p) for p in files])
    result.findings.extend(parse_findings)

    for module in modules:
        collected: List[Finding] = []
        for checker in CHECKERS:
            for finding in checker.check(module, project, config):
                if config.wants(finding.rule_id):
                    collected.append(finding)
        suppressions = parse_suppressions(module.source)
        result.findings.extend(
            apply_suppressions(collected, suppressions, module.path)
        )

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


def known_rules() -> Tuple[Rule, ...]:
    """Every rule the checkers can emit (plus SUP001/PARSE001)."""
    return all_rules()


__all__ = [
    "DEFAULT_EXCLUDES",
    "LintConfig",
    "LintResult",
    "discover",
    "known_rules",
    "run_lint",
]
