"""The machine-readable contracts the checkers enforce.

Each registry is keyed by *name* (class or function), not by module path,
so the contracts follow the code through refactors, scratch copies, and
test fixtures alike.  They are seeded from the real classes that carry the
invariants today; a new class opts in by adding an entry here — which is
the point: the contract is written down once, in one reviewable place,
instead of living in five docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple


# --------------------------------------------------------------------- locks
@dataclass(frozen=True)
class LockContract:
    """Which attributes of a class may only be touched under which lock.

    ``locks`` maps a lock attribute (``_lock``) to the attributes it
    guards.  ``locked_decorators`` maps a decorator name to the lock it
    acquires for the whole method body (``@_locked`` on ``JoinSampler``).
    Private helpers reached *only* from lock-holding call sites inherit the
    context (the checker computes that closure); ``__init__``/``__new__``
    are exempt — the object is not shared during construction.
    """

    locks: Mapping[str, FrozenSet[str]]
    locked_decorators: Mapping[str, str] = field(default_factory=dict)

    def guarded_by(self, attr: str) -> Tuple[str, ...]:
        return tuple(lock for lock, attrs in self.locks.items() if attr in attrs)


LOCK_REGISTRY: Dict[str, LockContract] = {
    # PR 7: transactional admission accounting — a slot or priced second
    # touched outside the lock can drift negative and wedge the server.
    "AdmissionController": LockContract(
        locks={
            "_lock": frozenset(
                {"_inflight", "_inflight_seconds", "admitted", "rejected"}
            )
        }
    ),
    # PR 8: LRU byte accounting and epoch-pinned entries — an unguarded
    # publish/evict race corrupts `_bytes` or serves a half-dropped entry.
    "SampleCache": LockContract(
        locks={
            "_lock": frozenset(
                {
                    "_entries",
                    "_bytes",
                    "_tick",
                    "hits",
                    "misses",
                    "evictions",
                    "invalidations",
                    "stale_drops",
                }
            )
        }
    ),
    # PR 7: one pool multiplexes every server request; executor lifecycle,
    # supervision counters and last-run bookkeeping are shared.
    "ParallelSamplerPool": LockContract(
        locks={
            "_lock": frozenset(
                {
                    "_thread_executor",
                    "_closed",
                    "stats",
                    "epochs_restarted",
                    "_last_execution",
                    "_last_outcome",
                }
            )
        }
    ),
    # PR 7/8: warm-prototype registry under `_proto_lock`, request counters
    # under `_stats_lock` — two locks, disjoint state.
    "SamplingService": LockContract(
        locks={
            "_proto_lock": frozenset({"_prototypes", "_proto_builds"}),
            "_stats_lock": frozenset({"_counters"}),
        }
    ),
    # PR 7: a shared sampler serves concurrent server requests; buffers and
    # lazily-built plans mutate on every draw.
    "JoinSampler": LockContract(
        locks={
            "_lock": frozenset(
                {"_block_buffer", "_draw_buffer", "_plans", "_shard_samplers"}
            )
        },
        locked_decorators={"_locked": "_lock"},
    ),
    # PR 7: step/estimate interleave from concurrent callers; the
    # accumulator and epoch bookkeeping move together under the lock.
    "OnlineAggregator": LockContract(
        locks={
            "_lock": frozenset(
                {"accumulator", "_db_versions", "epochs_restarted"}
            )
        }
    ),
    # PR 10: every handler thread records latencies into the health EWMAs;
    # a torn p99/state pair mis-triggers (or misses) a shed transition.
    "HealthMonitor": LockContract(
        locks={
            "_lock": frozenset(
                {"_p99", "_miss_rate", "_state", "_state_since", "_observations"}
            )
        }
    ),
    # PR 10: the priced-seconds reservation ledger; reserved/queued drifting
    # out from under the condition variable wedges the backpressure queue.
    "OverloadGate": LockContract(
        locks={
            "_cond": frozenset({"_reserved", "_queued", "admitted", "sheds"})
        }
    ),
    # PR 10: breaker states shared by every handler; an unguarded half-open
    # probe count lets concurrent probes stampede a recovering query.
    "BreakerRegistry": LockContract(
        locks={"_lock": frozenset({"_breakers", "rejections"})}
    ),
    # PR 10: watch/release tickets come from handler threads while scan()
    # runs from anywhere; the active table must move atomically.
    "Watchdog": LockContract(
        locks={"_lock": frozenset({"_active", "_next_id", "stuck_seen"})}
    ),
}


# --------------------------------------------------------------------- epoch
@dataclass(frozen=True)
class EpochContract:
    """The PR 2 staleness protocol of one versioned class.

    ``entry_points`` must call a ``refresh_method`` unconditionally; any
    *other* public method that reads a ``cached_attr`` directly must call a
    refresh method first (by line order).  ``exempt`` methods are the
    protocol's own machinery.
    """

    refresh_methods: FrozenSet[str]
    cached_attrs: FrozenSet[str]
    entry_points: FrozenSet[str] = frozenset()
    exempt: FrozenSet[str] = frozenset()


EPOCH_REGISTRY: Dict[str, EpochContract] = {
    # Every public draw path must re-sync weights/alias tables and discard
    # stale buffers before serving — the PR 2 protocol.
    "JoinSampler": EpochContract(
        refresh_methods=frozenset({"refresh"}),
        cached_attrs=frozenset(
            {
                "_root_alias",
                "_root_weights",
                "_root_total",
                "_root_cumulative",
                "_plans",
                "_block_buffer",
                "_draw_buffer",
            }
        ),
        entry_points=frozenset(
            {
                "try_sample",
                "sample",
                "sample_batch",
                "sample_many",
                "sample_block",
                "warm",
                "pop_buffered",
                "pop_buffered_blocks",
            }
        ),
        exempt=frozenset({"stale"}),
    ),
    # Union-level uniformity needs the membership cache and per-join
    # samplers re-synced before any draw.
    "OnlineUnionSampler": EpochContract(
        refresh_methods=frozenset({"refresh"}),
        cached_attrs=frozenset({"_selector"}),
        entry_points=frozenset({"sample"}),
    ),
    # The aggregator restarts its accumulator on epoch bumps; step() is the
    # only path that ingests draws, and it must sync first.
    "OnlineAggregator": EpochContract(
        refresh_methods=frozenset({"_sync_epoch"}),
        cached_attrs=frozenset(),
        entry_points=frozenset({"step"}),
    ),
}


# ----------------------------------------------------------------- merge law
@dataclass(frozen=True)
class MergeContract:
    """The PR 3 merge law of one mergeable accumulator class.

    Statistical contributions must be *kept* (list extend) and summed once
    with :func:`math.fsum` at estimate time; folding previously-rounded
    float partials with ``+=`` destroys chunk-order invariance.  Integer
    tallies in ``int_counters`` are exact under ``+=`` and exempt.
    """

    int_counters: FrozenSet[str]


MERGE_REGISTRY: Dict[str, MergeContract] = {
    "AggregateAccumulator": MergeContract(
        int_counters=frozenset({"attempts", "accepted"})
    ),
    "_GroupData": MergeContract(int_counters=frozenset()),
}


# -------------------------------------------------------------- determinism
#: functions whose output keys caches or shard plans: any wall-clock,
#: entropy, or unordered-set dependence makes answers non-reproducible.
DETERMINISM_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "shape_key",
        "epoch_vector",
        "plan_tasks",
        "observed_versions",
        "shard_seed_sequences",
        "keyed_rng",
        # PR 10: the Retry-After hint must be a pure function of queue
        # state, and client backoff a pure function of (seed, attempt) —
        # wall-clock in either makes overload runs unreplayable.
        "retry_after_hint",
        "backoff_for",
    }
)

#: dotted call names that read wall clocks or OS entropy
NONDETERMINISTIC_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)


# ---------------------------------------------------------------- resources
#: acquisition method name -> method names that release it.  The PR 8 leak
#: class: an `admit()` ticket not released in a `finally` wedges the
#: server's inflight accounting when a request dies mid-flight.
RESOURCE_ACQUISITIONS: Dict[str, FrozenSet[str]] = {
    "admit": frozenset({"release"}),
    "acquire_slot": frozenset({"release_slot", "release"}),
    # PR 10: a watchdog ticket not released leaves a phantom "stuck"
    # request that keeps /health degraded forever.
    "watch": frozenset({"release"}),
}

#: executor factories that own OS threads/processes: every construction
#: must be a `with` block or a close()-managed instance attribute.
EXECUTOR_FACTORIES: FrozenSet[str] = frozenset(
    {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)

#: method names whose presence marks a class as lifecycle-managing
LIFECYCLE_METHODS: FrozenSet[str] = frozenset({"close", "shutdown", "__exit__"})


# ----------------------------------------------------------------------- rng
#: the one module allowed to construct generators directly
RNG_MODULE_SUFFIX = "repro/utils/rng.py"

#: numpy.random module-state / legacy-global functions — forbidden anywhere
NUMPY_MODULE_STATE = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "get_state",
        "set_state",
    }
)

#: direct generator constructors — allowed only inside RNG_MODULE_SUFFIX
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)


__all__ = [
    "DETERMINISM_FUNCTIONS",
    "EPOCH_REGISTRY",
    "EXECUTOR_FACTORIES",
    "EpochContract",
    "LIFECYCLE_METHODS",
    "LOCK_REGISTRY",
    "LockContract",
    "MERGE_REGISTRY",
    "MergeContract",
    "NONDETERMINISTIC_CALLS",
    "NUMPY_MODULE_STATE",
    "RESOURCE_ACQUISITIONS",
    "RNG_CONSTRUCTORS",
    "RNG_MODULE_SUFFIX",
]
