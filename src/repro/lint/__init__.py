"""``repro.lint`` — an AST-based invariant linter for this codebase.

The system's correctness rests on a handful of hand-maintained contracts:
the versioned epoch protocol (PR 2), the exactly-rounded ``fsum`` merge law
(PR 3), SeedSequence-only RNG discipline (PR 4), and lock-guarded shared
state in the server/pool/cache layers (PR 7/8).  Nothing in CPython checks
those statically: a new entry point that forgets ``refresh()``, a bare
``np.random.default_rng()`` in a shard path, or an unguarded read of
``SampleCache`` state compiles, passes most tests, and corrupts answers
silently under concurrency.

This package checks them mechanically, with the stdlib ``ast`` module only:

* :mod:`repro.lint.core` — finding/severity model and
  ``# repro-lint: disable=<rule> -- <justification>`` suppressions;
* :mod:`repro.lint.symbols` — per-file symbol tables (import aliases,
  class/method structure, lock regions, ``self`` attribute accesses) plus a
  cross-module table of seed-consuming callables;
* :mod:`repro.lint.registry` — the per-class contracts the checkers
  enforce, seeded from the real classes (``SamplingService``,
  ``AdmissionController``, ``SampleCache``, ``ParallelSamplerPool``,
  ``JoinSampler``, ...);
* :mod:`repro.lint.checkers` — the six project-specific checkers;
* :mod:`repro.lint.runner` / :mod:`repro.lint.reporters` — discovery,
  orchestration, exit-code contract, and text/JSON output.

Run it as ``python -m repro.lint src/ tests/`` or via ``make lint``; see
``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.lint.core import Finding, Rule, Severity
from repro.lint.runner import LintConfig, LintResult, run_lint
from repro.lint.reporters import render_json, render_text, write_report

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "Severity",
    "render_json",
    "render_text",
    "run_lint",
    "write_report",
]
