"""Reporters: human text for terminals, stable JSON for CI artifacts.

``render_json`` / ``write_report`` produce the ``LINT_REPORT.json``
artifact CI uploads: a versioned document with the full rule catalogue,
every finding (suppressed ones included, marked, with their written
justification), and summary counts — enough for a reviewer to audit what
was silenced without checking out the branch.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.lint.checkers import all_rules
from repro.lint.core import Severity
from repro.lint.runner import LintResult

#: bump when the JSON document shape changes
REPORT_FORMAT_VERSION = 1


def render_text(result: LintResult) -> str:
    """One line per finding, gcc-style, plus a summary tail."""
    lines: List[str] = []
    for finding in result.findings:
        tag = finding.severity.value
        if finding.suppressed:
            tag = f"suppressed {tag}"
        lines.append(
            f"{finding.location()}: {tag} {finding.rule_id}: {finding.message}"
        )
        if finding.suppressed and finding.justification:
            lines.append(f"    justification: {finding.justification}")
    live = result.live
    errors = result.errors
    warnings = [f for f in live if f.severity is Severity.WARNING]
    lines.append(
        f"{len(result.files)} files scanned: "
        f"{len(errors)} error(s), {len(warnings)} warning(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-readable report CI archives as ``LINT_REPORT.json``."""
    rules = all_rules()  # framework rules (SUP001/PARSE001) included
    document: Dict[str, object] = {
        "format_version": REPORT_FORMAT_VERSION,
        "tool": "repro.lint",
        "rules": [
            {
                "id": rule.id,
                "name": rule.name,
                "severity": rule.severity.value,
                "invariant": rule.invariant,
            }
            for rule in rules
        ],
        "files_scanned": len(result.files),
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(
                [f for f in result.live if f.severity is Severity.WARNING]
            ),
            "suppressed": len(result.suppressed),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)


def write_report(result: LintResult, path: str) -> None:
    Path(path).write_text(render_json(result) + "\n", encoding="utf-8")


__all__ = [
    "REPORT_FORMAT_VERSION",
    "render_json",
    "render_text",
    "write_report",
]
