"""Finding/severity model and the suppression contract of ``repro.lint``.

A *rule* is a stable identifier plus the invariant it encodes; a *finding*
is one rule violated at one source location.  Suppressions are inline
comments::

    do_something()  # repro-lint: disable=RNG001 -- reference scalar path

The justification after ``--`` is **required**: a suppression without one
does not suppress anything and instead raises ``SUP001`` at the directive
line, so every silenced finding carries a written reason a reviewer can
audit.  A directive suppresses findings on its own line or, when the
comment stands alone, on the following line.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Severity(enum.Enum):
    """How a finding affects the exit code: errors fail, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One enforceable invariant: stable id, short name, and the contract."""

    id: str
    name: str
    invariant: str
    severity: Severity = Severity.ERROR


@dataclass
class Finding:
    """One rule violated at one location (1-indexed line, 0-indexed column)."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: Optional[str] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


SUPPRESSION_RULE = Rule(
    id="SUP001",
    name="suppression-without-justification",
    invariant=(
        "every `# repro-lint: disable=<rule>` directive must carry a "
        "`-- <justification>` explaining why the invariant does not apply"
    ),
)

PARSE_RULE = Rule(
    id="PARSE001",
    name="unparseable-source",
    invariant="every linted file must be valid Python",
)

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass
class Suppression:
    """One parsed directive: the rules it silences and where it applies."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: Optional[str]
    #: lines whose findings this directive covers (its own, plus the next
    #: line when the directive is a standalone comment)
    covered_lines: Tuple[int, ...] = field(default_factory=tuple)

    def covers(self, rule_id: str, line: int) -> bool:
        return line in self.covered_lines and rule_id in self.rule_ids


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``repro-lint: disable`` directive from ``source``."""
    suppressions: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        standalone = text.lstrip().startswith("#")
        covered = (lineno, lineno + 1) if standalone else (lineno,)
        suppressions.append(
            Suppression(
                line=lineno,
                rule_ids=rule_ids,
                justification=match.group("why"),
                covered_lines=covered,
            )
        )
    return suppressions


def apply_suppressions(
    findings: Iterable[Finding], suppressions: List[Suppression], path: str
) -> List[Finding]:
    """Mark suppressed findings; emit ``SUP001`` for directives missing a reason.

    A directive without a justification suppresses nothing — the underlying
    finding stays live *and* the directive itself is reported, so the fix is
    always either a written reason or a real repair.
    """
    out: List[Finding] = []
    for directive in suppressions:
        if not directive.justification:
            out.append(
                Finding(
                    rule_id=SUPPRESSION_RULE.id,
                    severity=SUPPRESSION_RULE.severity,
                    path=path,
                    line=directive.line,
                    col=0,
                    message=(
                        "suppression lists "
                        + ",".join(directive.rule_ids)
                        + " but has no `-- <justification>`; findings are NOT "
                        "suppressed until a reason is written"
                    ),
                )
            )
    for finding in findings:
        for directive in suppressions:
            if directive.justification and directive.covers(
                finding.rule_id, finding.line
            ):
                finding.suppressed = True
                finding.justification = directive.justification
                break
        out.append(finding)
    return out


__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "Suppression",
    "SUPPRESSION_RULE",
    "PARSE_RULE",
    "apply_suppressions",
    "parse_suppressions",
]
