"""Drive samplers against a mutating database, one epoch at a time.

A :class:`StreamingScenario` owns the tables, a refresh stream, and a set of
named samplers.  Each epoch applies one update batch (through the O(Δ)
delta-maintenance path) and then draws from every sampler:

* :class:`~repro.sampling.join_sampler.JoinSampler` detects the epoch change
  through the relations' version counters and patches its weights/plans;
* :class:`~repro.sampling.wander_join.WanderJoin` reads the maintained
  indexes directly (its walks carry no cross-epoch state);
* :class:`~repro.core.online_sampler.OnlineUnionSampler` is refreshed
  explicitly — its reuse pools and accepted-sample bookkeeping are tied to
  one database snapshot (see ``OnlineUnionSampler.refresh``).

The per-epoch :class:`EpochReport` records what changed and how long
maintenance vs. sampling took, which is exactly the trade-off
``benchmarks/bench_updates.py`` quantifies at scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.core.online_sampler import OnlineUnionSampler
from repro.dynamic.stream import TPCHRefreshStream, UpdateBatch, apply_batch
from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.query import JoinQuery
from repro.relational.relation import Relation
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import WanderJoin
from repro.tpch.generator import generate_tpch
from repro.utils.rng import RandomState, shard_seed_sequences


@dataclass
class EpochReport:
    """What one epoch of a streaming scenario did."""

    epoch: int
    inserted_rows: int
    deleted_rows: int
    table_sizes: Dict[str, int]
    maintenance_seconds: float
    sampling_seconds: float
    #: sampler name -> values drawn this epoch
    samples: Dict[str, List[Tuple]] = field(default_factory=dict)


class StreamingScenario:
    """Interleave update batches with sampling epochs over shared tables."""

    def __init__(
        self,
        tables: Dict[str, Relation],
        stream: Iterable[UpdateBatch],
        samplers: Mapping[str, object],
        samples_per_epoch: int = 256,
    ) -> None:
        if samples_per_epoch < 0:
            raise ValueError("samples_per_epoch must be non-negative")
        self.tables = tables
        self._stream: Iterator[UpdateBatch] = iter(stream)
        self.samplers = dict(samplers)
        self.samples_per_epoch = samples_per_epoch
        self.reports: List[EpochReport] = []

    # ------------------------------------------------------------------ epochs
    def run_epoch(self) -> EpochReport:
        """Apply the next update batch, then draw from every sampler."""
        batch = next(self._stream)
        started = time.perf_counter()
        counts = apply_batch(self.tables, batch)
        # Refresh eagerly so maintenance time is attributed to this phase
        # rather than smeared over the first draw of each sampler.
        for sampler in self.samplers.values():
            refresh = getattr(sampler, "refresh", None)
            if refresh is not None:
                refresh()
        maintenance = time.perf_counter() - started

        started = time.perf_counter()
        samples = {
            name: self._draw(sampler, self.samples_per_epoch)
            for name, sampler in self.samplers.items()
        }
        sampling = time.perf_counter() - started

        report = EpochReport(
            epoch=batch.sequence,
            inserted_rows=counts["inserted"],
            deleted_rows=counts["deleted"],
            table_sizes={name: len(rel) for name, rel in self.tables.items()},
            maintenance_seconds=maintenance,
            sampling_seconds=sampling,
            samples=samples,
        )
        self.reports.append(report)
        return report

    def run(self, epochs: int) -> List[EpochReport]:
        """Run ``epochs`` consecutive epochs; returns their reports."""
        return [self.run_epoch() for _ in range(epochs)]

    # ------------------------------------------------------------------- draws
    @staticmethod
    def _draw(sampler: object, count: int) -> List[Tuple]:
        if count == 0:
            return []
        if isinstance(sampler, OnlineUnionSampler):
            return [s.value for s in sampler.sample(count).samples]
        if isinstance(sampler, WanderJoin):
            return [w.value for w in sampler.walks(count) if w.success]
        if isinstance(sampler, JoinSampler):
            return [d.value for d in sampler.sample_many(count)]
        raise TypeError(
            f"unsupported sampler type {type(sampler).__name__}; expected "
            "JoinSampler, WanderJoin, or OnlineUnionSampler"
        )


def build_order_stream_scenario(
    scale_factor: float = 0.001,
    seed: RandomState = 0,
    orders_per_batch: int = 32,
    insert_fraction: float = 0.5,
) -> Tuple[Dict[str, Relation], JoinQuery, TPCHRefreshStream]:
    """Tables + customer ⋈ orders ⋈ lineitem query + refresh stream.

    The standard entry point for dynamic experiments: generate the TPC-H
    tables, build the chain join that the refresh functions churn the most,
    and attach an RF1/RF2 stream to it.  Compose the pieces into a
    :class:`StreamingScenario` with whatever samplers the experiment needs.
    """
    # One root seed, two independent children: handing the same seed to the
    # generator *and* the refresh stream would alias their draw streams (the
    # PR 4 bug class repro.lint's RNG004 now rejects).
    data_seed, stream_seed = shard_seed_sequences(seed, 2)
    tables = generate_tpch(scale_factor, seed=data_seed)
    query = JoinQuery(
        "dynamic_orders",
        [tables["customer"], tables["orders"], tables["lineitem"]],
        [
            JoinCondition("customer", "custkey", "orders", "custkey"),
            JoinCondition("orders", "orderkey", "lineitem", "orderkey"),
        ],
        [
            OutputAttribute.direct("customer", "custkey"),
            OutputAttribute.direct("orders", "orderkey"),
            OutputAttribute.direct("lineitem", "linenumber"),
            OutputAttribute.direct("lineitem", "quantity"),
        ],
    )
    stream = TPCHRefreshStream(
        tables,
        seed=stream_seed,
        orders_per_batch=orders_per_batch,
        insert_fraction=insert_fraction,
    )
    return tables, query, stream


__all__ = [
    "EpochReport",
    "StreamingScenario",
    "build_order_stream_scenario",
]
