"""Streaming insert/delete workloads over the TPC-H tables.

Models the TPC-H *refresh functions*: RF1 inserts a batch of new orders with
their lineitems, RF2 deletes a batch of existing orders cascading to their
lineitems.  :class:`TPCHRefreshStream` emits batches mixing both, seeded and
fully deterministic, so dynamic experiments are reproducible.

Events are applied through :func:`apply_event`, which routes deletions through
the relation's *maintained hash index* (one lookup + ``delete_rows``) instead
of a predicate scan — the whole point of the incremental update engine is that
an update batch costs O(Δ), not O(n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.relational.relation import Relation
from repro.tpch.schema import ORDER_PRIORITIES, ORDER_STATUSES
from repro.utils.rng import RandomState, ensure_rng

Row = Tuple


@dataclass(frozen=True)
class InsertEvent:
    """Insert ``rows`` into ``relation``."""

    relation: str
    rows: Tuple[Row, ...]


@dataclass(frozen=True)
class DeleteEvent:
    """Delete every row of ``relation`` whose ``attribute`` equals ``value``."""

    relation: str
    attribute: str
    value: object


UpdateEvent = Union[InsertEvent, DeleteEvent]


@dataclass(frozen=True)
class UpdateBatch:
    """One refresh batch: an ordered sequence of insert/delete events."""

    sequence: int
    events: Tuple[UpdateEvent, ...]

    @property
    def insert_count(self) -> int:
        return sum(
            len(e.rows) for e in self.events if isinstance(e, InsertEvent)
        )

    @property
    def delete_count(self) -> int:
        return sum(1 for e in self.events if isinstance(e, DeleteEvent))


def apply_event(tables: Dict[str, Relation], event: UpdateEvent) -> int:
    """Apply one event; returns the number of rows inserted or deleted.

    Deletions resolve the doomed positions through the relation's hash index
    (maintained in O(Δ) per batch), so a delete costs the size of its bucket,
    never a relation scan.
    """
    relation = tables[event.relation]
    if isinstance(event, InsertEvent):
        relation.extend(event.rows)
        return len(event.rows)
    positions = relation.index_on(event.attribute).positions(event.value)
    return relation.delete_rows(positions)


def apply_batch(tables: Dict[str, Relation], batch: UpdateBatch) -> Dict[str, int]:
    """Apply a whole batch; returns ``{"inserted": ..., "deleted": ...}``.

    Consecutive deletions are grouped into one ``delete_rows`` call per
    relation, so each derived structure pays one delta per relation per batch
    rather than one per event — the difference between touching a large index
    bucket once and touching it once per deleted key.  Event order is still
    honoured: a group is flushed before any insert into the same tables.
    """
    inserted = deleted = 0
    doomed: Dict[str, set] = {}

    def flush() -> None:
        nonlocal deleted
        for name, positions in doomed.items():
            deleted += tables[name].delete_rows(positions)
        doomed.clear()

    for event in batch.events:
        if isinstance(event, InsertEvent):
            flush()
            tables[event.relation].extend(event.rows)
            inserted += len(event.rows)
        else:
            relation = tables[event.relation]
            positions = relation.index_on(event.attribute).positions(event.value)
            doomed.setdefault(event.relation, set()).update(positions)
    flush()
    return {"inserted": inserted, "deleted": deleted}


class TPCHRefreshStream:
    """Deterministic RF1/RF2-style refresh stream over orders + lineitem.

    Parameters
    ----------
    tables:
        The TPC-H tables (``orders`` and ``lineitem`` are required; customer,
        part and supplier key ranges are read from the existing data so
        inserted rows join exactly like generated ones).
    seed:
        Seed or generator for the event mix.
    orders_per_batch:
        Number of order-level operations per batch.
    insert_fraction:
        Probability that an order-level operation is an insert (RF1) rather
        than a delete (RF2).
    lines_per_order:
        Upper bound on lineitems per inserted order (uniform in ``[1, max]``).
    """

    def __init__(
        self,
        tables: Dict[str, Relation],
        seed: RandomState = 0,
        orders_per_batch: int = 32,
        insert_fraction: float = 0.5,
        lines_per_order: int = 4,
    ) -> None:
        if "orders" not in tables or "lineitem" not in tables:
            raise ValueError("refresh stream needs 'orders' and 'lineitem' tables")
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be in [0, 1]")
        if orders_per_batch <= 0:
            raise ValueError("orders_per_batch must be positive")
        self.rng = ensure_rng(seed)
        self.orders_per_batch = orders_per_batch
        self.insert_fraction = insert_fraction
        self.lines_per_order = max(int(lines_per_order), 1)
        orders = tables["orders"]
        lineitem = tables["lineitem"]
        self._live_orderkeys: List[int] = list(orders.column("orderkey"))
        self._next_orderkey = max(self._live_orderkeys, default=0) + 1
        self._custkeys = sorted(set(orders.column("custkey")))
        self._max_partkey = max(lineitem.column("partkey"), default=1)
        self._max_suppkey = max(lineitem.column("suppkey"), default=1)
        self._sequence = 0

    # ------------------------------------------------------------------ events
    def _new_order(self) -> Tuple[Row, Tuple[Row, ...]]:
        rng = self.rng
        orderkey = self._next_orderkey
        self._next_orderkey += 1
        custkey = self._custkeys[int(rng.integers(0, len(self._custkeys)))]
        orderdate = int(rng.integers(8_035, 10_591))
        order_row = (
            orderkey,
            custkey,
            ORDER_STATUSES[int(rng.integers(0, len(ORDER_STATUSES)))],
            round(float(rng.uniform(850.0, 500_000.0)), 2),
            orderdate,
            ORDER_PRIORITIES[int(rng.integers(0, len(ORDER_PRIORITIES)))],
        )
        lines = []
        for linenumber in range(1, int(rng.integers(1, self.lines_per_order + 1)) + 1):
            quantity = int(rng.integers(1, 51))
            lines.append(
                (
                    orderkey,
                    int(rng.integers(1, self._max_partkey + 1)),
                    int(rng.integers(1, self._max_suppkey + 1)),
                    linenumber,
                    quantity,
                    round(quantity * float(rng.uniform(900.0, 2000.0)), 2),
                    round(float(rng.uniform(0.0, 0.1)), 2),
                    orderdate + int(rng.integers(1, 122)),
                )
            )
        return order_row, tuple(lines)

    def batch(self) -> UpdateBatch:
        """Produce the next refresh batch (without applying it)."""
        events: List[UpdateEvent] = []
        order_rows: List[Row] = []
        line_rows: List[Row] = []
        for _ in range(self.orders_per_batch):
            insert = self.rng.random() < self.insert_fraction
            if insert or not self._live_orderkeys:
                order_row, lines = self._new_order()
                order_rows.append(order_row)
                line_rows.extend(lines)
                # joined the live pool only after the batch: a batch never
                # deletes an order it also inserts (events list inserts last)
            else:
                victim = int(self.rng.integers(0, len(self._live_orderkeys)))
                # swap-pop keeps the live pool O(1) per delete
                orderkey = self._live_orderkeys[victim]
                self._live_orderkeys[victim] = self._live_orderkeys[-1]
                self._live_orderkeys.pop()
                events.append(DeleteEvent("lineitem", "orderkey", orderkey))
                events.append(DeleteEvent("orders", "orderkey", orderkey))
        if order_rows:
            events.append(InsertEvent("orders", tuple(order_rows)))
            self._live_orderkeys.extend(row[0] for row in order_rows)
        if line_rows:
            events.append(InsertEvent("lineitem", tuple(line_rows)))
        self._sequence += 1
        return UpdateBatch(sequence=self._sequence, events=tuple(events))

    def batches(self, count: int) -> Iterator[UpdateBatch]:
        """Yield ``count`` consecutive refresh batches."""
        for _ in range(count):
            yield self.batch()

    def __iter__(self) -> Iterator[UpdateBatch]:
        """The stream is an infinite iterator of refresh batches."""
        return self

    def __next__(self) -> UpdateBatch:
        return self.batch()


__all__ = [
    "InsertEvent",
    "DeleteEvent",
    "UpdateEvent",
    "UpdateBatch",
    "TPCHRefreshStream",
    "apply_event",
    "apply_batch",
]
