"""Dynamic (streaming) scenarios: sampling over a mutating database.

The paper's samplers assume static base relations; this layer lifts that
assumption.  It provides

* :mod:`repro.dynamic.stream` — typed insert/delete events, TPC-H
  RF1/RF2-style refresh streams over the generated tables, and appliers that
  route events through the relations' O(Δ) delta-maintenance path;
* :mod:`repro.dynamic.scenario` — a driver that interleaves update batches
  with sampling epochs, exercising the epoch/staleness protocol of
  :class:`~repro.sampling.join_sampler.JoinSampler`,
  :class:`~repro.sampling.wander_join.WanderJoin` and
  :class:`~repro.core.online_sampler.OnlineUnionSampler` against live data.

See ``docs/updates.md`` for the maintenance design this layer rides on.
"""

from repro.dynamic.scenario import (
    EpochReport,
    StreamingScenario,
    build_order_stream_scenario,
)
from repro.dynamic.stream import (
    DeleteEvent,
    InsertEvent,
    TPCHRefreshStream,
    UpdateBatch,
    apply_batch,
    apply_event,
)

__all__ = [
    "DeleteEvent",
    "InsertEvent",
    "UpdateBatch",
    "TPCHRefreshStream",
    "apply_batch",
    "apply_event",
    "EpochReport",
    "StreamingScenario",
    "build_order_stream_scenario",
]
