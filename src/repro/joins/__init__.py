"""Join query model: queries, join trees, execution, membership, splitting, templates."""

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.joins.executor import (
    exact_disjoint_union_size,
    exact_join_size,
    exact_overlap_size,
    exact_union_size,
    execute_join,
    iterate_join_assignments,
    join_result_set,
)
from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.membership import JoinMembershipProber, UnionMembershipIndex
from repro.joins.query import JoinQuery, JoinType, check_union_compatible
from repro.joins.splitting import (
    SplitChain,
    SplitRelation,
    build_split_chain,
    build_split_chains,
)
from repro.joins.template import (
    Template,
    attribute_distance,
    find_standard_template,
    pairwise_scores,
    relation_distances,
)

__all__ = [
    "JoinCondition",
    "OutputAttribute",
    "JoinQuery",
    "JoinType",
    "check_union_compatible",
    "JoinTree",
    "JoinTreeNode",
    "build_join_tree",
    "execute_join",
    "iterate_join_assignments",
    "join_result_set",
    "exact_join_size",
    "exact_overlap_size",
    "exact_union_size",
    "exact_disjoint_union_size",
    "JoinMembershipProber",
    "UnionMembershipIndex",
    "SplitChain",
    "SplitRelation",
    "build_split_chain",
    "build_split_chains",
    "Template",
    "attribute_distance",
    "find_standard_template",
    "pairwise_scores",
    "relation_distances",
]
