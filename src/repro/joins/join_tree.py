"""Join trees: rooted tree decomposition of a join query.

Every algorithm in the framework — exact-weight computation, Olken bounds,
accept/reject sampling, wander-join random walks, the full-join executor and
the membership prober — operates over a rooted *join tree*:

* for chain joins the tree is a path rooted at the first relation;
* for acyclic joins the tree is a spanning tree of the join graph (which is
  already a tree);
* for cyclic joins we break cycles by selecting a spanning tree (the
  *skeleton*, §8.2) and keeping the removed equi-join conditions as *residual*
  conditions that are checked once a candidate result is assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.joins.conditions import JoinCondition
from repro.joins.query import JoinQuery, JoinType


@dataclass
class JoinTreeNode:
    """One relation in a rooted join tree.

    Attributes
    ----------
    relation:
        Relation name.
    parent_attributes / child_attributes:
        The attribute lists forming the (possibly composite) equi-join key
        with the parent: ``parent.parent_attributes == child.child_attributes``
        component-wise.  Empty for the root.
    children:
        Child nodes.
    """

    relation: str
    parent_attributes: Tuple[str, ...] = ()
    child_attributes: Tuple[str, ...] = ()
    children: List["JoinTreeNode"] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return not self.parent_attributes

    def walk(self) -> Iterator["JoinTreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def post_order(self) -> Iterator["JoinTreeNode"]:
        """Post-order traversal (children before parents)."""
        for child in self.children:
            yield from child.post_order()
        yield self


@dataclass
class JoinTree:
    """A rooted join tree plus any residual (cycle-breaking) conditions."""

    query: JoinQuery
    root: JoinTreeNode
    residual_conditions: Tuple[JoinCondition, ...] = ()

    # --------------------------------------------------------------- structure
    def nodes(self) -> List[JoinTreeNode]:
        return list(self.root.walk())

    def node_for(self, relation: str) -> JoinTreeNode:
        for node in self.root.walk():
            if node.relation == relation:
                return node
        raise KeyError(f"relation {relation!r} not in join tree")

    def relation_order(self) -> List[str]:
        """Relations in pre-order (root first)."""
        return [n.relation for n in self.root.walk()]

    @property
    def is_path(self) -> bool:
        """True when every node has at most one child (chain shape)."""
        return all(len(n.children) <= 1 for n in self.root.walk())

    def depth(self) -> int:
        def _depth(node: JoinTreeNode) -> int:
            if not node.children:
                return 1
            return 1 + max(_depth(c) for c in node.children)

        return _depth(self.root)

    def chain_relations(self) -> List[str]:
        """Relations in chain order; raises if the tree is not a path."""
        if not self.is_path:
            raise ValueError("join tree is not a chain")
        order = []
        node: Optional[JoinTreeNode] = self.root
        while node is not None:
            order.append(node.relation)
            node = node.children[0] if node.children else None
        return order

    # ------------------------------------------------------------- residuals
    @property
    def has_residuals(self) -> bool:
        return bool(self.residual_conditions)

    def residual_satisfied(self, assignment: Dict[str, int]) -> bool:
        """Whether a complete row assignment satisfies all residual conditions."""
        for cond in self.residual_conditions:
            left = self.query.relation(cond.left_relation)
            right = self.query.relation(cond.right_relation)
            lv = left.value(assignment[cond.left_relation], cond.left_attribute)
            rv = right.value(assignment[cond.right_relation], cond.right_attribute)
            if lv != rv:
                return False
        return True

    def residual_mask(self, assignments: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorized :meth:`residual_satisfied` over a batch of assignments.

        ``assignments`` maps every relation name to an array of row positions
        (one entry per walk); the result marks the walks whose assembled rows
        satisfy all residual conditions.
        """
        sizes = {len(a) for a in assignments.values()}
        if len(sizes) != 1:
            raise ValueError("assignment arrays must share one batch size")
        (size,) = sizes
        ok = np.ones(size, dtype=bool)
        for cond in self.residual_conditions:
            left = self.query.relation(cond.left_relation)
            right = self.query.relation(cond.right_relation)
            left_values = left.column_array(cond.left_attribute)[
                assignments[cond.left_relation]
            ]
            right_values = right.column_array(cond.right_attribute)[
                assignments[cond.right_relation]
            ]
            equal = np.asarray(left_values == right_values)
            if equal.shape != (size,):  # mixed-dtype comparison collapsed
                equal = np.fromiter(
                    (a == b for a, b in zip(left_values.tolist(), right_values.tolist())),
                    dtype=bool,
                    count=size,
                )
            ok &= equal
        return ok


def build_join_tree(query: JoinQuery, root: Optional[str] = None) -> JoinTree:
    """Build a rooted join tree (skeleton) for ``query``.

    The tree is a BFS spanning tree of the join graph rooted at ``root``
    (default: the query's first relation).  Conditions between a node and a
    relation already in the tree that is *not* its parent become residual
    conditions — for chain and acyclic joins this set is empty, for cyclic
    joins it contains the cycle-breaking conditions of §8.2.

    The cycle-breaking heuristic follows Zhao et al.: prefer keeping tree
    edges with *small* maximum degree on the child side, which keeps the
    skeleton's Olken bound (and hence the rejection rate) low.
    """
    root_name = root or query.root_relation
    if root_name not in query.relations:
        raise KeyError(f"root relation {root_name!r} not in query {query.name!r}")
    adjacency = query.adjacency()

    nodes: Dict[str, JoinTreeNode] = {root_name: JoinTreeNode(root_name)}
    used_pairs: set[frozenset] = set()
    frontier = [root_name]
    while frontier:
        current = frontier.pop(0)
        # Deterministic, bound-friendly expansion order: smaller max degree first.
        neighbours = sorted(
            adjacency[current].items(),
            key=lambda item: (_edge_bound(query, current, item[0], item[1]), item[0]),
        )
        for neighbour, conditions in neighbours:
            if neighbour in nodes:
                continue
            parent_attrs = tuple(c.attribute_for(current) for c in conditions)
            child_attrs = tuple(c.attribute_for(neighbour) for c in conditions)
            child_node = JoinTreeNode(neighbour, parent_attrs, child_attrs)
            nodes[current].children.append(child_node)
            nodes[neighbour] = child_node
            used_pairs.add(frozenset((current, neighbour)))
            frontier.append(neighbour)

    if len(nodes) != len(query.relation_names):
        missing = set(query.relation_names) - set(nodes)
        raise ValueError(f"join graph of {query.name!r} is disconnected; missing {missing}")

    residuals = tuple(
        cond
        for cond in query.conditions
        if frozenset(cond.relations()) not in used_pairs
    )
    tree = JoinTree(query, nodes[root_name], residuals)
    if query.join_type is not JoinType.CYCLIC and residuals:
        raise AssertionError(
            f"non-cyclic query {query.name!r} produced residual conditions {residuals}"
        )
    return tree


def _edge_bound(
    query: JoinQuery, parent: str, child: str, conditions: Sequence[JoinCondition]
) -> int:
    """Max degree of the child-side join key: the per-hop Olken factor."""
    child_rel = query.relation(child)
    child_attrs = tuple(c.attribute_for(child) for c in conditions)
    return child_rel.statistics_on_columns(child_attrs).max_degree


__all__ = ["JoinTree", "JoinTreeNode", "build_join_tree"]
