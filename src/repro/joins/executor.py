"""Ground-truth execution of join queries.

The sampling framework never needs full joins; this executor exists to provide
the *exact* baseline the paper calls ``FullJoinUnion``: exact join sizes,
exact overlap sizes, exact union sizes, and materialized result sets used to
validate uniformity in tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery, check_union_compatible

ResultValue = Tuple


def iterate_join_assignments(
    query: JoinQuery, tree: Optional[JoinTree] = None
) -> Iterator[Dict[str, int]]:
    """Yield every complete row assignment (relation -> row position) of the join.

    Assignments are produced by a depth-first walk of the join tree guided by
    hash indexes; residual (cycle-breaking) conditions are verified before an
    assignment is emitted.  Each yielded dict is an independent copy.
    """
    tree = tree or build_join_tree(query)
    root_rel = query.relation(tree.root.relation)
    assignment: Dict[str, int] = {}

    def bind_subtree(node: JoinTreeNode) -> Iterator[None]:
        """Yield once per way of binding every descendant of ``node``.

        Precondition: ``node.relation`` is already bound in ``assignment``.
        Bindings are written into ``assignment`` in place and removed on
        backtracking.
        """

        def bind_children(idx: int) -> Iterator[None]:
            if idx == len(node.children):
                yield None
                return
            child = node.children[idx]
            parent_rel = query.relation(node.relation)
            child_rel = query.relation(child.relation)
            key = tuple(
                parent_rel.value(assignment[node.relation], attr)
                for attr in child.parent_attributes
            )
            lookup = key if len(key) > 1 else key[0]
            index = child_rel.index_on_columns(child.child_attributes)
            for pos in index.positions(lookup):
                assignment[child.relation] = pos
                for _ in bind_subtree(child):
                    yield from bind_children(idx + 1)
                del assignment[child.relation]

        yield from bind_children(0)

    for root_pos in range(len(root_rel)):
        assignment.clear()
        assignment[tree.root.relation] = root_pos
        for _ in bind_subtree(tree.root):
            if tree.residual_satisfied(assignment):
                yield dict(assignment)


def execute_join(query: JoinQuery) -> List[ResultValue]:
    """Materialize the join and return the list of output values (``t.val``).

    Duplicate values are preserved (the multiset of join results projected
    onto the output attributes).
    """
    tree = build_join_tree(query)
    return [query.project_assignment(a) for a in iterate_join_assignments(query, tree)]


def join_result_set(query: JoinQuery) -> Set[ResultValue]:
    """The *set* of distinct output values produced by the join."""
    return set(execute_join(query))


def exact_join_size(query: JoinQuery, distinct: bool = True) -> int:
    """Exact join size.

    With ``distinct=True`` (default) this is the number of distinct output
    values, which is the size the union framework reasons about (the paper
    assumes joins contain no duplicate tuples, §3).  With ``distinct=False``
    it is the raw number of join results.
    """
    results = execute_join(query)
    return len(set(results)) if distinct else len(results)


def exact_overlap_size(queries: Sequence[JoinQuery]) -> int:
    """Exact size of the overlap ``|O_Δ|`` of the given joins."""
    if not queries:
        return 0
    check_union_compatible(list(queries))
    common: Optional[Set[ResultValue]] = None
    for query in queries:
        values = join_result_set(query)
        common = values if common is None else (common & values)
        if not common:
            return 0
    return len(common) if common else 0


def exact_union_size(queries: Sequence[JoinQuery]) -> int:
    """Exact size of the set union ``|J_1 ∪ ... ∪ J_n|``."""
    check_union_compatible(list(queries))
    union: Set[ResultValue] = set()
    for query in queries:
        union |= join_result_set(query)
    return len(union)


def exact_disjoint_union_size(queries: Sequence[JoinQuery]) -> int:
    """Exact size of the disjoint (bag) union ``|J_1| + ... + |J_n|``."""
    check_union_compatible(list(queries))
    return sum(exact_join_size(q, distinct=True) for q in queries)


__all__ = [
    "ResultValue",
    "iterate_join_assignments",
    "execute_join",
    "join_result_set",
    "exact_join_size",
    "exact_overlap_size",
    "exact_union_size",
    "exact_disjoint_union_size",
]
