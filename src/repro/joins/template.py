"""Standard templates for overlap estimation over heterogeneous joins (§8.1).

When the joins of a union do not consist of positionally corresponding
relations (different lengths, different schemas — e.g. the UQ3 workload), the
histogram-based overlap estimator first rewrites every join into a *base
chain* of two-attribute relations, all following one shared ordering of the
output attributes called the **standard template**.

A good template keeps attributes that co-occur in the original relations next
to each other, because such pairs can be materialized without estimating a
sub-join ("fake joins" preserve the most information, §8.1.2).  The paper
formalizes this with the *pairwise attribute score*

    score(A, A') = Σ_j Dist_j(A, A')

where ``Dist_j`` is the number of joins needed to bring ``A`` and ``A'``
together in join ``J_j`` (0 when they live in the same relation), and searches
for the attribute ordering whose consecutive pairs minimize the total score.
This module computes the scores and performs the search (exact Held–Karp
dynamic programming for small attribute sets, greedy nearest-neighbour
otherwise).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.joins.query import JoinQuery

#: Attribute count up to which the exact DP ordering search is used.
_EXACT_SEARCH_LIMIT = 10


@dataclass(frozen=True)
class Template:
    """An ordering of the standardized output attributes.

    The induced base chain is ``(A_1, A_2) ⋈ (A_2, A_3) ⋈ ... ⋈ (A_{m-1}, A_m)``.
    """

    attributes: Tuple[str, ...]
    score: float

    def __len__(self) -> int:
        return len(self.attributes)

    def pairs(self) -> List[Tuple[str, str]]:
        """Consecutive attribute pairs — the two-attribute split relations."""
        return list(zip(self.attributes, self.attributes[1:]))


def relation_distances(query: JoinQuery) -> Dict[str, Dict[str, int]]:
    """All-pairs shortest-path distances (in number of joins) between relations."""
    adjacency = query.adjacency()
    distances: Dict[str, Dict[str, int]] = {}
    for source in query.relation_names:
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for neighbour in adjacency[node]:
                    if neighbour not in dist:
                        dist[neighbour] = dist[node] + 1
                        nxt.append(neighbour)
            frontier = nxt
        distances[source] = dist
    return distances


def attribute_distance(query: JoinQuery, first: str, second: str) -> int:
    """``Dist_j(A, A')``: joins needed to co-locate two output attributes in ``query``."""
    sources = query.output_sources()
    if first not in sources or second not in sources:
        raise KeyError(f"query {query.name!r} does not produce both {first!r} and {second!r}")
    rel_a = sources[first][0]
    rel_b = sources[second][0]
    if rel_a == rel_b:
        return 0
    return relation_distances(query)[rel_a][rel_b]


def pairwise_scores(
    queries: Sequence[JoinQuery],
    zero_distance_weight: float = 0.0,
) -> Dict[Tuple[str, str], float]:
    """Score every unordered pair of output attributes across all joins.

    ``zero_distance_weight`` is the paper's *alternating score* hyper-parameter
    (§8.1.2): the value credited to a pair whose attributes already live in the
    same relation of a join.  The default 0.0 gives such pairs the highest
    priority; small positive values soften that preference.
    """
    if not queries:
        raise ValueError("at least one query is required")
    attributes = queries[0].output_schema
    for query in queries[1:]:
        if query.output_schema != attributes:
            raise ValueError("all queries must share the same output schema")
    # Cache the per-query distance maps once.
    per_query_distances = []
    for query in queries:
        sources = query.output_sources()
        distances = relation_distances(query)
        per_query_distances.append((sources, distances))

    scores: Dict[Tuple[str, str], float] = {}
    for first, second in itertools.combinations(attributes, 2):
        total = 0.0
        for sources, distances in per_query_distances:
            rel_a = sources[first][0]
            rel_b = sources[second][0]
            d = 0 if rel_a == rel_b else distances[rel_a][rel_b]
            total += zero_distance_weight if d == 0 else float(d)
        scores[(first, second)] = total
        scores[(second, first)] = total
    return scores


def find_standard_template(
    queries: Sequence[JoinQuery],
    zero_distance_weight: float = 0.0,
    attributes: Optional[Sequence[str]] = None,
) -> Template:
    """Find the attribute ordering with minimum total consecutive-pair score.

    Uses exact Held–Karp dynamic programming for up to
    ``_EXACT_SEARCH_LIMIT`` attributes and a greedy nearest-neighbour
    construction (best of all start attributes) beyond that.
    """
    attrs = tuple(attributes) if attributes is not None else queries[0].output_schema
    if len(attrs) < 2:
        return Template(attrs, 0.0)
    scores = pairwise_scores(queries, zero_distance_weight)

    def score(a: str, b: str) -> float:
        return scores[(a, b)]

    if len(attrs) <= _EXACT_SEARCH_LIMIT:
        order, total = _exact_min_path(attrs, score)
    else:
        order, total = _greedy_min_path(attrs, score)
    return Template(tuple(order), total)


def _exact_min_path(attrs: Sequence[str], score) -> Tuple[List[str], float]:
    """Held–Karp DP for the minimum-cost Hamiltonian path over ``attrs``."""
    n = len(attrs)
    full = (1 << n) - 1
    # dp[(mask, last)] = (cost, predecessor_last)
    dp: Dict[Tuple[int, int], Tuple[float, Optional[int]]] = {}
    for i in range(n):
        dp[(1 << i, i)] = (0.0, None)
    for mask in range(1, full + 1):
        for last in range(n):
            if not mask & (1 << last) or (mask, last) not in dp:
                continue
            cost, _ = dp[(mask, last)]
            for nxt in range(n):
                if mask & (1 << nxt):
                    continue
                new_mask = mask | (1 << nxt)
                new_cost = cost + score(attrs[last], attrs[nxt])
                key = (new_mask, nxt)
                if key not in dp or new_cost < dp[key][0]:
                    dp[key] = (new_cost, last)
    best_last, best_cost = None, float("inf")
    for last in range(n):
        cost, _ = dp[(full, last)]
        if cost < best_cost:
            best_cost, best_last = cost, last
    # Reconstruct the ordering.
    order_idx: List[int] = []
    mask, last = full, best_last
    while last is not None:
        order_idx.append(last)
        _, prev = dp[(mask, last)]
        mask &= ~(1 << last)
        last = prev
    order_idx.reverse()
    return [attrs[i] for i in order_idx], best_cost


def _greedy_min_path(attrs: Sequence[str], score) -> Tuple[List[str], float]:
    """Greedy nearest-neighbour ordering, best over all start attributes."""
    best_order, best_cost = list(attrs), float("inf")
    for start in attrs:
        remaining = [a for a in attrs if a != start]
        order = [start]
        cost = 0.0
        while remaining:
            current = order[-1]
            nxt = min(remaining, key=lambda a: score(current, a))
            cost += score(current, nxt)
            order.append(nxt)
            remaining.remove(nxt)
        if cost < best_cost:
            best_order, best_cost = order, cost
    return best_order, best_cost


__all__ = [
    "Template",
    "relation_distances",
    "attribute_distance",
    "pairwise_scores",
    "find_standard_template",
]
