"""Join queries.

A :class:`JoinQuery` bundles base relations, equi-join conditions, optional
pushed-down selection predicates, and an output-attribute mapping.  It is the
unit the union-sampling framework operates on: the set ``S = {J_1, ..., J_n}``
of the paper is a list of :class:`JoinQuery` objects with aligned output
schemas.

The query classifies itself as *chain*, *acyclic*, or *cyclic* from its join
graph, matching the three join classes handled by the paper.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.joins.conditions import JoinCondition, OutputAttribute
from repro.relational.predicates import Predicate
from repro.relational.relation import Relation


class JoinType(str, Enum):
    """The structural class of a join query."""

    CHAIN = "chain"
    ACYCLIC = "acyclic"
    CYCLIC = "cyclic"


class JoinQuery:
    """A multi-way equi-join over named base relations.

    Parameters
    ----------
    name:
        Query name (``J_1`` ... in the paper); must be unique within a union.
    relations:
        The base relations, in declaration order.  The first relation is the
        default root for join trees, matching the paper's convention for chain
        joins (``R_{j,1}`` is the sampling root).
    conditions:
        Equi-join conditions referencing the relations by name.  Self-joins are
        expressed by registering the same underlying data twice under two
        aliases (the paper's ``Orders1_W`` / ``Orders2_W``).
    output_attributes:
        Mapping of the standardized output schema onto source
        ``(relation, attribute)`` pairs.  Join results are identified by their
        projection onto these attributes (``t.val`` in the paper).
    predicates:
        Optional per-relation selection predicates.  By default they are pushed
        down (the relation is filtered up front, §8.3 first alternative).
    """

    def __init__(
        self,
        name: str,
        relations: Sequence[Relation],
        conditions: Sequence[JoinCondition],
        output_attributes: Sequence[OutputAttribute],
        predicates: Optional[Mapping[str, Predicate]] = None,
        push_down_predicates: bool = True,
    ) -> None:
        if not name:
            raise ValueError("join query name must be non-empty")
        if not relations:
            raise ValueError("a join query needs at least one relation")
        names = [r.name for r in relations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate relation names in query {name!r}: {names}")
        self.name = name
        self.predicates: Dict[str, Predicate] = dict(predicates or {})
        self.push_down_predicates = push_down_predicates

        if push_down_predicates and self.predicates:
            relations = [
                rel.select(self.predicates[rel.name], name=rel.name)
                if rel.name in self.predicates
                else rel
                for rel in relations
            ]
        self._relations: Dict[str, Relation] = {r.name: r for r in relations}
        self.relation_order: Tuple[str, ...] = tuple(r.name for r in relations)

        self.conditions: Tuple[JoinCondition, ...] = tuple(conditions)
        for cond in self.conditions:
            for rel_name in cond.relations():
                if rel_name not in self._relations:
                    raise ValueError(
                        f"condition {cond} references unknown relation {rel_name!r}"
                    )
            left = self._relations[cond.left_relation]
            right = self._relations[cond.right_relation]
            if cond.left_attribute not in left.schema:
                raise ValueError(f"{cond}: {cond.left_attribute!r} not in {left.name!r}")
            if cond.right_attribute not in right.schema:
                raise ValueError(f"{cond}: {cond.right_attribute!r} not in {right.name!r}")

        self.output_attributes: Tuple[OutputAttribute, ...] = tuple(output_attributes)
        if not self.output_attributes:
            raise ValueError(f"query {name!r} declares no output attributes")
        out_names = [a.name for a in self.output_attributes]
        if len(set(out_names)) != len(out_names):
            raise ValueError(f"duplicate output attribute names in query {name!r}")
        for out in self.output_attributes:
            if out.relation not in self._relations:
                raise ValueError(
                    f"output attribute {out} references unknown relation {out.relation!r}"
                )
            if out.attribute not in self._relations[out.relation].schema:
                raise ValueError(
                    f"output attribute {out}: {out.attribute!r} not in {out.relation!r}"
                )

        if len(self._relations) > 1 and not self.conditions:
            raise ValueError(f"query {name!r} has multiple relations but no join conditions")

        self._join_type: Optional[JoinType] = None

    # ------------------------------------------------------------------ access
    @property
    def relations(self) -> Dict[str, Relation]:
        """Name -> relation map (after predicate push-down, if enabled)."""
        return self._relations

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"query {self.name!r} has no relation {name!r}") from None

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return self.relation_order

    @property
    def root_relation(self) -> str:
        """Default sampling root (the first declared relation)."""
        return self.relation_order[0]

    @property
    def output_schema(self) -> Tuple[str, ...]:
        """Names of the standardized output attributes, in order."""
        return tuple(a.name for a in self.output_attributes)

    def output_sources(self) -> Dict[str, Tuple[str, str]]:
        """Output name -> (relation, attribute) source map."""
        return {a.name: (a.relation, a.attribute) for a in self.output_attributes}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JoinQuery({self.name!r}, relations={list(self.relation_order)}, "
            f"type={self.join_type.value})"
        )

    # -------------------------------------------------------------- structure
    def adjacency(self) -> Dict[str, Dict[str, List[JoinCondition]]]:
        """Adjacency map of the join graph: rel -> neighbour -> conditions."""
        adj: Dict[str, Dict[str, List[JoinCondition]]] = {
            name: {} for name in self.relation_order
        }
        for cond in self.conditions:
            a, b = cond.relations()
            adj[a].setdefault(b, []).append(cond)
            adj[b].setdefault(a, []).append(cond.reversed())
        return adj

    @property
    def join_type(self) -> JoinType:
        """Chain / acyclic / cyclic classification of the join graph.

        * *chain*: the graph (collapsing parallel conditions) is a simple path;
        * *acyclic*: the graph is a tree (or forest collapsed to one component);
        * *cyclic*: the graph has at least one cycle.
        """
        if self._join_type is None:
            self._join_type = self._classify()
        return self._join_type

    def _classify(self) -> JoinType:
        names = list(self.relation_order)
        if len(names) == 1:
            return JoinType.CHAIN
        adj = self.adjacency()
        # Connectivity check (a disconnected join would be a cross product).
        seen = {names[0]}
        stack = [names[0]]
        while stack:
            node = stack.pop()
            for neighbour in adj[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        if len(seen) != len(names):
            raise ValueError(
                f"query {self.name!r} is disconnected (cross products are not supported)"
            )
        edge_count = len({frozenset(c.relations()) for c in self.conditions})
        if edge_count > len(names) - 1:
            return JoinType.CYCLIC
        degrees = {name: len(adj[name]) for name in names}
        # A chain join is a path graph declared in chain order: the first
        # relation must be an endpoint so that the default join tree (rooted at
        # the first relation) is itself a path.
        if all(d <= 2 for d in degrees.values()) and degrees[names[0]] <= 1:
            return JoinType.CHAIN
        return JoinType.ACYCLIC

    @property
    def is_chain(self) -> bool:
        return self.join_type is JoinType.CHAIN

    @property
    def is_cyclic(self) -> bool:
        return self.join_type is JoinType.CYCLIC

    # -------------------------------------------------------------- tuple ops
    def project_assignment(self, assignment: Mapping[str, int]) -> Tuple:
        """Output value (``t.val``) of a complete row assignment.

        ``assignment`` maps relation name -> row position in that relation.
        """
        values = []
        for out in self.output_attributes:
            rel = self._relations[out.relation]
            values.append(rel.value(assignment[out.relation], out.attribute))
        return tuple(values)

    def aligns_with(self, other: "JoinQuery") -> bool:
        """True when both queries produce the same standardized output schema."""
        return self.output_schema == other.output_schema


def check_union_compatible(queries: Sequence[JoinQuery]) -> None:
    """Raise ``ValueError`` unless all queries share the same output schema
    and have distinct names (requirement of Definition 1/2 in the paper)."""
    if not queries:
        raise ValueError("a union needs at least one join query")
    names = [q.name for q in queries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate join query names: {names}")
    base = queries[0]
    for q in queries[1:]:
        if not base.aligns_with(q):
            raise ValueError(
                "join queries are not union-compatible: "
                f"{base.name}:{base.output_schema} vs {q.name}:{q.output_schema}"
            )


__all__ = ["JoinQuery", "JoinType", "check_union_compatible"]
