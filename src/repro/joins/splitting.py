"""The splitting method: rewriting joins into base chains of 2-attribute relations.

Section 5.2 of the paper generalizes the equi-length chain overlap bound to
joins of arbitrary length and schema by *splitting*: every join is rewritten as
a chain of derived relations with exactly two attributes each, all following
one :class:`~repro.joins.template.Template`.  The derived joins are lossless
(they generate the same result) and positionally aligned across joins, which is
exactly what the degree-comparison bound of §5.1 needs.

Two kinds of derived relations appear:

* **materializable** split relations whose two attributes already co-occur in
  one original relation — their degree statistics are read directly from that
  relation; the join between two consecutive split relations coming from the
  same original relation is a *fake join* (its per-hop blow-up factor is 1);
* **estimated** split relations whose attributes live in different original
  relations — producing the pair requires a sub-join along the path between
  those relations, so degrees, maximum degrees and sizes are *upper bounds*
  obtained by multiplying per-hop maximum degrees (§8.1.2).

The classes here only carry statistics; they never materialize derived rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.joins.query import JoinQuery
from repro.joins.template import Template, find_standard_template


@dataclass
class SplitRelation:
    """Statistics of one derived two-attribute relation ``(first, second)``.

    Attribute names are the *standardized output names*; ``sources`` records
    which original relations the derived relation spans (a single name for
    materializable split relations, the whole path for estimated ones).
    """

    query_name: str
    first: str
    second: str
    sources: Tuple[str, ...]
    size_bound: float
    #: per-attribute degree histograms (value -> upper bound on frequency)
    _degrees: Dict[str, Dict[object, float]] = field(default_factory=dict, repr=False)
    #: per-attribute maximum/average degree upper bounds
    _max_degrees: Dict[str, float] = field(default_factory=dict, repr=False)
    _avg_degrees: Dict[str, float] = field(default_factory=dict, repr=False)

    @property
    def is_materializable(self) -> bool:
        """True when both attributes come from one original relation."""
        return len(self.sources) == 1

    def degree(self, attribute: str, value: object) -> float:
        """Upper bound on the frequency of ``value`` in ``attribute``."""
        self._check(attribute)
        return self._degrees[attribute].get(value, 0.0)

    def degrees(self, attribute: str) -> Dict[object, float]:
        """Full degree histogram of ``attribute`` (value -> bound)."""
        self._check(attribute)
        return self._degrees[attribute]

    def max_degree(self, attribute: str) -> float:
        self._check(attribute)
        return self._max_degrees[attribute]

    def average_degree(self, attribute: str) -> float:
        self._check(attribute)
        return self._avg_degrees[attribute]

    def _check(self, attribute: str) -> None:
        if attribute not in (self.first, self.second):
            raise KeyError(
                f"split relation ({self.first}, {self.second}) has no attribute {attribute!r}"
            )


@dataclass
class SplitChain:
    """The base-chain rewriting of one join query under a template.

    ``relations[i]`` holds attributes ``(A_i, A_{i+1})`` of the template;
    consecutive split relations join on the shared attribute, and
    ``fake_joins[i]`` says whether the join between ``relations[i]`` and
    ``relations[i+1]`` is fake (both derived from the same original relation).
    """

    query_name: str
    template: Template
    relations: List[SplitRelation]
    fake_joins: List[bool]

    def __len__(self) -> int:
        return len(self.relations)

    def join_attribute(self, hop: int) -> str:
        """The shared attribute between split relations ``hop`` and ``hop + 1``."""
        return self.relations[hop].second


def build_split_chain(query: JoinQuery, template: Template) -> SplitChain:
    """Rewrite ``query`` as a base chain aligned to ``template``."""
    attrs = template.attributes
    missing = [a for a in attrs if a not in query.output_schema]
    if missing:
        raise ValueError(
            f"template attributes {missing} are not produced by query {query.name!r}"
        )
    relations = [
        _build_split_relation(query, attrs[i], attrs[i + 1]) for i in range(len(attrs) - 1)
    ]
    fake_joins = []
    for left, right in zip(relations, relations[1:]):
        fake = (
            left.is_materializable
            and right.is_materializable
            and left.sources[0] == right.sources[0]
        )
        fake_joins.append(fake)
    return SplitChain(query.name, template, relations, fake_joins)


def build_split_chains(
    queries: Sequence[JoinQuery],
    template: Optional[Template] = None,
    zero_distance_weight: float = 0.0,
) -> List[SplitChain]:
    """Split every query in a union against one shared template.

    When ``template`` is omitted, the standard template is searched with
    :func:`~repro.joins.template.find_standard_template`.
    """
    if template is None:
        template = find_standard_template(queries, zero_distance_weight=zero_distance_weight)
    return [build_split_chain(q, template) for q in queries]


# --------------------------------------------------------------------------- helpers
def _shortest_path(query: JoinQuery, source: str, target: str) -> List[str]:
    """Shortest relation path between two relations in the join graph."""
    if source == target:
        return [source]
    adjacency = query.adjacency()
    previous: Dict[str, str] = {}
    frontier = [source]
    seen = {source}
    while frontier:
        nxt: List[str] = []
        for node in frontier:
            for neighbour in adjacency[node]:
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                previous[neighbour] = node
                if neighbour == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(previous[path[-1]])
                    path.reverse()
                    return path
                nxt.append(neighbour)
        frontier = nxt
    raise ValueError(f"no path between {source!r} and {target!r} in query {query.name!r}")


def _hop_max_degree(query: JoinQuery, parent: str, child: str) -> float:
    """Maximum degree of the join key on the ``child`` side of the hop."""
    adjacency = query.adjacency()
    conditions = adjacency[parent][child]
    child_attrs = tuple(c.attribute_for(child) for c in conditions)
    return float(query.relation(child).statistics_on_columns(child_attrs).max_degree)


def _hop_average_degree(query: JoinQuery, parent: str, child: str) -> float:
    adjacency = query.adjacency()
    conditions = adjacency[parent][child]
    child_attrs = tuple(c.attribute_for(child) for c in conditions)
    return float(query.relation(child).statistics_on_columns(child_attrs).average_degree)


def _build_split_relation(query: JoinQuery, first: str, second: str) -> SplitRelation:
    sources = query.output_sources()
    first_rel, first_attr = sources[first]
    second_rel, second_attr = sources[second]

    if first_rel == second_rel:
        relation = query.relation(first_rel)
        split = SplitRelation(
            query_name=query.name,
            first=first,
            second=second,
            sources=(first_rel,),
            size_bound=float(len(relation)),
        )
        for out_name, attr in ((first, first_attr), (second, second_attr)):
            stats = relation.statistics_on(attr)
            split._degrees[out_name] = {v: float(c) for v, c in stats.frequencies().items()}
            split._max_degrees[out_name] = float(stats.max_degree)
            split._avg_degrees[out_name] = float(stats.average_degree)
        return split

    # Estimated split relation: the pair requires a sub-join along the path
    # between the two source relations.  Degrees and sizes are upper bounds
    # obtained by multiplying per-hop maximum degrees (§8.1.2).
    path = _shortest_path(query, first_rel, second_rel)
    hop_factor = 1.0
    for parent, child in zip(path, path[1:]):
        hop_factor *= max(_hop_max_degree(query, parent, child), 0.0)

    split = SplitRelation(
        query_name=query.name,
        first=first,
        second=second,
        sources=tuple(path),
        size_bound=float(len(query.relation(first_rel))) * hop_factor,
    )

    for out_name, attr, own_rel, other_rel in (
        (first, first_attr, first_rel, second_rel),
        (second, second_attr, second_rel, first_rel),
    ):
        relation = query.relation(own_rel)
        stats = relation.statistics_on(attr)
        own_path = _shortest_path(query, own_rel, other_rel)
        blow_up = 1.0
        for parent, child in zip(own_path, own_path[1:]):
            blow_up *= max(_hop_max_degree(query, parent, child), 0.0)
        split._degrees[out_name] = {
            v: float(c) * blow_up for v, c in stats.frequencies().items()
        }
        split._max_degrees[out_name] = float(stats.max_degree) * blow_up
        split._avg_degrees[out_name] = float(stats.average_degree) * blow_up
    return split


__all__ = ["SplitRelation", "SplitChain", "build_split_chain", "build_split_chains"]
