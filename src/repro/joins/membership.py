"""Membership probing: can a join produce a given output value?

The random-walk overlap estimator (paper §6.2) checks, for a result tuple
sampled from one join, whether every other join in the overlap set Δ also
contains it.  The paper performs this with keyed hash-table queries over the
other joins' relations — ``(N-1)×(M-1)`` key lookups.

:class:`JoinMembershipProber` implements the check as a backtracking search
over the join tree.  At every relation it intersects two constraints:

* the output-attribute values that the candidate tuple fixes in this relation,
* the equi-join key with the already-bound parent row,

and verifies residual (cycle-breaking) conditions once all relations are
bound.  Indexes make each step a hash lookup, so the probe never scans a
relation unless the tuple fixes no attribute of it at the root.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.joins.join_tree import JoinTree, JoinTreeNode, build_join_tree
from repro.joins.query import JoinQuery


class JoinMembershipProber:
    """Answers ``value ∈ J`` for output values of a union-compatible join."""

    def __init__(self, query: JoinQuery, tree: Optional[JoinTree] = None) -> None:
        self.query = query
        self.tree = tree or build_join_tree(query)
        #: relation name -> list of (attribute, output position) constraints
        self._constraints: Dict[str, List[Tuple[str, int]]] = {}
        for position, out in enumerate(query.output_attributes):
            self._constraints.setdefault(out.relation, []).append((out.attribute, position))
        #: pre-order list of (node, parent relation name or None)
        self._order: List[Tuple[JoinTreeNode, Optional[str]]] = []
        self._collect_order(self.tree.root, None)
        self.probe_count = 0
        self.lookup_count = 0

    def _collect_order(self, node: JoinTreeNode, parent: Optional[str]) -> None:
        self._order.append((node, parent))
        for child in node.children:
            self._collect_order(child, node.relation)

    # ------------------------------------------------------------------ public
    def contains(self, value: Sequence) -> bool:
        """True when the join can produce the output value ``value``."""
        if len(value) != len(self.query.output_attributes):
            raise ValueError(
                f"value has {len(value)} fields but query {self.query.name!r} "
                f"produces {len(self.query.output_attributes)}"
            )
        self.probe_count += 1
        return self._search(tuple(value), {}, 0)

    def count_containing(self, values: Iterable[Sequence]) -> int:
        """Number of the given values contained in the join."""
        return sum(1 for v in values if self.contains(v))

    # ---------------------------------------------------------------- internal
    def _candidate_rows(
        self,
        relation_name: str,
        value: Tuple,
        key_attrs: Tuple[str, ...],
        key: Tuple,
    ) -> List[int]:
        """Row positions of ``relation_name`` matching the join key and the
        output-value constraints that fall on this relation."""
        relation = self.query.relation(relation_name)
        constraints = self._constraints.get(relation_name, [])
        self.lookup_count += 1
        if key_attrs:
            index = relation.index_on_columns(key_attrs)
            lookup = key if len(key) > 1 else key[0]
            positions: Iterable[int] = index.positions(lookup)
        elif constraints:
            # No join key (root): seed the search from an output constraint
            # instead of scanning the relation.
            attr, out_pos = constraints[0]
            positions = relation.index_on(attr).positions(value[out_pos])
        else:
            positions = range(len(relation))
        if not constraints:
            return list(positions)
        matched = []
        for pos in positions:
            if all(
                relation.value(pos, attr) == value[out_pos] for attr, out_pos in constraints
            ):
                matched.append(pos)
        return matched

    def _search(self, value: Tuple, assignment: Dict[str, int], depth: int) -> bool:
        if depth == len(self._order):
            return self.tree.residual_satisfied(assignment)
        node, parent = self._order[depth]
        if parent is None:
            key_attrs: Tuple[str, ...] = ()
            key: Tuple = ()
        else:
            parent_rel = self.query.relation(parent)
            key_attrs = node.child_attributes
            key = tuple(
                parent_rel.value(assignment[parent], attr) for attr in node.parent_attributes
            )
        for pos in self._candidate_rows(node.relation, value, key_attrs, key):
            assignment[node.relation] = pos
            if self._search(value, assignment, depth + 1):
                return True
            del assignment[node.relation]
        return False


class UnionMembershipIndex:
    """Membership probers for every join in a union, plus owner resolution.

    The *owner* of a value is the first join (in declaration order) that
    contains it — exactly the cover assignment used by the set-union sampling
    algorithms.
    """

    def __init__(self, queries: Sequence[JoinQuery]) -> None:
        self.queries = list(queries)
        self.probers = {q.name: JoinMembershipProber(q) for q in self.queries}

    def contains(self, query_name: str, value: Sequence) -> bool:
        return self.probers[query_name].contains(value)

    def owner(self, value: Sequence) -> Optional[str]:
        """Name of the first join containing ``value`` (None when absent from all)."""
        for query in self.queries:
            if self.probers[query.name].contains(value):
                return query.name
        return None

    def containing_joins(self, value: Sequence) -> List[str]:
        """Names of all joins containing ``value``."""
        return [q.name for q in self.queries if self.probers[q.name].contains(value)]


__all__ = ["JoinMembershipProber", "UnionMembershipIndex"]
