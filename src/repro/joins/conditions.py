"""Equi-join conditions and output attribute mappings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join condition ``left.left_attribute == right.right_attribute``.

    The two sides reference relations by name within one
    :class:`~repro.joins.query.JoinQuery`.  A pair of relations may be linked
    by several conditions (a composite join key); the join-tree builder groups
    such conditions onto one edge.
    """

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str

    def __post_init__(self) -> None:
        if self.left_relation == self.right_relation:
            raise ValueError(
                "self-join conditions must reference two aliases of the relation; "
                f"got {self.left_relation!r} on both sides"
            )

    def relations(self) -> Tuple[str, str]:
        return (self.left_relation, self.right_relation)

    def touches(self, relation: str) -> bool:
        return relation in (self.left_relation, self.right_relation)

    def attribute_for(self, relation: str) -> str:
        """The attribute of this condition that lives in ``relation``."""
        if relation == self.left_relation:
            return self.left_attribute
        if relation == self.right_relation:
            return self.right_attribute
        raise KeyError(f"{relation!r} is not part of this condition: {self}")

    def other(self, relation: str) -> Tuple[str, str]:
        """The ``(relation, attribute)`` pair on the other side of ``relation``."""
        if relation == self.left_relation:
            return (self.right_relation, self.right_attribute)
        if relation == self.right_relation:
            return (self.left_relation, self.left_attribute)
        raise KeyError(f"{relation!r} is not part of this condition: {self}")

    def reversed(self) -> "JoinCondition":
        return JoinCondition(
            self.right_relation, self.right_attribute, self.left_relation, self.left_attribute
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.left_relation}.{self.left_attribute} = "
            f"{self.right_relation}.{self.right_attribute}"
        )


@dataclass(frozen=True)
class OutputAttribute:
    """Maps one attribute of the join's output schema to its source.

    The union of joins requires every join to produce the same output schema
    (paper §2).  Each join therefore declares, for every standardized output
    name, which of its relations and attributes supplies the value.

    Attributes
    ----------
    name:
        The standardized output attribute name (shared across joins).
    relation:
        The relation (within this join) that supplies the value.
    attribute:
        The attribute of ``relation`` holding the value.
    """

    name: str
    relation: str
    attribute: str

    @classmethod
    def direct(cls, relation: str, attribute: str) -> "OutputAttribute":
        """Output attribute whose standardized name equals the source attribute."""
        return cls(attribute, relation, attribute)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} <- {self.relation}.{self.attribute}"


__all__ = ["JoinCondition", "OutputAttribute"]
