"""Core union-sampling algorithms and result containers."""

from repro.core.online_sampler import OnlineUnionSampler
from repro.core.result import SampleResult, SamplingStats, UnionSample
from repro.core.union_sampler import (
    BernoulliUnionSampler,
    DisjointUnionSampler,
    SetUnionSampler,
    UnionSamplerBase,
)

__all__ = [
    "UnionSample",
    "SamplingStats",
    "SampleResult",
    "UnionSamplerBase",
    "DisjointUnionSampler",
    "BernoulliUnionSampler",
    "SetUnionSampler",
    "OnlineUnionSampler",
]
