"""Result containers for the union sampling algorithms.

Besides the samples themselves, the experiments of the paper need detailed
accounting: how many draws were spent per join, how many were rejected and
why, how much wall-clock time went to parameter estimation versus accepted
versus rejected answers (Fig. 5f–h), and how the reuse phase compares to the
regular phase (Fig. 6b).  :class:`SamplingStats` collects those counters and
:class:`SampleResult` bundles them with the samples and the parameters used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.estimation.parameters import UnionParameters
from repro.utils.timer import PhaseTimer


@dataclass
class UnionSample:
    """One accepted sample from the union.

    Attributes
    ----------
    value:
        The sampled tuple value (projection onto the standardized output
        attributes).
    source_join:
        Name of the join the tuple was drawn from.
    iteration:
        The sampler iteration at which the tuple was accepted.
    reused:
        True when the tuple came from the warm-up reuse pool (§7).
    """

    value: Tuple
    source_join: str
    iteration: int
    reused: bool = False


@dataclass
class SamplingStats:
    """Counters and timers accumulated by a union sampler run."""

    iterations: int = 0
    accepted: int = 0
    rejected_duplicate: int = 0
    rejected_not_selected: int = 0
    revisions: int = 0
    revision_removed: int = 0
    reused_accepted: int = 0
    reused_rejected: int = 0
    backtrack_rounds: int = 0
    backtrack_removed: int = 0
    draws_per_join: Dict[str, int] = field(default_factory=dict)
    join_sampler_attempts: int = 0
    join_sampler_rejections: int = 0
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    # ------------------------------------------------------------- recording
    def record_draw(self, join_name: str) -> None:
        self.draws_per_join[join_name] = self.draws_per_join.get(join_name, 0) + 1

    # ------------------------------------------------------------------ views
    @property
    def total_draws(self) -> int:
        return sum(self.draws_per_join.values())

    @property
    def rejected(self) -> int:
        return self.rejected_duplicate + self.reused_rejected

    @property
    def acceptance_rate(self) -> float:
        """Accepted samples per union-sampler iteration."""
        if self.iterations == 0:
            return 0.0
        return self.accepted / self.iterations

    @property
    def warmup_seconds(self) -> float:
        return self.timer.get("warmup")

    @property
    def sampling_seconds(self) -> float:
        return self.timer.get("accepted") + self.timer.get("rejected")

    @property
    def total_seconds(self) -> float:
        return self.timer.total()

    def breakdown(self) -> Dict[str, float]:
        """Wall-clock breakdown matching Fig. 5f–h: estimation / accepted / rejected."""
        return {
            "estimation": self.timer.get("warmup") + self.timer.get("estimation_update"),
            "accepted": self.timer.get("accepted"),
            "rejected": self.timer.get("rejected"),
        }

    def time_per_accepted(self, phase: Optional[str] = None) -> float:
        """Average seconds per accepted sample (Fig. 6b).

        ``phase`` may be ``"reuse"`` or ``"regular"`` to restrict the ratio to
        samples accepted in that phase; None uses all accepted samples.
        """
        if phase is None:
            denominator = self.accepted
            numerator = self.timer.get("accepted")
        elif phase == "reuse":
            denominator = self.reused_accepted
            numerator = self.timer.get("reuse_accepted")
        elif phase == "regular":
            denominator = self.accepted - self.reused_accepted
            numerator = self.timer.get("accepted") - self.timer.get("reuse_accepted")
        else:
            raise ValueError("phase must be None, 'reuse' or 'regular'")
        if denominator <= 0:
            return 0.0
        return numerator / denominator

    def describe(self) -> Dict[str, object]:
        return {
            "iterations": self.iterations,
            "accepted": self.accepted,
            "rejected_duplicate": self.rejected_duplicate,
            "revisions": self.revisions,
            "reused_accepted": self.reused_accepted,
            "acceptance_rate": self.acceptance_rate,
            "draws_per_join": dict(self.draws_per_join),
            "time": self.timer.as_dict(),
        }


@dataclass
class SampleResult:
    """The outcome of one union-sampling run."""

    samples: List[UnionSample]
    parameters: UnionParameters
    stats: SamplingStats
    algorithm: str = ""

    def values(self) -> List[Tuple]:
        """The sampled tuple values, in acceptance order."""
        return [s.value for s in self.samples]

    def distinct_values(self) -> List[Tuple]:
        """Distinct sampled values (first occurrence order)."""
        return list(dict.fromkeys(s.value for s in self.samples))

    def __len__(self) -> int:
        return len(self.samples)

    def sources(self) -> Dict[str, int]:
        """Number of accepted samples contributed by each join."""
        counts: Dict[str, int] = {}
        for sample in self.samples:
            counts[sample.source_join] = counts.get(sample.source_join, 0) + 1
        return counts

    def describe(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "samples": len(self.samples),
            "sources": self.sources(),
            "stats": self.stats.describe(),
            "parameters": self.parameters.describe(),
        }


__all__ = ["UnionSample", "SamplingStats", "SampleResult"]
