"""Online union sampling with sample reuse and backtracking — Algorithm 2 (§7).

The histogram-based warm-up is nearly free but loose; the random-walk warm-up
is accurate but costs walks.  The online sampler combines them:

* parameters are initialized with a cheap warm-up (histogram by default, or a
  short random-walk warm-up whose walks seed the reuse pools);
* every iteration proceeds like Algorithm 1, except that when the selected
  join still has warm-up walk results in its pool, one of them is *reused*: a
  pooled tuple ``t`` with walk probability ``p(t)`` is accepted with
  probability ``l / (p(t)·|J_j|)`` (``l`` = current pool size), which restores
  uniformity of the reused tuple within its join (§7, Sample Reuse);
* the probabilities of all tuples obtained so far are recorded; every ``phi``
  recordings the join/overlap/union estimates are refined with the random-walk
  estimator of §6 and *backtracking* re-weights the already accepted samples —
  each accepted tuple is kept with probability
  ``min(1, (|J'_j|'/|U|') / (|J'_j|/|U|))`` so that the retained sample remains
  uniform under the refined parameters;
* refinement stops once the overlap estimates reach the target confidence
  level ``gamma``.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.result import SampleResult, SamplingStats, UnionSample
from repro.core.union_sampler import drain_value_queue
from repro.estimation.histogram import HistogramUnionEstimator
from repro.estimation.parameters import UnionParameters
from repro.estimation.random_walk import CollectedSample, RandomWalkUnionEstimator
from repro.estimation.union_size import (
    compute_all_overlaps,
    compute_k_overlaps,
    cover_sizes_from_overlaps,
    union_size_from_k_overlaps,
)
from repro.joins.membership import UnionMembershipIndex
from repro.joins.query import JoinQuery, check_union_compatible
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import z_value
from repro.utils.rng import BatchedCategorical, RandomState, ensure_rng, spawn_rngs


@dataclass
class _Record:
    """One recorded draw: the tuple value and the probability it carried."""

    value: Tuple
    weight: float  # Horvitz–Thompson style weight used for overlap refinement


class OnlineUnionSampler:
    """Algorithm 2: set-union sampling with sample reuse and backtracking."""

    algorithm = "online-set-union"

    def __init__(
        self,
        queries: Sequence[JoinQuery],
        seed: RandomState = None,
        warmup: str = "random-walk",
        reuse: bool = True,
        phi: int = 200,
        gamma: float = 0.9,
        join_weights: str = "ew",
        walks_per_join: int = 500,
        warmup_estimator: Optional[RandomWalkUnionEstimator | HistogramUnionEstimator] = None,
        max_iterations_factor: int = 1000,
    ) -> None:
        check_union_compatible(list(queries))
        if warmup not in ("random-walk", "histogram"):
            raise ValueError("warmup must be 'random-walk' or 'histogram'")
        if phi <= 0:
            raise ValueError("phi must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.queries: List[JoinQuery] = list(queries)
        self.names = [q.name for q in self.queries]
        self._positions = {name: i for i, name in enumerate(self.names)}
        self.reuse = reuse
        self.phi = phi
        self.gamma = gamma
        self.max_iterations_factor = max_iterations_factor
        self.rng = ensure_rng(seed)
        self.stats = SamplingStats()
        self.confidence_level = 0.0

        with self.stats.timer.phase("warmup"):
            # Derive the warm-up and per-join streams from self.rng instead of
            # sharing the generator itself: handing self.rng to the estimator
            # would alias its walk stream with this sampler's selection and
            # backtracking draws (see the aliasing contract in repro.utils.rng).
            warmup_rng, sampler_parent = spawn_rngs(self.rng, 2)
            if warmup_estimator is not None:
                estimator = warmup_estimator
            elif warmup == "random-walk":
                estimator = RandomWalkUnionEstimator(
                    self.queries, walks_per_join=walks_per_join, seed=warmup_rng
                )
            else:
                estimator = HistogramUnionEstimator(self.queries, join_size_method="eo")
            self.parameters: UnionParameters = estimator.estimate()
            self._pools: Dict[str, List[CollectedSample]] = {n: [] for n in self.names}
            if self.reuse and isinstance(estimator, RandomWalkUnionEstimator):
                for name, samples in estimator.all_collected_samples().items():
                    self._pools[name] = list(samples)
            sampler_seeds = spawn_rngs(sampler_parent, len(self.queries))
            self.join_samplers: Dict[str, JoinSampler] = {
                q.name: JoinSampler(q, weights=join_weights, seed=s)
                for q, s in zip(self.queries, sampler_seeds)
            }
            self.membership = UnionMembershipIndex(self.queries)
            self._membership_cache: Dict[Tuple[str, Tuple], bool] = {}
            #: per-join uniform sample values, refilled block-wise
            self._value_queues: Dict[str, Deque[Tuple]] = {
                n: deque() for n in self.names
            }

        self._probabilities = self.parameters.selection_probabilities(use_cover=True)
        self._selector: Optional[BatchedCategorical] = None
        #: per-join recorded draws (line 3 of Algorithm 2)
        self._records: Dict[str, List[_Record]] = {n: [] for n in self.names}
        self._records_since_update = 0
        self._orig_join: Dict[Tuple, int] = {}
        #: accepted samples in acceptance order; revisions tombstone entries
        #: (set them to None) via the value -> slots side index
        self._accepted: List[Optional[UnionSample]] = []
        self._value_slots: Dict[Tuple, List[int]] = {}
        self._live_count = 0

    # ------------------------------------------------------------------ public
    def refresh(self) -> bool:
        """Start a new epoch after the base relations mutated.

        Returns True when any underlying relation was stale.  The per-join
        samplers re-sync themselves (delta-maintained weights/plans); this
        method additionally drops everything whose validity was tied to the
        previous database snapshot: the reuse pools (their walk probabilities
        were computed against old degrees), the recorded draws and accepted
        samples (uniform over the *old* union, not the new one), the
        membership cache, and the join-selection distribution, which is
        re-estimated from the delta-maintained histogram statistics.  Samples
        returned before the refresh remain valid uniform draws over the
        snapshot they were taken from.
        """
        refreshed = [sampler.refresh() for sampler in self.join_samplers.values()]
        if not any(refreshed):
            return False
        with self.stats.timer.phase("refresh"):
            estimator = HistogramUnionEstimator(self.queries, join_size_method="eo")
            self.parameters = estimator.estimate()
            self._probabilities = self.parameters.selection_probabilities(use_cover=True)
            self._selector = None
            self._pools = {name: [] for name in self.names}
            self._records = {name: [] for name in self.names}
            self._records_since_update = 0
            self._orig_join = {}
            self._accepted = []
            self._value_slots = {}
            self._live_count = 0
            self._membership_cache.clear()
            for queue in self._value_queues.values():
                queue.clear()
            self.confidence_level = 0.0
        return True

    def sample(self, count: int) -> SampleResult:
        """Draw ``count`` samples from the set union.

        Staleness is detected automatically: if a base relation mutated since
        the last epoch, :meth:`refresh` runs first — the membership cache and
        selection probabilities must never outlive the snapshot they were
        computed from, or the union sample silently biases.  (The per-join
        samplers refresh themselves, but uniformity over the *union* also
        depends on this class's own cached state.)
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self.refresh()
        max_iterations = max(count, 1) * self.max_iterations_factor
        while self._live_count < count:
            if self.stats.iterations >= max_iterations:
                raise RuntimeError(
                    f"OnlineUnionSampler exceeded {max_iterations} iterations while "
                    f"collecting {count} samples"
                )
            self.stats.iterations += 1
            started = time.perf_counter()
            sample = self._iterate()
            elapsed = time.perf_counter() - started
            if sample is not None:
                self.stats.timer.add("accepted", elapsed)
                if sample.reused:
                    self.stats.timer.add("reuse_accepted", elapsed)
                self.stats.accepted += 1
            else:
                self.stats.timer.add("rejected", elapsed)
            self._maybe_update_parameters()
        self.stats.join_sampler_attempts = sum(
            s.stats.attempts for s in self.join_samplers.values()
        )
        self.stats.join_sampler_rejections = self.stats.join_sampler_attempts - sum(
            s.stats.accepted for s in self.join_samplers.values()
        )
        live = [s for s in self._accepted if s is not None]
        return SampleResult(
            samples=live[:count],
            parameters=self.parameters,
            stats=self.stats,
            algorithm=self.algorithm + ("-reuse" if self.reuse else ""),
        )

    # --------------------------------------------------------------- iteration
    def _iterate(self) -> Optional[UnionSample]:
        join_name = self._select_join()
        position = self._positions[join_name]
        join_size = max(self.parameters.join_sizes[join_name], 1e-12)

        value: Optional[Tuple] = None
        reused = False

        pool = self._pools[join_name]
        if self.reuse and pool:
            # Sample Reuse (lines 7-8): draw from the warm-up pool without
            # replacement and accept with probability l / (p(t)·|J_j|).
            pool_size = len(pool)
            idx = int(self.rng.integers(0, pool_size))
            candidate = pool.pop(idx)
            acceptance = pool_size / (max(candidate.probability, 1e-300) * join_size)
            if self.rng.random() < min(acceptance, 1.0):
                value = candidate.value
                reused = True
                self._record(join_name, candidate.value, 1.0 / max(candidate.probability, 1e-300))
            else:
                self.stats.reused_rejected += 1

        if value is None:
            # Lines 9-10: fall back to a regular uniform draw from the join,
            # served value-only through the block pipeline (no draw boxing).
            self.stats.record_draw(join_name)
            value = drain_value_queue(
                self.join_samplers[join_name], self._value_queues[join_name]
            )
            self._record(join_name, value, join_size)

        # Lines 11-17: the orig_join record with revision, as in Algorithm 1.
        recorded = self._orig_join.get(value)
        if recorded is not None and recorded < position:
            self.stats.rejected_duplicate += 1
            return None
        if recorded is not None and recorded > position:
            self.stats.revisions += 1
            removed = 0
            for slot in self._value_slots.pop(value, ()):
                if self._accepted[slot] is not None:
                    self._accepted[slot] = None
                    removed += 1
            self._live_count -= removed
            self.stats.revision_removed += removed
        self._orig_join[value] = position
        sample = UnionSample(value, join_name, self.stats.iterations, reused=reused)
        if reused:
            self.stats.reused_accepted += 1
        self._value_slots.setdefault(value, []).append(len(self._accepted))
        self._accepted.append(sample)
        self._live_count += 1
        return sample

    def _select_join(self) -> str:
        """Select a join; selections are drawn one multinomial batch at a time."""
        if self._selector is None:
            weights = [self._probabilities.get(n, 0.0) for n in self.names]
            self._selector = BatchedCategorical(self.rng, self.names, weights)
        return self._selector.draw()

    def _record(self, join_name: str, value: Tuple, weight: float) -> None:
        self._records[join_name].append(_Record(value, weight))
        self._records_since_update += 1

    # ----------------------------------------------------- parameter refinement
    def _maybe_update_parameters(self) -> None:
        if self._records_since_update < self.phi or self.confidence_level >= self.gamma:
            return
        self._records_since_update = 0
        self.stats.backtrack_rounds += 1
        started = time.perf_counter()
        old = self.parameters
        refined = self._refine_parameters(old)
        self._backtrack(old, refined)
        self.parameters = refined
        self._probabilities = refined.selection_probabilities(use_cover=True)
        self._selector = None  # refreshed distribution: rebuild the batch
        self.stats.timer.add("estimation_update", time.perf_counter() - started)

    def _refine_parameters(self, old: UnionParameters) -> UnionParameters:
        """Re-estimate overlaps from the recorded draws (random-walk method, §6.2)."""
        join_sizes = dict(old.join_sizes)
        worst_half_width = 0.0

        def overlap_of(subset: FrozenSet[str]) -> float:
            nonlocal worst_half_width
            if len(subset) == 1:
                return join_sizes[next(iter(subset))]
            pivot = max(subset, key=lambda n: len(self._records[n]))
            records = self._records[pivot]
            if not records:
                return old.overlap(list(subset))
            others = [n for n in subset if n != pivot]
            total_weight = sum(r.weight for r in records)
            hit_weight = 0.0
            hits = 0
            for record in records:
                if all(self._contains(name, record.value) for name in others):
                    hit_weight += record.weight
                    hits += 1
            if total_weight <= 0:
                return old.overlap(list(subset))
            ratio = hit_weight / total_weight
            p_hat = hits / len(records)
            half_width = z_value(min(self.gamma, 0.999)) * math.sqrt(
                max(p_hat * (1 - p_hat) / len(records), 0.0)
            )
            worst_half_width = max(worst_half_width, half_width)
            return join_sizes[pivot] * ratio

        overlaps = compute_all_overlaps(self.names, overlap_of)
        k_overlaps = compute_k_overlaps(self.names, overlaps)
        union_size = union_size_from_k_overlaps(k_overlaps)
        union_size = min(
            max(union_size, max(join_sizes.values(), default=0.0)), sum(join_sizes.values())
        )
        covers = cover_sizes_from_overlaps(self.names, overlaps)
        # Confidence: how tight the binomial overlap ratios are.
        self.confidence_level = max(0.0, 1.0 - worst_half_width)
        return UnionParameters(
            join_order=list(self.names),
            join_sizes=join_sizes,
            cover_sizes=covers,
            union_size=union_size,
            overlaps={k: v for k, v in overlaps.items() if len(k) >= 2},
            method="online-refined",
            metadata={"rounds": self.stats.backtrack_rounds},
        )

    def _backtrack(self, old: UnionParameters, new: UnionParameters) -> None:
        """Re-accept previously sampled tuples under the refined parameters (§7).

        Backtracking touches every accepted sample by design, so it compacts
        tombstoned slots and rebuilds the value -> slots index as it goes.
        """
        retained: List[Optional[UnionSample]] = []
        slots: Dict[Tuple, List[int]] = {}
        removed = 0
        for sample in self._accepted:
            if sample is None:
                continue
            name = sample.source_join
            old_ratio = old.cover_sizes[name] / max(old.union_size, 1e-12)
            new_ratio = new.cover_sizes[name] / max(new.union_size, 1e-12)
            if old_ratio <= 0:
                keep_probability = 1.0
            else:
                keep_probability = min(new_ratio / old_ratio, 1.0)
            if self.rng.random() < keep_probability:
                slots.setdefault(sample.value, []).append(len(retained))
                retained.append(sample)
            else:
                removed += 1
        self._accepted = retained
        self._value_slots = slots
        self._live_count = len(retained)
        self.stats.backtrack_removed += removed

    def _contains(self, query_name: str, value: Tuple) -> bool:
        key = (query_name, value)
        if key not in self._membership_cache:
            self._membership_cache[key] = self.membership.contains(query_name, value)
        return self._membership_cache[key]


__all__ = ["OnlineUnionSampler"]
