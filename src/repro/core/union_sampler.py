"""Union sampling algorithms: disjoint union, Bernoulli set union, and
non-Bernoulli (cover-based) set union — Algorithm 1 of the paper.

All samplers share the same shape: a warm-up supplies
:class:`~repro.estimation.parameters.UnionParameters` (join sizes, cover
sizes, union size), then every iteration selects a join, draws one uniform
sample from it via a single-join :class:`~repro.sampling.join_sampler.JoinSampler`,
and decides whether to keep the tuple so that the accepted stream is uniform
over the *set union* (or trivially uniform over the disjoint union).

Three set-union selection/deduplication policies are provided:

* **Bernoulli** (§3, the "union trick"): every join is independently selected
  with probability ``|J_j|/|U|`` each iteration; a tuple is kept only when it
  is drawn from the first join that contains it.
* **record** (Algorithm 1 as printed): joins are selected with probability
  ``|J'_j|/|U|``; ownership of values is tracked in the ``orig_join`` record
  and corrected with *revisions* when a lower-index join later samples the
  same value.
* **strict**: joins are selected proportionally to their full sizes and a
  membership probe enforces the lowest-index cover exactly.  Every accepted
  tuple then has probability exactly ``1/|U|`` — this is the variant used by
  the statistical uniformity tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.result import SampleResult, SamplingStats, UnionSample
from repro.estimation.base import UnionSizeEstimator
from repro.estimation.parameters import UnionParameters
from repro.joins.membership import UnionMembershipIndex
from repro.joins.query import JoinQuery, check_union_compatible
from repro.sampling.blocks import SampleBlock
from repro.sampling.join_sampler import JoinSampler
from repro.utils.rng import BatchedCategorical, RandomState, ensure_rng, spawn_rngs


def drain_value_queue(
    sampler: JoinSampler, queue: Deque[Tuple]
) -> Tuple:
    """One uniform sample *value* from a join, via the block pipeline.

    Union iterations only consume the output value tuple, so boxing a full
    ``SampleDraw`` (assignment dict included) per draw is pure overhead.
    The queue refills from :meth:`JoinSampler.sample_block` — including the
    sampler's parked surplus blocks — and one refill pays a single
    columnar projection for the whole batch.
    """
    if queue and sampler.stale:
        # A mutation epoch landed since the queue was filled: the parked
        # values describe the previous snapshot and must not be served.
        queue.clear()
    if not queue:
        blocks = [sampler.sample_block(1)]
        blocks.extend(sampler.pop_buffered_blocks())
        queue.extend(SampleBlock.concat(blocks).values(sampler.query))
    return queue.popleft()


class UnionSamplerBase:
    """Shared machinery: per-join samplers, selection distribution, timing."""

    algorithm = "base"

    def __init__(
        self,
        queries: Sequence[JoinQuery],
        parameters: UnionParameters | UnionSizeEstimator,
        join_weights: str = "ew",
        seed: RandomState = None,
        max_iterations_factor: int = 1000,
    ) -> None:
        check_union_compatible(list(queries))
        self.queries: List[JoinQuery] = list(queries)
        self.names: List[str] = [q.name for q in self.queries]
        self.join_weights = join_weights
        self.max_iterations_factor = max_iterations_factor
        self.rng = ensure_rng(seed)
        self.stats = SamplingStats()

        with self.stats.timer.phase("warmup"):
            if isinstance(parameters, UnionSizeEstimator):
                parameters = parameters.estimate()
            self.parameters = parameters
            sampler_seeds = spawn_rngs(self.rng, len(self.queries))
            self.join_samplers: Dict[str, JoinSampler] = {
                q.name: JoinSampler(q, weights=join_weights, seed=s)
                for q, s in zip(self.queries, sampler_seeds)
            }

        missing = [n for n in self.names if n not in self.parameters.join_sizes]
        if missing:
            raise ValueError(f"parameters missing join sizes for {missing}")

        #: batched join-selection state (rebuilt when the distribution changes)
        self._selector: Optional[BatchedCategorical] = None
        self._selector_source: Optional[Dict[str, float]] = None
        #: per-join uniform sample values, refilled block-wise (zero-object)
        self._value_queues: Dict[str, Deque[Tuple]] = {n: deque() for n in self.names}

    # ------------------------------------------------------------------ hooks
    def _iterate(self) -> List[UnionSample]:
        """One sampler iteration; returns the samples accepted in it."""
        raise NotImplementedError

    # ----------------------------------------------------------------- public
    def sample(self, count: int) -> SampleResult:
        """Draw ``count`` samples from the union (with replacement)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        accepted: List[UnionSample] = []
        max_iterations = max(count, 1) * self.max_iterations_factor
        while len(accepted) < count:
            if self.stats.iterations >= max_iterations:
                raise RuntimeError(
                    f"{type(self).__name__} exceeded {max_iterations} iterations "
                    f"while collecting {count} samples (rejection rate too high)"
                )
            self.stats.iterations += 1
            started = time.perf_counter()
            new_samples = self._iterate()
            elapsed = time.perf_counter() - started
            if new_samples:
                self.stats.timer.add("accepted", elapsed)
                accepted.extend(new_samples)
                self.stats.accepted += len(new_samples)
            else:
                self.stats.timer.add("rejected", elapsed)
        self._collect_join_sampler_stats()
        return SampleResult(
            samples=accepted[:count] if count else [],
            parameters=self.parameters,
            stats=self.stats,
            algorithm=self.algorithm,
        )

    # --------------------------------------------------------------- internal
    def _collect_join_sampler_stats(self) -> None:
        attempts = sum(s.stats.attempts for s in self.join_samplers.values())
        accepted = sum(s.stats.accepted for s in self.join_samplers.values())
        self.stats.join_sampler_attempts = attempts
        self.stats.join_sampler_rejections = attempts - accepted

    def _select_join(self, probabilities: Dict[str, float]) -> str:
        """Select a join; selections are drawn one multinomial batch at a time."""
        if self._selector is None or self._selector_source is not probabilities:
            weights = [probabilities.get(n, 0.0) for n in self.names]
            self._selector = BatchedCategorical(self.rng, self.names, weights)
            self._selector_source = probabilities
        return self._selector.draw()

    def _draw_value(self, join_name: str) -> Tuple:
        self.stats.record_draw(join_name)
        return drain_value_queue(
            self.join_samplers[join_name], self._value_queues[join_name]
        )


class DisjointUnionSampler(UnionSamplerBase):
    """Sampling from the disjoint (bag) union — Definition 1.

    Selects a join with probability ``|J_j| / (|J_1| + ... + |J_n|)`` and keeps
    every drawn tuple; accepted tuples are uniform over the disjoint union.
    """

    algorithm = "disjoint-union"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._probabilities = self.parameters.selection_probabilities(use_cover=False)

    def _iterate(self) -> List[UnionSample]:
        join_name = self._select_join(self._probabilities)
        value = self._draw_value(join_name)
        return [UnionSample(value, join_name, self.stats.iterations)]


class BernoulliUnionSampler(UnionSamplerBase):
    """Set-union sampling with Bernoulli join selection (§3, the union trick).

    Each iteration every join is independently selected with probability
    ``|J_j|/|U|``; a drawn tuple is kept only when the drawing join is the
    first join (in declaration order) containing the value, which gives every
    value in the union probability exactly ``1/|U|`` per iteration.
    """

    algorithm = "bernoulli-set-union"

    def __init__(self, *args, membership: Optional[UnionMembershipIndex] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.membership = membership or UnionMembershipIndex(self.queries)

    def _iterate(self) -> List[UnionSample]:
        union_size = max(self.parameters.union_size, 1e-12)
        accepted: List[UnionSample] = []
        selections = self.rng.random(len(self.queries))
        for position, query in enumerate(self.queries):
            probability = min(self.parameters.join_sizes[query.name] / union_size, 1.0)
            if selections[position] >= probability:
                self.stats.rejected_not_selected += 1
                continue
            value = self._draw_value(query.name)
            if self._owned_by_earlier(position, value):
                self.stats.rejected_duplicate += 1
                continue
            accepted.append(UnionSample(value, query.name, self.stats.iterations))
        return accepted

    def _owned_by_earlier(self, position: int, value: Tuple) -> bool:
        for earlier in self.queries[:position]:
            if self.membership.contains(earlier.name, value):
                return True
        return False


class SetUnionSampler(UnionSamplerBase):
    """Non-Bernoulli set-union sampling — Algorithm 1.

    ``mode="record"`` reproduces the printed algorithm: the ``orig_join``
    record remembers which join first produced each value; a tuple drawn from
    a higher-index join than the recorded owner is rejected, and a tuple drawn
    from a lower-index join triggers a *revision* that reassigns ownership and
    drops the previously accepted copies.

    ``mode="strict"`` enforces the lowest-index cover with membership probes
    and selects joins proportionally to their full sizes; accepted tuples are
    then uniform over the union by construction (used for uniformity tests).
    """

    algorithm = "set-union"

    def __init__(
        self,
        queries: Sequence[JoinQuery],
        parameters: UnionParameters | UnionSizeEstimator,
        join_weights: str = "ew",
        seed: RandomState = None,
        mode: str = "record",
        membership: Optional[UnionMembershipIndex] = None,
        max_iterations_factor: int = 1000,
    ) -> None:
        super().__init__(
            queries,
            parameters,
            join_weights=join_weights,
            seed=seed,
            max_iterations_factor=max_iterations_factor,
        )
        if mode not in ("record", "strict"):
            raise ValueError("mode must be 'record' or 'strict'")
        self.mode = mode
        self.membership = membership
        if mode == "strict" and self.membership is None:
            self.membership = UnionMembershipIndex(self.queries)
        self._probabilities = self.parameters.selection_probabilities(
            use_cover=(mode == "record")
        )
        self._positions = {name: i for i, name in enumerate(self.names)}
        #: value -> index of the join currently recorded as its origin
        self._orig_join: Dict[Tuple, int] = {}
        #: accepted samples in acceptance order; revisions tombstone entries
        #: (set them to None) instead of rebuilding the whole list
        self._accepted: List[Optional[UnionSample]] = []
        #: value -> slots of its accepted copies (side index driving revisions)
        self._value_slots: Dict[Tuple, List[int]] = {}
        self._live_count = 0

    # -------------------------------------------------------------- iteration
    def _iterate(self) -> List[UnionSample]:
        join_name = self._select_join(self._probabilities)
        position = self._positions[join_name]
        value = self._draw_value(join_name)

        if self.mode == "strict":
            if self._owned_by_earlier(position, value):
                self.stats.rejected_duplicate += 1
                return []
            sample = UnionSample(value, join_name, self.stats.iterations)
            self._accept(sample)
            return [sample]

        recorded = self._orig_join.get(value)
        if recorded is not None and recorded < position:
            # Already owned by an earlier join in the cover order: reject.
            self.stats.rejected_duplicate += 1
            return []
        if recorded is not None and recorded > position:
            # Revision: the cover says this value belongs to the earlier join.
            self.stats.revisions += 1
            removed = self._remove_value(value)
            self.stats.revision_removed += removed
        self._orig_join[value] = position
        sample = UnionSample(value, join_name, self.stats.iterations)
        self._accept(sample)
        return [sample]

    def _owned_by_earlier(self, position: int, value: Tuple) -> bool:
        assert self.membership is not None
        for earlier in self.queries[:position]:
            if self.membership.contains(earlier.name, value):
                return True
        return False

    def _accept(self, sample: UnionSample) -> None:
        """Record an accepted sample and index its slot for later revisions."""
        self._value_slots.setdefault(sample.value, []).append(len(self._accepted))
        self._accepted.append(sample)
        self._live_count += 1

    def _remove_value(self, value: Tuple) -> int:
        """Drop all previously accepted copies of ``value`` (revision step).

        The value -> slots side index makes this O(copies of the value)
        instead of a rebuild of the whole accepted list.
        """
        removed = 0
        for slot in self._value_slots.pop(value, ()):
            if self._accepted[slot] is not None:
                self._accepted[slot] = None
                removed += 1
        self._live_count -= removed
        return removed

    # ----------------------------------------------------------------- public
    def sample(self, count: int) -> SampleResult:
        """Draw ``count`` samples, honouring revisions (which may shrink the pool)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        max_iterations = max(count, 1) * self.max_iterations_factor
        while self._live_count < count:
            if self.stats.iterations >= max_iterations:
                raise RuntimeError(
                    f"SetUnionSampler exceeded {max_iterations} iterations while "
                    f"collecting {count} samples"
                )
            self.stats.iterations += 1
            started = time.perf_counter()
            new_samples = self._iterate()
            elapsed = time.perf_counter() - started
            if new_samples:
                self.stats.timer.add("accepted", elapsed)
                self.stats.accepted += len(new_samples)
            else:
                self.stats.timer.add("rejected", elapsed)
        self._collect_join_sampler_stats()
        live = [s for s in self._accepted if s is not None]
        return SampleResult(
            samples=live[:count],
            parameters=self.parameters,
            stats=self.stats,
            algorithm=f"{self.algorithm}-{self.mode}",
        )


__all__ = [
    "UnionSamplerBase",
    "DisjointUnionSampler",
    "BernoulliUnionSampler",
    "SetUnionSampler",
]
