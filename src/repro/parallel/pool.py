"""The multi-core parallel sampling service: plan shards, fan out, merge.

:class:`ParallelSamplerPool` executes a fixed list of
:class:`~repro.parallel.shards.ShardTask` across N workers and merges the
results deterministically.  Four properties define the service:

**Determinism across worker counts.**  The shard plan — shard count, per-shard
sample quotas, per-shard seeds — depends only on the job (queries, total
count, root seed, ``shards``), never on ``workers`` or the execution backend.
Workers race over *which* shard they execute next, but every shard's output is
a pure function of its task, and the coordinator merges results in shard-id
order; so any worker count, thread or process, produces bit-identical merged
answers (pinned by ``tests/test_parallel.py`` and the Hypothesis property in
``tests/test_aqp_properties.py``).

**Shard-merge via the accumulator merge law.**  Aggregate shards return
partial :class:`~repro.aqp.estimators.AggregateAccumulator` objects; the
coordinator folds them with :meth:`AggregateAccumulator.merge`, whose
exactly-rounded (``math.fsum``) estimates are chunk-order-invariant — the
algebraic property that makes fan-out/merge safe (PR 3).

**Epoch-aware cancellation.**  The coordinator snapshots every base
relation's version counter when it plans the shards and re-checks it when the
results arrive.  If a mutation epoch bump is observed (``refresh()``
semantics of the update engine), the in-flight shard results are *discarded*
— they describe a mix of snapshots — and the whole job re-runs against the
new snapshot, matching the restart semantics of
:class:`~repro.aqp.online.OnlineAggregator`.

**Fault tolerance via shard supervision.**  Every shard is dispatched
individually by a :class:`~repro.resilience.supervisor.ShardSupervisor`
(PR 6): per-shard timeouts, bounded retries with deterministic backoff,
poison-shard detection, a ``process -> thread -> inline`` degradation
ladder, pre-merge result-integrity checks, and job-level deadlines with
principled partial results (``allow_partial``).  Because shard payloads are
pure functions of (task, seed) — never of the attempt number or the rung —
retries and degradations are invisible in the merged answer: a job that
survived crashes is bit-identical to a fault-free run
(``tests/test_resilience.py``).  Failures that exhaust the retry budget
re-raise with full shard attribution (shard id, seed, backend, attempt
count, rung) and the original traceback chained, instead of the old blanket
``pool.terminate()``.

Processes vs threads: process workers (``multiprocessing`` with the
``spawn`` start method) sidestep the GIL but pay per-worker interpreter
start-up plus pickling of the relations; thread workers share memory and
start instantly but only overlap during GIL-releasing numpy sections.  The
``"auto"`` execution policy picks processes for large jobs on multi-core
machines and threads otherwise; see ``docs/parallel.md`` and
``docs/resilience.md``.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aqp.estimators import AggregateAccumulator, AggregateReport, AggregateSpec
from repro.aqp.planner import supported_backends
from repro.joins.query import JoinQuery
from repro.parallel.shards import (
    SHARD_BACKENDS,
    ShardResult,
    ShardTask,
    observed_versions,
    run_shard,
)
from repro.resilience.errors import EmptyResultError
from repro.resilience.faults import FaultPlan, InjectedFault, fault_plan_from_env
from repro.resilience.supervisor import (
    RetryPolicy,
    ShardSupervisor,
    SupervisedOutcome,
    SupervisionStats,
)
from repro.utils.rng import RandomState, shard_seed_sequences

#: Default number of shards.  Fixed (not derived from the worker count!) so
#: that the same seed gives the same answer no matter how many workers run.
DEFAULT_SHARDS = 8

#: ``"auto"`` execution uses in-process threads below this total sample
#: count: a spawned worker pays interpreter start-up plus a pickled copy of
#: the relations, which small jobs never amortize.
SMALL_JOB_THRESHOLD = 4096

EXECUTION_MODES = ("auto", "thread", "process")


@dataclass
class ParallelRunReport:
    """Merged outcome of one parallel job plus fleet-level accounting.

    The resilience counters (``retries`` through ``degraded``) describe the
    final epoch's supervised run: how many shard attempts failed transiently
    and were retried, how many worker processes died, how many results were
    rejected by the pre-merge integrity check, and whether the report is a
    *partial* answer (``degraded=True``: some shards never completed before
    the deadline or exhausted their retries under ``allow_partial``).
    """

    backend: str
    execution: str
    workers: int
    shards: int
    attempts: int
    accepted: int
    epochs_restarted: int
    #: sampling mode: merged values/sources in shard order
    values: List[Tuple] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    #: aggregate mode: merged accumulator (shard-id merge order)
    accumulator: Optional[AggregateAccumulator] = None
    per_shard: List[Dict[str, int]] = field(default_factory=list)
    #: resilience accounting (see SupervisionStats)
    retries: int = 0
    shard_timeouts: int = 0
    shard_crashes: int = 0
    corrupt_results: int = 0
    poison_shards: int = 0
    degradations: int = 0
    planned_shards: int = 0
    completed_shards: int = 0
    failed_shards: List[int] = field(default_factory=list)
    degraded: bool = False
    deadline_hit: bool = False

    def source_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for name in self.sources:
            counts[name] = counts.get(name, 0) + 1
        return counts


class ParallelSamplerPool:
    """Fan sampling / online-aggregation shards out across CPU cores.

    Parameters
    ----------
    workers:
        Worker count; defaults to ``os.cpu_count()``.  Does **not** influence
        the answer — only how many shards run concurrently.
    execution:
        ``"thread"``, ``"process"``, or ``"auto"`` (processes for large jobs
        on multi-core machines with picklable tasks, threads otherwise).
    start_method:
        ``multiprocessing`` start method for process execution.  ``"spawn"``
        (the default) is the only start method that is both fork-safe and
        identical across platforms.
    job_timeout:
        Job-level deadline in wall-clock seconds, enforced on **every**
        execution mode: process shards are terminated at the deadline;
        thread shards check a cooperative deadline at stage boundaries and
        are abandoned (with a ``RuntimeWarning``) if they blow past it.
        Without ``allow_partial`` the job raises
        :class:`~repro.resilience.errors.JobDeadlineExceeded`.
    shard_timeout:
        Per-shard-attempt wall-clock budget; a shard that exceeds it is
        killed (process) or abandoned (thread) and retried.
    max_retries:
        Re-executions allowed per shard before the job fails (default 2).
        Ignored when ``retry_policy`` is given.
    retry_policy:
        Full :class:`~repro.resilience.supervisor.RetryPolicy` (backoff
        base/factor/cap, deterministic jitter) when the default shape is
        not right.
    allow_partial:
        On deadline expiry or a shard exhausting its retries, return the
        shards that *did* complete (``report.degraded=True``) instead of
        raising.  The merged partial answer is still an unbiased HT
        estimate — just wider.
    fault_plan:
        Deterministic :class:`~repro.resilience.faults.FaultPlan` threaded
        into every shard execution (tests/chaos runs); ``None`` defers to
        the ``REPRO_FAULT_RATE`` environment harness.
    max_epoch_restarts:
        How many times a job may be discarded and re-run because a mutation
        epoch bump was observed mid-flight.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        execution: str = "auto",
        start_method: str = "spawn",
        job_timeout: Optional[float] = None,
        max_epoch_restarts: int = 3,
        shard_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        allow_partial: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}, got {execution!r}")
        if job_timeout is not None and job_timeout < 0:
            raise ValueError(f"job_timeout must be non-negative, got {job_timeout}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be positive, got {shard_timeout}")
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        self.execution = execution
        self.start_method = start_method
        self.job_timeout = job_timeout
        self.max_epoch_restarts = max_epoch_restarts
        self.shard_timeout = shard_timeout
        if retry_policy is not None:
            self.retry_policy = retry_policy
        elif max_retries is not None:
            self.retry_policy = RetryPolicy(max_retries=int(max_retries))
        else:
            self.retry_policy = RetryPolicy()
        self.allow_partial = allow_partial
        self.fault_plan = fault_plan
        self.epochs_restarted = 0
        #: lifetime supervision counters of this pool (all runs, all epochs)
        self.stats = SupervisionStats()
        #: execution mode of the most recent run() (resolving "auto" pickles
        #: the tasks, so it is done once per run and remembered for reports)
        self._last_execution: Optional[str] = None
        self._last_outcome: Optional[SupervisedOutcome] = None
        #: long-lived thread executor, created lazily on the first thread-rung
        #: run and reused across jobs until close() (supervisors borrow it).
        self._thread_executor: Optional[ThreadPoolExecutor] = None
        #: guards the executor lifecycle, the shared counters, and the
        #: last-run bookkeeping against concurrent run() callers (the server
        #: multiplexes many requests onto one pool).
        self._lock = threading.Lock()
        self._closed = False
        #: per-thread outcome of the most recent run() on that thread
        self._tls = threading.local()

    # -------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Shut down the pool's long-lived resources; idempotent.

        After close, submitting new jobs raises ``RuntimeError``.  The thread
        executor is drained (``wait=True``) so every spawned thread is
        actually reaped — the regression for the old behaviour of building a
        fresh executor per run and leaking it to GC under a long-lived
        server.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._thread_executor = self._thread_executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ParallelSamplerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _borrowed_executor(self) -> ThreadPoolExecutor:
        """The shared thread executor, created on first use."""
        with self._lock:
            if self._closed:
                raise RuntimeError("ParallelSamplerPool is closed")
            if self._thread_executor is None:
                self._thread_executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-pool"
                )
            return self._thread_executor

    # ------------------------------------------------------------------- plan
    def plan_tasks(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        count: int,
        *,
        seed: RandomState = None,
        method: str = "auto",
        spec: Optional[AggregateSpec] = None,
        shards: Optional[int] = None,
        max_attempts: int = 1_000_000,
    ) -> List[ShardTask]:
        """Resolve the backend and split the job into a fixed shard list.

        The split assigns ``count // shards`` samples to every shard and one
        extra to the first ``count % shards`` — a pure function of ``count``
        and ``shards``, so the plan (and hence the answer) is independent of
        the worker count.
        """
        if isinstance(queries, JoinQuery):
            queries = (queries,)
        queries = tuple(queries)
        if not queries:
            raise ValueError("need at least one query")
        if count < 0:
            raise ValueError("count must be non-negative")
        shard_count = int(shards) if shards is not None else DEFAULT_SHARDS
        if shard_count < 1:
            raise ValueError(f"shards must be >= 1, got {shard_count}")
        backend = self._resolve_backend(queries, method, spec, count)
        if backend == "online-union" and spec is not None:
            _reject_degenerate_union_count(spec)
        seeds = shard_seed_sequences(seed, shard_count)
        base, extra = divmod(count, shard_count)
        return [
            ShardTask(
                shard_id=i,
                queries=queries,
                backend=backend,
                count=base + (1 if i < extra else 0),
                seed=seeds[i],
                spec=spec,
                max_attempts=max_attempts,
            )
            for i in range(shard_count)
        ]

    # -------------------------------------------------------------------- run
    def run(
        self,
        tasks: Sequence[ShardTask],
        *,
        job_timeout: Optional[float] = None,
        allow_partial: Optional[bool] = None,
    ) -> List[ShardResult]:
        """Execute the shard tasks under supervision, in shard-id order.

        Each shard is dispatched individually with per-shard timeouts,
        bounded retries, and the degradation ladder; see
        :class:`~repro.resilience.supervisor.ShardSupervisor`.  Failures
        that survive the retry budget re-raise with shard attribution
        (unless ``allow_partial``, in which case the completed shards come
        back and the missing ones are recorded on the run report).

        ``job_timeout``/``allow_partial`` override the pool's defaults for
        this run only — the server maps per-request deadlines onto a shared
        pool through them.
        """
        results, outcome, execution = self._run_supervised(
            tasks, job_timeout=job_timeout, allow_partial=allow_partial
        )
        # Per-caller outcome rides a thread-local (concurrent run() callers
        # must not read each other's supervision outcome); the _last_* pair
        # is best-effort shared bookkeeping for external introspection.
        self._tls.outcome = outcome
        self._tls.execution = execution
        with self._lock:
            self._last_execution = execution
            self._last_outcome = outcome
        return results

    def _run_supervised(
        self,
        tasks: Sequence[ShardTask],
        *,
        job_timeout: Optional[float] = None,
        allow_partial: Optional[bool] = None,
    ) -> Tuple[List[ShardResult], Optional[SupervisedOutcome], Optional[str]]:
        """Thread-safe core of :meth:`run`: no shared last-run bookkeeping.

        Concurrent callers (the server multiplexes requests onto one pool)
        each get their own supervisor and outcome; only the lifetime
        counters and the borrowed thread executor are shared, both under
        the pool lock.
        """
        if not tasks:
            return [], None, None
        with self._lock:
            if self._closed:
                raise RuntimeError("ParallelSamplerPool is closed")
        execution = self._resolve_execution(tasks)
        rung = execution
        executor = None
        if execution == "thread":
            if self.workers == 1 or len(tasks) == 1:
                # Single-worker thread jobs gain nothing from the executor:
                # run inline, the same fast path the pre-resilience pool had.
                rung = "inline"
            else:
                executor = self._borrowed_executor()
        supervisor = ShardSupervisor(
            tasks,
            execution=rung,
            workers=self.workers,
            policy=self.retry_policy,
            shard_timeout=self.shard_timeout,
            deadline=self.job_timeout if job_timeout is None else job_timeout,
            allow_partial=self.allow_partial if allow_partial is None else allow_partial,
            fault_plan=self.fault_plan,
            start_method=self.start_method,
            executor=executor,
        )
        try:
            outcome = supervisor.run()
        finally:
            # Supervision counters survive a raising run — a PoisonShardError
            # still leaves its attempts/retries on ``self.stats``.
            with self._lock:
                self.stats.merge(supervisor.stats)
        return outcome.results, outcome, execution

    def sample(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        count: int,
        *,
        seed: RandomState = None,
        method: str = "auto",
        shards: Optional[int] = None,
        max_attempts: int = 1_000_000,
        job_timeout: Optional[float] = None,
        allow_partial: Optional[bool] = None,
    ) -> ParallelRunReport:
        """``count`` uniform samples, fanned out and merged in shard order."""
        tasks = self.plan_tasks(
            queries, count, seed=seed, method=method, shards=shards, max_attempts=max_attempts
        )
        results, outcome, execution = self._run_with_epoch_guard(
            tasks, job_timeout=job_timeout, allow_partial=allow_partial
        )
        report = self._base_report(tasks, results, outcome, execution)
        query = tasks[0].queries[0]
        for result in results:
            if result.block is not None:
                # Join-backend shards ship struct-of-arrays blocks (cheap
                # numpy pickling); values are projected once, here, against
                # the coordinator's relations — which the epoch guard just
                # verified are the snapshot the shard sampled.
                report.values.extend(result.block.values(query))
                report.sources.extend([query.name] * len(result.block))
            else:
                report.values.extend(result.values)
                report.sources.extend(result.sources)
        return report

    def aggregate(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        spec: AggregateSpec,
        count: int,
        *,
        seed: RandomState = None,
        method: str = "auto",
        shards: Optional[int] = None,
        max_attempts: int = 1_000_000,
        job_timeout: Optional[float] = None,
        allow_partial: Optional[bool] = None,
    ) -> ParallelRunReport:
        """Merged :class:`AggregateAccumulator` over ``count`` samples.

        ``count`` is the fleet-wide accepted-sample target (wander-join: walk
        attempts), split across shards.  Call ``report.accumulator.estimate()``
        (or :func:`parallel_aggregate`) for confidence intervals.
        """
        tasks = self.plan_tasks(
            queries,
            count,
            seed=seed,
            method=method,
            spec=spec,
            shards=shards,
            max_attempts=max_attempts,
        )
        results, outcome, execution = self._run_with_epoch_guard(
            tasks, job_timeout=job_timeout, allow_partial=allow_partial
        )
        report = self._base_report(tasks, results, outcome, execution)
        merged: Optional[AggregateAccumulator] = None
        for result in results:
            if result.accumulator is None:
                continue
            if merged is None:
                merged = result.accumulator
            else:
                merged.merge(result.accumulator)
        if merged is None:
            merged = AggregateAccumulator(spec, tasks[0].queries[0].output_schema)
        report.accumulator = merged
        return report

    # -------------------------------------------------------------- internals
    def _resolve_backend(
        self,
        queries: Tuple[JoinQuery, ...],
        method: str,
        spec: Optional[AggregateSpec],
        count: int = 1024,
    ) -> str:
        supported = supported_backends(list(queries) if len(queries) > 1 else queries[0])
        if method == "auto":
            if len(queries) > 1:
                return "online-union"
            from repro.aqp.planner import SamplerPlanner

            # Price the plan at the job's actual fleet-wide sample budget:
            # setup-heavy backends amortize over large jobs (every shard pays
            # its own setup, but the ranking scales the same way).
            backend = SamplerPlanner(queries[0], target_samples=max(count, 1)).plan().backend
            if spec is None and backend == "wander-join":
                # Wander walks are HT-weighted, not uniform: never hand them
                # out for plain sampling.
                backend = "exact-weight"
            return backend
        if method not in SHARD_BACKENDS:
            raise ValueError(f"method must be 'auto' or one of {SHARD_BACKENDS}, got {method!r}")
        if method not in supported:
            raise ValueError(
                f"backend {method!r} cannot sample this query shape; supported: {supported}"
            )
        if method == "wander-join" and spec is None:
            raise ValueError("wander-join produces HT-weighted walks, not uniform samples; "
                             "use it with aggregate() or pick exact-weight/olken")
        return method

    def _resolve_execution(self, tasks: Sequence[ShardTask]) -> str:
        if self.execution != "auto":
            return self.execution
        if self.workers <= 1 or (os.cpu_count() or 1) <= 1:
            return "thread"
        if sum(t.count for t in tasks) < SMALL_JOB_THRESHOLD:
            return "thread"
        if not _tasks_picklable(tasks):
            return "thread"
        return "process"

    def _run_with_epoch_guard(
        self,
        tasks: Sequence[ShardTask],
        *,
        job_timeout: Optional[float] = None,
        allow_partial: Optional[bool] = None,
    ) -> Tuple[List[ShardResult], Optional[SupervisedOutcome], Optional[str]]:
        """Run the job, discarding and restarting on mutation epoch bumps."""
        queries = tasks[0].queries
        restarts = 0
        while True:
            before = observed_versions(queries)
            # Through the public run() so subclass/monkeypatch hooks apply;
            # the supervision outcome comes back on this thread's slot.
            # Per-request overrides are only forwarded when set, so hooks
            # with the historical (self, tasks) signature keep working.
            if job_timeout is None and allow_partial is None:
                results = self.run(tasks)
            else:
                results = self.run(
                    tasks, job_timeout=job_timeout, allow_partial=allow_partial
                )
            outcome = getattr(self._tls, "outcome", None)
            execution = getattr(self._tls, "execution", None)
            if observed_versions(queries) == before:
                return results, outcome, execution
            # A refresh() epoch bump landed while shards were in flight: the
            # results mix database snapshots, so they are discarded wholesale
            # (the PR 2/PR 3 restart semantics) and the job re-runs against
            # the new snapshot.
            restarts += 1
            with self._lock:
                self.epochs_restarted += 1
            if restarts > self.max_epoch_restarts:
                raise RuntimeError(
                    f"parallel job restarted {restarts} times on mutation epochs "
                    "without completing; pause the update stream or raise "
                    "max_epoch_restarts"
                )

    def _base_report(
        self,
        tasks: Sequence[ShardTask],
        results: Sequence[ShardResult],
        outcome: Optional[SupervisedOutcome] = None,
        execution: Optional[str] = None,
    ) -> ParallelRunReport:
        with self._lock:
            last_execution = self._last_execution
            epochs_restarted = self.epochs_restarted
        report = ParallelRunReport(
            backend=tasks[0].backend,
            execution=execution or last_execution or self._resolve_execution(tasks),
            workers=self.workers,
            shards=len(tasks),
            attempts=sum(r.attempts for r in results),
            accepted=sum(r.accepted for r in results),
            epochs_restarted=epochs_restarted,
            per_shard=[
                {"shard": r.shard_id, "attempts": r.attempts, "accepted": r.accepted}
                for r in results
            ],
        )
        if outcome is None:
            with self._lock:
                outcome = self._last_outcome
        if outcome is not None:
            stats = outcome.stats
            report.retries = stats.retries
            report.shard_timeouts = stats.shard_timeouts
            report.shard_crashes = stats.shard_crashes
            report.corrupt_results = stats.corrupt_results
            report.poison_shards = stats.poison_shards
            report.degradations = stats.degradations
            report.planned_shards = outcome.planned
            report.completed_shards = len(outcome.results)
            report.failed_shards = sorted(f.shard_id for f in outcome.failures)
            report.degraded = outcome.degraded
            report.deadline_hit = outcome.deadline_hit
        else:
            report.planned_shards = len(tasks)
            report.completed_shards = len(results)
        return report


def _tasks_picklable(tasks: Sequence[ShardTask]) -> bool:
    """True when every task survives pickling (specs may carry lambdas)."""
    try:
        pickle.dumps(tasks[0])
    except Exception:
        return False
    return True


def _reject_degenerate_union_count(spec: AggregateSpec) -> None:
    """Parallel twin of OnlineAggregator's degenerate-COUNT(*) guard.

    Union shards warm up with *estimated* parameters, so an unfiltered
    COUNT(*) would echo the union-size estimate with a zero-width interval.
    """
    if spec.kind != "count" or spec.where is not None or spec.group_attributes:
        return
    raise ValueError(
        "COUNT(*) over a union of joins just echoes the union-size parameter "
        "(every sample contributes the same |U|); use the union-size "
        "estimators, or add a where filter / group-by"
    )


# ----------------------------------------------------------------- convenience
def parallel_sample(
    queries: Union[JoinQuery, Sequence[JoinQuery]],
    count: int,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    seed: RandomState = None,
    method: str = "auto",
    execution: str = "auto",
    job_timeout: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    allow_partial: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    max_attempts: int = 1_000_000,
) -> ParallelRunReport:
    """One-shot parallel sampling: plan shards, fan out, merge in shard order."""
    with ParallelSamplerPool(
        workers=workers,
        execution=execution,
        job_timeout=job_timeout,
        shard_timeout=shard_timeout,
        max_retries=max_retries,
        allow_partial=allow_partial,
        fault_plan=fault_plan,
    ) as pool:
        return pool.sample(
            queries, count, seed=seed, method=method, shards=shards, max_attempts=max_attempts
        )


def parallel_aggregate(
    queries: Union[JoinQuery, Sequence[JoinQuery]],
    spec: AggregateSpec,
    count: int,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    seed: RandomState = None,
    method: str = "auto",
    execution: str = "auto",
    job_timeout: Optional[float] = None,
    shard_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    allow_partial: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    max_attempts: int = 1_000_000,
    confidence: float = 0.95,
    ci_method: str = "clt",
) -> AggregateReport:
    """One-shot parallel aggregation with confidence intervals.

    Bit-identical to running the same shard plan sequentially: the partial
    accumulators merge through the exactly-rounded merge law, so the report
    does not depend on worker count, execution backend, arrival order — or
    on how many times shards were retried or degraded along the way.

    Under ``allow_partial``, a deadline-hit or failed-shard job returns the
    merge of the completed shards with ``degraded=True`` on the report: an
    unbiased estimate over fewer samples, hence a wider interval.
    """
    with ParallelSamplerPool(
        workers=workers,
        execution=execution,
        job_timeout=job_timeout,
        shard_timeout=shard_timeout,
        max_retries=max_retries,
        allow_partial=allow_partial,
        fault_plan=fault_plan,
    ) as pool:
        run = pool.aggregate(
            queries,
            spec,
            count,
            seed=seed,
            method=method,
            shards=shards,
            max_attempts=max_attempts,
        )
    assert run.accumulator is not None
    if run.degraded and count > 0 and run.accumulator.accepted == 0:
        # A "partial" answer with zero accepted samples is no answer at all:
        # its CI would be a zero-width lie around 0.0 (see EmptyResultError).
        raise EmptyResultError(
            "parallel aggregation deadline expired before any shard completed; "
            "no partial estimate exists — retry with a larger deadline",
            deadline=job_timeout,
            attempts=run.attempts,
        )
    report = run.accumulator.estimate(confidence=confidence, ci_method=ci_method)
    report.degraded = run.degraded
    report.completed_shards = run.completed_shards
    report.planned_shards = run.planned_shards
    return report


#: Retry bound of ``sequential_reference``: the oracle must survive the
#: ``REPRO_FAULT_RATE`` chaos harness too (transient injected faults get
#: retried; anything else propagates).
_REFERENCE_MAX_ATTEMPTS = 16


def sequential_reference(tasks: Sequence[ShardTask]) -> List[ShardResult]:
    """Run a shard plan in a plain in-process loop (the determinism oracle).

    Benchmarks and tests compare the parallel service's merged answers
    against this reference to prove bit-identical fan-out/merge.  Under the
    environment fault harness the reference retries transiently injected
    faults (payloads are attempt-invariant, so retrying cannot change the
    oracle's answer); real exceptions propagate untouched.
    """
    results = []
    for task in tasks:
        for attempt in range(_REFERENCE_MAX_ATTEMPTS):
            try:
                results.append(run_shard(task, attempt))
                break
            except InjectedFault:
                if attempt == _REFERENCE_MAX_ATTEMPTS - 1:
                    raise
    return results


__all__ = [
    "DEFAULT_SHARDS",
    "EXECUTION_MODES",
    "SMALL_JOB_THRESHOLD",
    "ParallelRunReport",
    "ParallelSamplerPool",
    "parallel_sample",
    "parallel_aggregate",
    "sequential_reference",
]
