"""The multi-core parallel sampling service: plan shards, fan out, merge.

:class:`ParallelSamplerPool` executes a fixed list of
:class:`~repro.parallel.shards.ShardTask` across N workers and merges the
results deterministically.  Three properties define the service:

**Determinism across worker counts.**  The shard plan — shard count, per-shard
sample quotas, per-shard seeds — depends only on the job (queries, total
count, root seed, ``shards``), never on ``workers`` or the execution backend.
Workers race over *which* shard they execute next, but every shard's output is
a pure function of its task, and the coordinator merges results in shard-id
order; so any worker count, thread or process, produces bit-identical merged
answers (pinned by ``tests/test_parallel.py`` and the Hypothesis property in
``tests/test_aqp_properties.py``).

**Shard-merge via the accumulator merge law.**  Aggregate shards return
partial :class:`~repro.aqp.estimators.AggregateAccumulator` objects; the
coordinator folds them with :meth:`AggregateAccumulator.merge`, whose
exactly-rounded (``math.fsum``) estimates are chunk-order-invariant — the
algebraic property that makes fan-out/merge safe (PR 3).

**Epoch-aware cancellation.**  The coordinator snapshots every base
relation's version counter when it plans the shards and re-checks it when the
results arrive.  If a mutation epoch bump is observed (``refresh()``
semantics of the update engine), the in-flight shard results are *discarded*
— they describe a mix of snapshots — and the whole job re-runs against the
new snapshot, matching the restart semantics of
:class:`~repro.aqp.online.OnlineAggregator`.

Processes vs threads: process workers (``multiprocessing`` with the
``spawn`` start method) sidestep the GIL but pay per-worker interpreter
start-up plus pickling of the relations; thread workers share memory and
start instantly but only overlap during GIL-releasing numpy sections.  The
``"auto"`` execution policy picks processes for large jobs on multi-core
machines and threads otherwise; see ``docs/parallel.md``.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aqp.estimators import AggregateAccumulator, AggregateReport, AggregateSpec
from repro.aqp.planner import supported_backends
from repro.joins.query import JoinQuery
from repro.parallel.shards import (
    SHARD_BACKENDS,
    ShardResult,
    ShardTask,
    observed_versions,
    run_shard,
)
from repro.utils.rng import RandomState, shard_seed_sequences

#: Default number of shards.  Fixed (not derived from the worker count!) so
#: that the same seed gives the same answer no matter how many workers run.
DEFAULT_SHARDS = 8

#: ``"auto"`` execution uses in-process threads below this total sample
#: count: a spawned worker pays interpreter start-up plus a pickled copy of
#: the relations, which small jobs never amortize.
SMALL_JOB_THRESHOLD = 4096

EXECUTION_MODES = ("auto", "thread", "process")


@dataclass
class ParallelRunReport:
    """Merged outcome of one parallel job plus fleet-level accounting."""

    backend: str
    execution: str
    workers: int
    shards: int
    attempts: int
    accepted: int
    epochs_restarted: int
    #: sampling mode: merged values/sources in shard order
    values: List[Tuple] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    #: aggregate mode: merged accumulator (shard-id merge order)
    accumulator: Optional[AggregateAccumulator] = None
    per_shard: List[Dict[str, int]] = field(default_factory=list)

    def source_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for name in self.sources:
            counts[name] = counts.get(name, 0) + 1
        return counts


class ParallelSamplerPool:
    """Fan sampling / online-aggregation shards out across CPU cores.

    Parameters
    ----------
    workers:
        Worker count; defaults to ``os.cpu_count()``.  Does **not** influence
        the answer — only how many shards run concurrently.
    execution:
        ``"thread"``, ``"process"``, or ``"auto"`` (processes for large jobs
        on multi-core machines with picklable tasks, threads otherwise).
    start_method:
        ``multiprocessing`` start method for process execution.  ``"spawn"``
        (the default) is the only start method that is both fork-safe and
        identical across platforms.
    job_timeout:
        Wall-clock seconds to wait for process execution before terminating
        the pool and raising ``RuntimeError`` — a deadlocked worker fails
        fast instead of hanging the job (thread execution runs in-process
        and cannot be forcibly cancelled; guard it externally).
    max_epoch_restarts:
        How many times a job may be discarded and re-run because a mutation
        epoch bump was observed mid-flight.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        execution: str = "auto",
        start_method: str = "spawn",
        job_timeout: Optional[float] = None,
        max_epoch_restarts: int = 3,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}, got {execution!r}")
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        self.execution = execution
        self.start_method = start_method
        self.job_timeout = job_timeout
        self.max_epoch_restarts = max_epoch_restarts
        self.epochs_restarted = 0
        #: execution mode of the most recent run() (resolving "auto" pickles
        #: the tasks, so it is done once per run and remembered for reports)
        self._last_execution: Optional[str] = None

    # ------------------------------------------------------------------- plan
    def plan_tasks(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        count: int,
        *,
        seed: RandomState = None,
        method: str = "auto",
        spec: Optional[AggregateSpec] = None,
        shards: Optional[int] = None,
        max_attempts: int = 1_000_000,
    ) -> List[ShardTask]:
        """Resolve the backend and split the job into a fixed shard list.

        The split assigns ``count // shards`` samples to every shard and one
        extra to the first ``count % shards`` — a pure function of ``count``
        and ``shards``, so the plan (and hence the answer) is independent of
        the worker count.
        """
        if isinstance(queries, JoinQuery):
            queries = (queries,)
        queries = tuple(queries)
        if not queries:
            raise ValueError("need at least one query")
        if count < 0:
            raise ValueError("count must be non-negative")
        shard_count = int(shards) if shards is not None else DEFAULT_SHARDS
        if shard_count < 1:
            raise ValueError(f"shards must be >= 1, got {shard_count}")
        backend = self._resolve_backend(queries, method, spec, count)
        if backend == "online-union" and spec is not None:
            _reject_degenerate_union_count(spec)
        seeds = shard_seed_sequences(seed, shard_count)
        base, extra = divmod(count, shard_count)
        return [
            ShardTask(
                shard_id=i,
                queries=queries,
                backend=backend,
                count=base + (1 if i < extra else 0),
                seed=seeds[i],
                spec=spec,
                max_attempts=max_attempts,
            )
            for i in range(shard_count)
        ]

    # -------------------------------------------------------------------- run
    def run(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        """Execute the shard tasks; results come back in shard-id order."""
        if not tasks:
            return []
        execution = self._resolve_execution(tasks)
        self._last_execution = execution
        if execution == "process":
            results = self._run_processes(tasks)
        else:
            results = self._run_threads(tasks)
        return sorted(results, key=lambda r: r.shard_id)

    def sample(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        count: int,
        *,
        seed: RandomState = None,
        method: str = "auto",
        shards: Optional[int] = None,
        max_attempts: int = 1_000_000,
    ) -> ParallelRunReport:
        """``count`` uniform samples, fanned out and merged in shard order."""
        tasks = self.plan_tasks(
            queries, count, seed=seed, method=method, shards=shards, max_attempts=max_attempts
        )
        results = self._run_with_epoch_guard(tasks)
        report = self._base_report(tasks, results)
        query = tasks[0].queries[0]
        for result in results:
            if result.block is not None:
                # Join-backend shards ship struct-of-arrays blocks (cheap
                # numpy pickling); values are projected once, here, against
                # the coordinator's relations — which the epoch guard just
                # verified are the snapshot the shard sampled.
                report.values.extend(result.block.values(query))
                report.sources.extend([query.name] * len(result.block))
            else:
                report.values.extend(result.values)
                report.sources.extend(result.sources)
        return report

    def aggregate(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        spec: AggregateSpec,
        count: int,
        *,
        seed: RandomState = None,
        method: str = "auto",
        shards: Optional[int] = None,
        max_attempts: int = 1_000_000,
    ) -> ParallelRunReport:
        """Merged :class:`AggregateAccumulator` over ``count`` samples.

        ``count`` is the fleet-wide accepted-sample target (wander-join: walk
        attempts), split across shards.  Call ``report.accumulator.estimate()``
        (or :func:`parallel_aggregate`) for confidence intervals.
        """
        tasks = self.plan_tasks(
            queries,
            count,
            seed=seed,
            method=method,
            spec=spec,
            shards=shards,
            max_attempts=max_attempts,
        )
        results = self._run_with_epoch_guard(tasks)
        report = self._base_report(tasks, results)
        merged: Optional[AggregateAccumulator] = None
        for result in results:
            if result.accumulator is None:
                continue
            if merged is None:
                merged = result.accumulator
            else:
                merged.merge(result.accumulator)
        if merged is None:
            merged = AggregateAccumulator(spec, tasks[0].queries[0].output_schema)
        report.accumulator = merged
        return report

    # -------------------------------------------------------------- internals
    def _resolve_backend(
        self,
        queries: Tuple[JoinQuery, ...],
        method: str,
        spec: Optional[AggregateSpec],
        count: int = 1024,
    ) -> str:
        supported = supported_backends(list(queries) if len(queries) > 1 else queries[0])
        if method == "auto":
            if len(queries) > 1:
                return "online-union"
            from repro.aqp.planner import SamplerPlanner

            # Price the plan at the job's actual fleet-wide sample budget:
            # setup-heavy backends amortize over large jobs (every shard pays
            # its own setup, but the ranking scales the same way).
            backend = SamplerPlanner(queries[0], target_samples=max(count, 1)).plan().backend
            if spec is None and backend == "wander-join":
                # Wander walks are HT-weighted, not uniform: never hand them
                # out for plain sampling.
                backend = "exact-weight"
            return backend
        if method not in SHARD_BACKENDS:
            raise ValueError(f"method must be 'auto' or one of {SHARD_BACKENDS}, got {method!r}")
        if method not in supported:
            raise ValueError(
                f"backend {method!r} cannot sample this query shape; supported: {supported}"
            )
        if method == "wander-join" and spec is None:
            raise ValueError("wander-join produces HT-weighted walks, not uniform samples; "
                             "use it with aggregate() or pick exact-weight/olken")
        return method

    def _resolve_execution(self, tasks: Sequence[ShardTask]) -> str:
        if self.execution != "auto":
            return self.execution
        if self.workers <= 1 or (os.cpu_count() or 1) <= 1:
            return "thread"
        if sum(t.count for t in tasks) < SMALL_JOB_THRESHOLD:
            return "thread"
        if not _tasks_picklable(tasks):
            return "thread"
        return "process"

    def _run_threads(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        if self.workers == 1 or len(tasks) == 1:
            return [run_shard(task) for task in tasks]
        with ThreadPoolExecutor(max_workers=min(self.workers, len(tasks))) as executor:
            return list(executor.map(run_shard, tasks))

    def _run_processes(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        import multiprocessing as mp

        context = mp.get_context(self.start_method)
        processes = min(self.workers, len(tasks))
        pool = context.Pool(processes=processes)
        try:
            async_result = pool.map_async(run_shard, tasks, chunksize=1)
            try:
                results = async_result.get(timeout=self.job_timeout)
            except mp.TimeoutError:
                pool.terminate()
                raise RuntimeError(
                    f"parallel job timed out after {self.job_timeout}s "
                    f"({len(tasks)} shards on {processes} workers); pool terminated"
                ) from None
            pool.close()
        except Exception:
            pool.terminate()
            raise
        finally:
            pool.join()
        return results

    def _run_with_epoch_guard(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        """Run the job, discarding and restarting on mutation epoch bumps."""
        queries = tasks[0].queries
        restarts = 0
        while True:
            before = observed_versions(queries)
            results = self.run(tasks)
            if observed_versions(queries) == before:
                return results
            # A refresh() epoch bump landed while shards were in flight: the
            # results mix database snapshots, so they are discarded wholesale
            # (the PR 2/PR 3 restart semantics) and the job re-runs against
            # the new snapshot.
            restarts += 1
            self.epochs_restarted += 1
            if restarts > self.max_epoch_restarts:
                raise RuntimeError(
                    f"parallel job restarted {restarts} times on mutation epochs "
                    "without completing; pause the update stream or raise "
                    "max_epoch_restarts"
                )

    def _base_report(
        self, tasks: Sequence[ShardTask], results: Sequence[ShardResult]
    ) -> ParallelRunReport:
        return ParallelRunReport(
            backend=tasks[0].backend,
            execution=self._last_execution or self._resolve_execution(tasks),
            workers=self.workers,
            shards=len(tasks),
            attempts=sum(r.attempts for r in results),
            accepted=sum(r.accepted for r in results),
            epochs_restarted=self.epochs_restarted,
            per_shard=[
                {"shard": r.shard_id, "attempts": r.attempts, "accepted": r.accepted}
                for r in results
            ],
        )


def _tasks_picklable(tasks: Sequence[ShardTask]) -> bool:
    """True when every task survives pickling (specs may carry lambdas)."""
    try:
        pickle.dumps(tasks[0])
    except Exception:
        return False
    return True


def _reject_degenerate_union_count(spec: AggregateSpec) -> None:
    """Parallel twin of OnlineAggregator's degenerate-COUNT(*) guard.

    Union shards warm up with *estimated* parameters, so an unfiltered
    COUNT(*) would echo the union-size estimate with a zero-width interval.
    """
    if spec.kind != "count" or spec.where is not None or spec.group_attributes:
        return
    raise ValueError(
        "COUNT(*) over a union of joins just echoes the union-size parameter "
        "(every sample contributes the same |U|); use the union-size "
        "estimators, or add a where filter / group-by"
    )


# ----------------------------------------------------------------- convenience
def parallel_sample(
    queries: Union[JoinQuery, Sequence[JoinQuery]],
    count: int,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    seed: RandomState = None,
    method: str = "auto",
    execution: str = "auto",
    job_timeout: Optional[float] = None,
    max_attempts: int = 1_000_000,
) -> ParallelRunReport:
    """One-shot parallel sampling: plan shards, fan out, merge in shard order."""
    pool = ParallelSamplerPool(workers=workers, execution=execution, job_timeout=job_timeout)
    return pool.sample(
        queries, count, seed=seed, method=method, shards=shards, max_attempts=max_attempts
    )


def parallel_aggregate(
    queries: Union[JoinQuery, Sequence[JoinQuery]],
    spec: AggregateSpec,
    count: int,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    seed: RandomState = None,
    method: str = "auto",
    execution: str = "auto",
    job_timeout: Optional[float] = None,
    max_attempts: int = 1_000_000,
    confidence: float = 0.95,
    ci_method: str = "clt",
) -> AggregateReport:
    """One-shot parallel aggregation with confidence intervals.

    Bit-identical to running the same shard plan sequentially: the partial
    accumulators merge through the exactly-rounded merge law, so the report
    does not depend on worker count, execution backend, or arrival order.
    """
    pool = ParallelSamplerPool(workers=workers, execution=execution, job_timeout=job_timeout)
    report = pool.aggregate(
        queries,
        spec,
        count,
        seed=seed,
        method=method,
        shards=shards,
        max_attempts=max_attempts,
    )
    assert report.accumulator is not None
    return report.accumulator.estimate(confidence=confidence, ci_method=ci_method)


def sequential_reference(tasks: Sequence[ShardTask]) -> List[ShardResult]:
    """Run a shard plan in a plain in-process loop (the determinism oracle).

    Benchmarks and tests compare the parallel service's merged answers
    against this reference to prove bit-identical fan-out/merge.
    """
    return [run_shard(task) for task in tasks]


__all__ = [
    "DEFAULT_SHARDS",
    "EXECUTION_MODES",
    "SMALL_JOB_THRESHOLD",
    "ParallelRunReport",
    "ParallelSamplerPool",
    "parallel_sample",
    "parallel_aggregate",
    "sequential_reference",
]
