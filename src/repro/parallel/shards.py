"""Shard specifications and the worker entry point of the parallel service.

A parallel run is planned as a fixed list of **shards**.  Each shard is a
self-contained, picklable :class:`ShardTask`: the queries to sample, the
backend to use, the number of accepted samples (or walk attempts) the shard
must produce, and a :class:`numpy.random.SeedSequence` child derived from the
root seed with :func:`repro.utils.rng.shard_seed_sequences`.

Because a shard's output depends only on its task — never on which worker
executes it, whether that worker is a thread or a spawned process, or how
many sibling shards run concurrently — the coordinator can merge shard
results *in shard order* and obtain answers that are bit-identical to a
sequential run of the same shard list.  For aggregation the merge is the
:meth:`repro.aqp.estimators.AggregateAccumulator.merge` law (exactly-rounded
sums, chunk-order-invariant); for plain sampling it is list concatenation.

:func:`run_shard` is the single worker entry point.  It must stay a
module-level function: ``multiprocessing`` with the ``spawn`` start method
imports this module inside the worker and looks the function up by name.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aqp.estimators import AggregateAccumulator, AggregateSpec
from repro.joins.query import JoinQuery
from repro.resilience.faults import (
    FaultPlan,
    apply_pre_fault,
    fault_plan_from_env,
    in_worker_process,
)
from repro.sampling.blocks import SampleBlock
from repro.utils.rng import ensure_rng

#: Backends a shard can run.  ``wander-join`` is aggregate-only (its walks
#: carry Horvitz–Thompson weights, not uniform samples).
SHARD_BACKENDS = ("exact-weight", "olken", "wander-join", "online-union")

#: Backend -> JoinSampler weight-function name.
_JOIN_WEIGHTS = {"exact-weight": "ew", "olken": "eo"}


@dataclass(frozen=True)
class ShardTask:
    """One self-contained unit of parallel work (picklable).

    Attributes
    ----------
    shard_id:
        Position of this shard in the plan; results merge in this order.
    queries:
        The query (or union-compatible queries) to sample.  Process workers
        receive a pickled copy of the base relations; thread workers share
        the coordinator's objects.
    backend:
        One of :data:`SHARD_BACKENDS`.
    count:
        Accepted samples this shard must produce (``wander-join``: walk
        *attempts*, since walks are the attempt unit of that backend).
    seed:
        The shard's independent :class:`numpy.random.SeedSequence` child.
    spec:
        Aggregate to accumulate, or ``None`` for plain sampling.  Process
        execution requires the spec (notably its ``where`` callable) to be
        picklable; the pool falls back to threads otherwise.
    max_attempts:
        Attempt budget forwarded to the underlying sampler.
    """

    shard_id: int
    queries: Tuple[JoinQuery, ...]
    backend: str
    count: int
    seed: np.random.SeedSequence
    spec: Optional[AggregateSpec] = None
    max_attempts: int = 1_000_000

    def __post_init__(self) -> None:
        if self.backend not in SHARD_BACKENDS:
            raise ValueError(f"backend must be one of {SHARD_BACKENDS}, got {self.backend!r}")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if not self.queries:
            raise ValueError("a shard needs at least one query")
        if self.backend == "wander-join" and self.spec is None:
            raise ValueError("wander-join shards are aggregate-only (HT weights)")


@dataclass
class ShardResult:
    """What one shard hands back to the coordinator (picklable).

    Exactly one of ``accumulator`` (aggregate mode), ``block`` (join-backend
    sampling mode), or ``values`` (union sampling mode) is populated.
    Join-backend sampling shards ship a struct-of-arrays
    :class:`~repro.sampling.blocks.SampleBlock` — a handful of small integer
    arrays that pickle for cents — instead of boxed draw lists; the
    coordinator projects values from the block against its own relations
    (validated unchanged by the epoch guard).  ``attempts``/``accepted``
    mirror the sampler's attempt-level accounting so the coordinator can
    report fleet totals.
    """

    shard_id: int
    attempts: int = 0
    accepted: int = 0
    accumulator: Optional[AggregateAccumulator] = None
    block: Optional[SampleBlock] = None
    values: List[Tuple] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    #: per-relation version counters observed when the shard started, used by
    #: the coordinator's epoch guard (thread workers share live relations)
    db_versions: Tuple[int, ...] = ()
    #: supervisor attempt that produced this result (0 = first try); echoes
    #: back so late results of abandoned attempts are recognizable
    worker_attempt: int = 0
    #: blake2b digest over the payload, computed by the worker just before
    #: hand-off and re-verified by the coordinator before merging; ``None``
    #: when the payload is unpicklable (lambda predicates) and the check is
    #: skipped
    checksum: Optional[str] = None

    def fingerprint(self) -> Optional[str]:
        """Digest of the merge-relevant payload, or ``None`` if unpicklable."""
        payload = (
            self.shard_id,
            self.attempts,
            self.accepted,
            self.db_versions,
            self.accumulator,
            self.block,
            self.values,
            self.sources,
        )
        try:
            raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        return hashlib.blake2b(raw, digest_size=16).hexdigest()

    def seal(self) -> "ShardResult":
        """Stamp the integrity checksum (the worker's last act)."""
        self.checksum = self.fingerprint()
        return self


def observed_versions(queries: Tuple[JoinQuery, ...]) -> Tuple[int, ...]:
    """Version counters of every base relation, in query/declaration order."""
    versions: List[int] = []
    for query in queries:
        versions.extend(r.version for r in query.relations.values())
    return tuple(versions)


def run_shard(
    task: ShardTask,
    attempt: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    deadline: Optional[object] = None,
    seal: Optional[bool] = None,
) -> ShardResult:
    """Execute one shard; the worker entry point for threads and processes.

    The draw stream depends only on ``task.seed`` and the relation contents,
    so thread and process execution of the same task return identical
    results — and so does a *retry*: ``attempt`` feeds only the
    fault-injection harness and supervisor bookkeeping, never the sampler
    RNG, which is what makes a re-executed shard bit-identical to the run
    that failed.

    ``fault_plan`` threads the deterministic fault harness into the worker
    (``None`` falls back to the ``REPRO_FAULT_RATE`` environment harness;
    pass :data:`repro.resilience.faults.NO_FAULTS` to opt out explicitly).
    ``deadline`` is an optional cooperative-deadline object whose ``check()``
    raises when the in-process (thread/inline) time budget is spent; it is
    consulted at stage boundaries since a thread cannot be forcibly killed.
    ``seal`` controls the integrity checksum (an extra pickle of the
    payload): ``None`` stamps it only where it can catch anything — inside a
    spawned worker, whose result crosses a pipe, or under an active fault
    action — so the in-process fast path pays nothing for it.
    """
    if fault_plan is None:
        fault_plan = fault_plan_from_env()
    action = fault_plan.action_for(task.shard_id, attempt) if fault_plan else None
    if deadline is not None:
        deadline.check("shard start")
    apply_pre_fault(action, task.shard_id, attempt)
    rng = ensure_rng(task.seed)
    result = ShardResult(
        shard_id=task.shard_id,
        db_versions=observed_versions(task.queries),
        worker_attempt=attempt,
    )
    if task.count == 0:
        if task.spec is not None:
            result.accumulator = AggregateAccumulator(
                task.spec, task.queries[0].output_schema
            )
        return _finish_shard(result, action, deadline, seal)
    if task.backend == "online-union":
        _run_union_shard(task, rng, result)
    elif task.backend == "wander-join":
        _run_wander_shard(task, rng, result)
    else:
        _run_join_shard(task, rng, result)
    return _finish_shard(result, action, deadline, seal)


def _finish_shard(result: ShardResult, action, deadline, seal) -> ShardResult:
    """Seal the result; apply a ``corrupt`` fault *after* the checksum."""
    if deadline is not None:
        deadline.check("shard finish")
    if seal is None:
        # Auto: the checksum guards the pipe back from a spawned worker and
        # the fault harness's corrupt faults.  A thread/inline result never
        # leaves the coordinator's address space, so sealing it would only
        # tax the fault-free fast path with an extra pickle of the payload.
        seal = in_worker_process() or action is not None
    if seal:
        result.seal()
    if action is not None and action.kind == "corrupt":
        # Simulated transport/memory corruption: the payload mutates after
        # the worker stamped its checksum, so the coordinator's pre-merge
        # integrity check must reject this result.
        result.attempts += 1
        result.accepted += 1
    return result


def verify_shard_result(
    task: ShardTask,
    result: ShardResult,
    expected_versions: Optional[Tuple[int, ...]] = None,
) -> Optional[str]:
    """Pre-merge integrity check; returns a problem description or ``None``.

    Three layers: the **shard-id echo** (the result must answer the task it
    was dispatched for), the **epoch echo** (the result must describe the
    database snapshot the coordinator planned against — a mismatch while the
    live relations still show the planned versions can only be corruption;
    a mismatch *with* a live version bump is a genuine mutation epoch and is
    left to the pool's epoch guard), and the **payload checksum** (the
    worker's sealed digest must reproduce on the coordinator's side).
    Unpicklable payloads (lambda predicates) carry no checksum; the cheaper
    echoes still apply.
    """
    if result.shard_id != task.shard_id:
        return (
            f"shard-id echo mismatch: task {task.shard_id} received a result "
            f"claiming shard {result.shard_id}"
        )
    if result.checksum is not None and result.fingerprint() != result.checksum:
        return "payload checksum mismatch: result corrupted in flight"
    if expected_versions is not None and result.db_versions != expected_versions:
        if observed_versions(task.queries) == expected_versions:
            return (
                f"epoch echo mismatch: result claims snapshot {result.db_versions}, "
                f"coordinator planned {expected_versions} and the live relations "
                "still match the plan"
            )
        return None  # genuine mid-flight mutation: the epoch guard restarts
    return None


def _run_join_shard(task: ShardTask, rng: np.random.Generator, result: ShardResult) -> None:
    """Accept/reject JoinSampler shard (exact-weight / olken), block-native."""
    from repro.sampling.join_sampler import JoinSampler

    query = task.queries[0]
    sampler = JoinSampler(query, weights=_JOIN_WEIGHTS[task.backend], seed=rng)
    if task.spec is not None:
        accumulator = AggregateAccumulator(task.spec, query.output_schema)
        total_weight = sampler.weight_function.total_weight
        if total_weight <= 0:
            # Empty join: every attempt fails; account them directly, exactly
            # like OnlineAggregator._step_join does sequentially.
            accumulator.observe([], attempts=task.count, weight=1.0)
        else:
            blocks = [sampler.sample_block(task.count, max_attempts=task.max_attempts)]
            blocks.extend(sampler.pop_buffered_blocks())
            block = SampleBlock.concat(blocks)
            accumulator.ingest_block(
                block.value_columns(query),
                attempts=sampler.stats.attempts,
                weight=total_weight,
            )
        result.accumulator = accumulator
        # Read the counters off the accumulator, not the sampler: the
        # empty-join branch accounts its failed attempts there without ever
        # touching the sampler, and both must agree in the merged report.
        result.attempts = accumulator.attempts
        result.accepted = accumulator.accepted
    else:
        result.block = sampler.sample_block(task.count, max_attempts=task.max_attempts)
        result.attempts = sampler.stats.attempts
        result.accepted = sampler.stats.accepted


def _run_wander_shard(task: ShardTask, rng: np.random.Generator, result: ShardResult) -> None:
    """Wander-join shard: ``count`` walk attempts with per-walk HT weights."""
    from repro.sampling.wander_join import WanderJoin

    query = task.queries[0]
    walker = WanderJoin(query, seed=rng)
    block = walker.walk_block(task.count)
    accumulator = AggregateAccumulator(task.spec, query.output_schema)
    accumulator.ingest_block(
        block.value_columns(query), attempts=block.attempts, weights=block.weights
    )
    result.accumulator = accumulator
    result.attempts = block.attempts
    result.accepted = len(block)


def _run_union_shard(task: ShardTask, rng: np.random.Generator, result: ShardResult) -> None:
    """Set-union shard via :class:`OnlineUnionSampler` (histogram warm-up).

    The cheap histogram warm-up keeps per-shard fixed costs low — a parallel
    run pays the warm-up once per shard, not once per job.
    """
    from repro.core.online_sampler import OnlineUnionSampler

    sampler = OnlineUnionSampler(list(task.queries), seed=rng, warmup="histogram")
    sample_result = sampler.sample(task.count)
    if task.spec is not None:
        accumulator = AggregateAccumulator(task.spec, task.queries[0].output_schema)
        union_size = float(sample_result.parameters.union_size)
        accumulator.observe(
            [s.value for s in sample_result.samples],
            attempts=len(sample_result.samples),
            weight=union_size,
        )
        result.accumulator = accumulator
        result.attempts = accumulator.attempts
        result.accepted = accumulator.accepted
    else:
        result.values = [s.value for s in sample_result.samples]
        result.sources = [s.source_join for s in sample_result.samples]
        result.attempts = sample_result.stats.iterations
        result.accepted = len(sample_result.samples)


__all__ = [
    "SHARD_BACKENDS",
    "ShardTask",
    "ShardResult",
    "observed_versions",
    "run_shard",
    "verify_shard_result",
]
