"""Multi-core parallel sampling service with mergeable AQP shards.

Fan sampling and online aggregation out across CPU cores (process- or
thread-based workers) and merge the per-shard results deterministically:
the shard plan is a pure function of the job and the root seed, partial
accumulators merge through the exactly-rounded merge law, and mutation
epochs observed mid-flight cancel and restart the job.  Shards run under a
:class:`~repro.resilience.supervisor.ShardSupervisor` — per-shard timeouts,
bounded retries, degradation ladder, job deadlines with partial results —
without changing any merged answer.  See ``docs/parallel.md`` for the
architecture and the seed-sharding scheme, and ``docs/resilience.md`` for
the fault-tolerance layer.
"""

from repro.parallel.pool import (
    DEFAULT_SHARDS,
    EXECUTION_MODES,
    SMALL_JOB_THRESHOLD,
    ParallelRunReport,
    ParallelSamplerPool,
    parallel_aggregate,
    parallel_sample,
    sequential_reference,
)
from repro.parallel.shards import (
    SHARD_BACKENDS,
    ShardResult,
    ShardTask,
    observed_versions,
    run_shard,
)

__all__ = [
    "DEFAULT_SHARDS",
    "EXECUTION_MODES",
    "SHARD_BACKENDS",
    "SMALL_JOB_THRESHOLD",
    "ParallelRunReport",
    "ParallelSamplerPool",
    "ShardResult",
    "ShardTask",
    "observed_versions",
    "parallel_aggregate",
    "parallel_sample",
    "run_shard",
    "sequential_reference",
]
