"""Cost-based sampler planning: pick a backend and batch size automatically.

Users previously had to hand-pick Olken vs exact-weight vs wander-join per
workload.  :class:`SamplerPlanner` makes that choice from cheap statistics:
the Olken bound and its average-degree refinement (both derived from
:class:`~repro.relational.statistics.ColumnStatistics` maintained on the base
relations) feed the backend cost model in :mod:`repro.analysis.cost`, and the
cheapest *supported* backend wins.

Capability matrix (what "supported" means):

* ``online-union`` — the only backend that samples a union of several joins;
  never eligible for a single join.
* ``exact-weight`` / ``olken`` — any single join (cyclic skeletons are
  handled by residual rejection, non-pushed-down predicates by predicate
  rejection).
* ``wander-join`` — single **acyclic** joins whose predicates are pushed
  down: :class:`~repro.sampling.wander_join.WanderJoin` walks verify residual
  conditions but not §8.3-style predicate rejection, and on cyclic templates
  the HT weights ignore residual survival, so the planner never selects it
  there.  (The Hypothesis suite in ``tests/test_aqp_properties.py`` pins this
  invariant for random query shapes.)

The plan also fixes the sampler batch size: large enough that one batched
pass is expected to deliver the whole per-call demand despite rejections,
clamped to the engine's ``[64, 8192]`` sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis.cost import (
    BackendCostModel,
    acceptance_ratio,
    estimate_backend_costs,
    walk_success_ratio,
)
from repro.joins.query import JoinQuery

#: Every backend the planner can hand out.
BACKENDS = ("exact-weight", "olken", "wander-join", "online-union")

#: Backend -> weight-function name for JoinSampler-based backends.
BACKEND_WEIGHTS = {"exact-weight": "ew", "olken": "eo"}

_MIN_BATCH = 64
_MAX_BATCH = 8192


@dataclass(frozen=True)
class SamplerPlan:
    """The planner's decision plus the evidence behind it."""

    backend: str
    #: ``"ew"``/``"eo"`` for JoinSampler backends, None otherwise
    weights: Optional[str]
    batch_size: int
    expected_acceptance: float
    #: backend -> expected seconds for the target sample size
    expected_costs: Dict[str, float]
    target_samples: int
    rationale: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "weights": self.weights,
            "batch_size": self.batch_size,
            "expected_acceptance": self.expected_acceptance,
            "target_samples": self.target_samples,
            "rationale": list(self.rationale),
        }


def supported_backends(
    queries: Union[JoinQuery, Sequence[JoinQuery]],
) -> Tuple[str, ...]:
    """The backends capable of sampling the given query/queries at all."""
    if isinstance(queries, JoinQuery):
        queries = [queries]
    queries = list(queries)
    if not queries:
        raise ValueError("need at least one query to plan for")
    if len(queries) > 1:
        return ("online-union",)
    query = queries[0]
    supported = ["exact-weight", "olken"]
    predicates_ok = query.push_down_predicates or not query.predicates
    if not query.is_cyclic and predicates_ok:
        supported.append("wander-join")
    return tuple(supported)


class SamplerPlanner:
    """Choose the cheapest supported backend for a query or union of queries.

    Parameters
    ----------
    queries:
        One :class:`JoinQuery` or a union-compatible sequence of them.
    target_samples:
        The sample budget the cost is evaluated at.  Online aggregation with
        an ``until()`` stopping rule typically needs a few thousand samples;
        bulk sampling more — setup-heavy backends amortize with the budget.
    cost_model:
        Override the unit costs (mainly for tests).
    """

    def __init__(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        target_samples: int = 1024,
        cost_model: Optional[BackendCostModel] = None,
    ) -> None:
        if isinstance(queries, JoinQuery):
            queries = [queries]
        self.queries: Tuple[JoinQuery, ...] = tuple(queries)
        if not self.queries:
            raise ValueError("need at least one query to plan for")
        if target_samples <= 0:
            raise ValueError("target_samples must be positive")
        self.target_samples = int(target_samples)
        self.cost_model = cost_model

    # ------------------------------------------------------------------ public
    @property
    def supported(self) -> Tuple[str, ...]:
        return supported_backends(self.queries)

    def plan(self) -> SamplerPlan:
        """The cheapest supported backend, with batch size and rationale."""
        supported = self.supported
        if supported == ("online-union",):
            return SamplerPlan(
                backend="online-union",
                weights=None,
                batch_size=_clamp_batch(self.target_samples),
                expected_acceptance=1.0,
                expected_costs={},
                target_samples=self.target_samples,
                rationale=(
                    f"{len(self.queries)} union-compatible joins: only the "
                    "online union sampler draws from a set union",
                ),
            )

        query = self.queries[0]
        # A plan is a pure function of the database snapshot and the budget;
        # re-planning the same (epoch, target) — e.g. repeated aggregations
        # between mutations — must not re-pay the statistics passes, so the
        # decision is memoized on the query keyed by the relation versions
        # (the same epoch protocol the samplers use).
        versions = tuple(r.version for r in query.relations.values())
        cache_key = (versions, self.target_samples, self.cost_model)
        cached = getattr(query, "_sampler_plan_cache", None)
        if cached is not None and cached[0] == cache_key:
            return cached[1]
        acceptance = acceptance_ratio(query)
        walk_success = (
            walk_success_ratio(query) if "wander-join" in supported else None
        )
        eligible = estimate_backend_costs(
            query,
            self.target_samples,
            self.cost_model,
            acceptance=acceptance,
            walk_success=walk_success,
            backends=supported,
        )
        backend = min(eligible, key=lambda name: eligible[name])
        rationale = [
            f"acceptance ratio ~{acceptance:.3g} "
            "(avg/max degree along the join tree)",
            "expected cost: "
            + ", ".join(f"{n}={eligible[n]:.2e}s" for n in sorted(eligible)),
        ]
        if "wander-join" not in supported:
            reason = (
                "cyclic template"
                if query.is_cyclic
                else "predicates are not pushed down"
            )
            rationale.append(f"wander-join excluded: {reason}")
        if backend == "olken":
            per_attempt_acceptance = acceptance
        elif backend == "wander-join":
            # Walks fail on dangling rows, not on the accept/reject test.
            per_attempt_acceptance = walk_success if walk_success is not None else 1.0
            rationale.append(
                f"walk success ~{per_attempt_acceptance:.3g} (dangling-row model)"
            )
        else:
            per_attempt_acceptance = 1.0
        if query.is_cyclic:
            model = self.cost_model or BackendCostModel()
            per_attempt_acceptance *= model.cyclic_survival_prior
        plan = SamplerPlan(
            backend=backend,
            weights=BACKEND_WEIGHTS.get(backend),
            batch_size=_clamp_batch(self.target_samples / max(per_attempt_acceptance, 1e-9)),
            expected_acceptance=per_attempt_acceptance,
            expected_costs=eligible,
            target_samples=self.target_samples,
            rationale=tuple(rationale),
        )
        query._sampler_plan_cache = (cache_key, plan)
        return plan


def choose_weights(query: JoinQuery, target_samples: int = 1024) -> str:
    """``"ew"`` or ``"eo"`` for ``JoinSampler(query, weights="auto")``.

    Restricted to the two weight functions :class:`JoinSampler` can execute;
    wander-join / online-union level decisions live in :class:`SamplerPlanner`
    and the AQP aggregator.
    """
    costs = estimate_backend_costs(
        query, target_samples, backends=("exact-weight", "olken")
    )
    return "ew" if costs["exact-weight"] <= costs["olken"] else "eo"


def _clamp_batch(expected_attempts: float) -> int:
    """Batch size that should satisfy one call's demand in a single pass."""
    return int(min(max(expected_attempts * 1.25, _MIN_BATCH), _MAX_BATCH))


__all__ = [
    "BACKENDS",
    "BACKEND_WEIGHTS",
    "SamplerPlan",
    "SamplerPlanner",
    "supported_backends",
    "choose_weights",
]
