"""Online aggregation: drive a sampler until the error target is met.

:class:`OnlineAggregator` wires a planner-selected sampler backend to a
streaming :class:`~repro.aqp.estimators.AggregateAccumulator` and exposes the
classic online-aggregation loop: draw a batch, update the estimate, report a
confidence interval, stop once ``until(rel_error, confidence)`` is satisfied.

Update semantics (``repro.dynamic`` epochs): every batch first re-syncs the
backend with the base relations.  When a mutation epoch is detected the
accumulator **restarts** — Horvitz–Thompson contributions are only exchangeable
within one database snapshot, so mixing attempts across epochs would silently
bias the estimate.  The number of restarts is tracked in
:attr:`OnlineAggregator.epochs_restarted`; estimates reported before a
mutation remain valid for the snapshot they were computed on.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro.cache.store import SampleCache, epoch_vector
from repro.resilience.errors import EmptyResultError, JobDeadlineExceeded

from repro.aqp.estimators import AggregateAccumulator, AggregateReport, AggregateSpec
from repro.aqp.planner import (
    BACKEND_WEIGHTS,
    SamplerPlan,
    SamplerPlanner,
    supported_backends,
)
from repro.core.online_sampler import OnlineUnionSampler
from repro.joins.query import JoinQuery
from repro.sampling.blocks import SampleBlock
from repro.sampling.join_sampler import JoinSampler
from repro.sampling.wander_join import WanderJoin, z_value
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


class OnlineAggregator:
    """Approximate COUNT/SUM/AVG/GROUP-BY over a join or union of joins.

    Parameters
    ----------
    queries:
        One :class:`JoinQuery` (SQL bag semantics) or a union-compatible
        sequence of them (set semantics over ``J_1 ∪ ... ∪ J_n``).
    spec:
        The aggregate to compute.
    method:
        ``"auto"`` (cost-based planning) or an explicit backend:
        ``"exact-weight"``, ``"olken"``, ``"wander-join"``, ``"online-union"``.
        Explicit backends are validated against the capability matrix.
    union_sampler:
        Optional pre-built union sampler (e.g. a strict
        :class:`~repro.core.union_sampler.SetUnionSampler` with exact
        parameters); defaults to :class:`OnlineUnionSampler`.
    confidence / ci_method:
        Interval defaults used by :meth:`estimate` and the stopping rule.
    parallelism:
        When > 1, every :meth:`step` fans its batch out across that many
        in-process sampler shards (independent seed streams derived from
        ``seed``) and merges the partial results in shard order, so a fixed
        ``(seed, parallelism)`` pair is fully deterministic.  Epoch restarts
        apply to the whole shard fleet: a ``refresh()`` bump observed on any
        shard discards the accumulated state, exactly as in the sequential
        path.  (For process-based fan-out over CPU cores use
        :func:`repro.parallel.parallel_aggregate`.)
    cache:
        Optional :class:`~repro.cache.store.SampleCache`.  Each step first
        re-consumes any cached blocks of this join shape drawn under the
        current epoch (whole blocks, attempts and weight intact — the same
        pooling the parallel shard merge performs), and tops up with fresh
        draws only when the cached stream is exhausted; fresh draws are
        published back so later aggregators over the same shape reuse them.
        ``cached_samples`` / ``fresh_samples`` report the split.  With a
        cold or absent cache the draw stream is byte-for-byte what it would
        be without ``cache=`` (the cache never consumes RNG state).
        Requires a single query, ``parallelism == 1``, and a shared-weight
        JoinSampler backend; an ``auto`` plan that picks another backend
        simply runs uncached.
    """

    def __init__(
        self,
        queries: Union[JoinQuery, Sequence[JoinQuery]],
        spec: AggregateSpec,
        method: str = "auto",
        seed: RandomState = None,
        confidence: float = 0.95,
        ci_method: str = "clt",
        batch_size: Optional[int] = None,
        target_samples: int = 1024,
        union_sampler: Optional[object] = None,
        bootstrap_replicates: int = 200,
        parallelism: int = 1,
        join_sampler: Optional[JoinSampler] = None,
        cache: Optional[SampleCache] = None,
    ) -> None:
        if isinstance(queries, JoinQuery):
            queries = [queries]
        self.queries: Tuple[JoinQuery, ...] = tuple(queries)
        if not self.queries:
            raise ValueError("need at least one query to aggregate over")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.spec = spec
        self.confidence = confidence
        self.ci_method = ci_method
        self.bootstrap_replicates = bootstrap_replicates
        self.parallelism = int(parallelism)
        sampler_rng, self._ci_rng = spawn_rngs(ensure_rng(seed), 2)

        supported = supported_backends(self.queries)
        if method == "auto":
            self.plan: SamplerPlan = SamplerPlanner(
                self.queries, target_samples=target_samples
            ).plan()
        elif method in supported:
            self.plan = SamplerPlan(
                backend=method,
                weights=BACKEND_WEIGHTS.get(method),
                batch_size=batch_size or 1024,
                expected_acceptance=1.0,
                expected_costs={},
                target_samples=target_samples,
                rationale=(f"backend {method!r} requested explicitly",),
            )
        else:
            raise ValueError(
                f"backend {method!r} cannot sample this query shape; "
                f"supported: {supported}"
            )
        self.backend = self.plan.backend
        if batch_size is not None:
            self.batch_size = int(batch_size)
        elif self.backend == "wander-join":
            # Wander-join steps are walk *attempts*: use the plan's
            # rejection-inflated sizing so a step lands near the target.
            self.batch_size = self.plan.batch_size
        else:
            # Accept/reject and union steps request *accepted* samples; the
            # samplers size their internal attempt batches themselves
            # (plan.batch_size caps JoinSampler's attempt batches below).
            self.batch_size = min(self.plan.target_samples, self.plan.batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

        schema = self.queries[0].output_schema
        self.accumulator = AggregateAccumulator(spec, schema)
        self.epochs_restarted = 0

        self._walker: Optional[WanderJoin] = None
        self._walker_shards: List[WanderJoin] = []
        self._join_sampler: Optional[JoinSampler] = None
        self._union_sampler = None
        self._union_shards: List[OnlineUnionSampler] = []
        self._union_consumed = 0
        self._union_shard_consumed: List[int] = []
        if self.backend == "online-union":
            if union_sampler is not None:
                if self.parallelism > 1:
                    raise ValueError(
                        "a prebuilt union_sampler cannot be sharded; drop "
                        "union_sampler= or set parallelism=1"
                    )
                self._union_sampler = union_sampler
            elif self.parallelism > 1:
                self._union_shards = [
                    OnlineUnionSampler(list(self.queries), seed=stream)
                    for stream in spawn_rngs(sampler_rng, self.parallelism)
                ]
                self._union_sampler = self._union_shards[0]
                self._union_shard_consumed = [0] * self.parallelism
            else:
                self._union_sampler = OnlineUnionSampler(
                    list(self.queries), seed=sampler_rng
                )
            self._reject_degenerate_union_count()
        elif self.backend == "wander-join":
            if self.parallelism > 1:
                self._walker_shards = [
                    WanderJoin(self.queries[0], seed=stream)
                    for stream in spawn_rngs(sampler_rng, self.parallelism)
                ]
                self._walker = self._walker_shards[0]
            else:
                self._walker = WanderJoin(self.queries[0], seed=sampler_rng)
        else:
            if join_sampler is not None:
                if self.parallelism > 1:
                    raise ValueError(
                        "a prebuilt join_sampler carries its own parallelism; "
                        "drop join_sampler= or set parallelism=1"
                    )
                # Warm server path: reuse a (possibly structure-sharing)
                # sampler instead of rebuilding weights and alias tables.
                join_sampler.refresh()
                self._join_sampler = join_sampler
            else:
                self._join_sampler = JoinSampler(
                    self.queries[0],
                    weights=self.plan.weights or "ew",
                    seed=sampler_rng,
                    max_batch_size=max(self.batch_size, 1),
                    parallelism=self.parallelism,
                )
        if join_sampler is not None and self.backend in ("online-union", "wander-join"):
            raise ValueError(
                f"join_sampler= only applies to JoinSampler backends, not "
                f"{self.backend!r}"
            )
        # Sample-cache tier: consume/publish shared draw streams (see
        # repro.cache.store for the validity invariants).
        self.cache: Optional[SampleCache] = None
        self._cache_entry = None
        self._cache_cursor = 0
        self._cache_weights: Optional[str] = None
        self.cached_samples = 0
        self.fresh_samples = 0
        if cache is not None:
            if len(self.queries) > 1:
                raise ValueError(
                    "cache= applies to a single join query; union streams "
                    "have per-join ownership and cannot be pooled wholesale"
                )
            if self.parallelism > 1:
                raise ValueError(
                    "cache= requires parallelism=1; sharded streams merge "
                    "through the parallel coordinator instead"
                )
            if method != "auto" and self.backend not in BACKEND_WEIGHTS:
                raise ValueError(
                    f"cache= only supports shared-weight JoinSampler backends "
                    f"({tuple(BACKEND_WEIGHTS)}), not {self.backend!r}"
                )
            if self.backend in BACKEND_WEIGHTS:
                self.cache = cache
                self._cache_weights = self.plan.weights or BACKEND_WEIGHTS[self.backend]
        self._db_versions = self._current_versions()
        # One aggregator may serve concurrent callers (the server's shared
        # path): the lock serializes step/estimate, so interleaved runs see
        # consistent accumulator state at step granularity.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ public
    @property
    def sampler(self) -> object:
        """The live backend sampler (JoinSampler, WanderJoin, or union sampler)."""
        return self._join_sampler or self._walker or self._union_sampler

    def step(self, batch_size: Optional[int] = None) -> AggregateReport:
        """Ingest one batch of draws and return the refreshed estimates."""
        size = int(batch_size or self.batch_size)
        if size <= 0:
            raise ValueError("batch_size must be positive")
        with self._lock:
            self._sync_epoch()
            if self.backend == "online-union":
                self._step_union(size)
            elif self.backend == "wander-join":
                self._step_wander(size)
            else:
                self._step_join(size)
            return self.estimate()

    def estimate(self) -> AggregateReport:
        """Current estimates without drawing further samples."""
        with self._lock:
            return self.accumulator.estimate(
                confidence=self.confidence,
                ci_method=self.ci_method,
                bootstrap_replicates=self.bootstrap_replicates,
                seed=self._ci_rng,
            )

    def until(
        self,
        rel_error: float,
        confidence: Optional[float] = None,
        max_attempts: int = 1_000_000,
        min_accepted: int = 32,
        deadline: Optional[float] = None,
        allow_partial: bool = False,
    ) -> AggregateReport:
        """Online-aggregation stopping rule.

        Draw batches until every group's confidence interval (at
        ``confidence``, default the aggregator's) has relative half-width at
        most ``rel_error`` — or, for exactly-zero estimates, zero width.
        Raises ``RuntimeError`` when ``max_attempts`` draw attempts do not
        reach the target (degenerate aggregate or budget too small).

        ``deadline`` bounds the run in wall-clock seconds (checked between
        steps — one step is the granularity of cancellation).  When it
        expires before convergence the default is to raise
        :class:`~repro.resilience.errors.JobDeadlineExceeded`; with
        ``allow_partial=True`` the current estimate comes back instead,
        marked ``degraded=True`` — an unbiased answer whose *achieved*
        relative error (``report.max_relative_half_width()``) is simply
        wider than the one requested.  A partial return requires at least
        one accepted sample: if the budget expires before anything is
        accepted there is no honest estimate to degrade to (the all-rejected
        accumulator would report a zero-width CI around 0.0, and
        ``achieved_rel_error`` would be 0/0), so
        :class:`~repro.resilience.errors.EmptyResultError` is raised
        instead.
        """
        if rel_error <= 0:
            raise ValueError("rel_error must be positive")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        if confidence is not None:
            self.confidence = confidence
        deadline_at = None if deadline is None else time.monotonic() + deadline
        report = self.estimate()
        # Geometric step schedule: start small so an easy target stops after
        # a few hundred samples, grow toward the planned batch size so a
        # tight target is not nickel-and-dimed by per-step overhead.  Total
        # overshoot is bounded by the final step; total estimate() cost stays
        # O(n log n).
        step_size = min(self.batch_size, 256)
        while not self._converged(report, rel_error, min_accepted):
            with self._lock:
                attempts = self.accumulator.attempts
            if deadline_at is not None and time.monotonic() >= deadline_at:
                if allow_partial:
                    return self._partial_report(report, deadline)
                achieved = report.max_relative_half_width()
                raise JobDeadlineExceeded(
                    f"online aggregation hit its {deadline:g}s deadline before "
                    f"reaching rel_error={rel_error} at confidence="
                    f"{self.confidence} (achieved relative half-width: "
                    f"{achieved:.3g} after {attempts} attempts); "
                    "pass allow_partial=True for the degraded estimate",
                    deadline=deadline,
                )
            if attempts >= max_attempts:
                if allow_partial:
                    return self._partial_report(report, deadline)
                raise RuntimeError(
                    f"online aggregation did not reach rel_error={rel_error} at "
                    f"confidence={self.confidence} within {max_attempts} attempts "
                    f"(worst relative half-width: {report.max_relative_half_width():.3g})"
                )
            report = self.step(step_size)
            step_size = min(step_size * 2, self.batch_size)
        return report

    # --------------------------------------------------------------- internals
    def _partial_report(self, report: AggregateReport, deadline: Optional[float]) -> AggregateReport:
        """Degrade ``report`` for an ``allow_partial`` return — or refuse.

        A degraded report with zero accepted samples would be a lie (finite
        zero-width CI around 0.0, undefined achieved error), so the empty
        case raises :class:`EmptyResultError` instead of returning.
        """
        with self._lock:
            accepted = self.accumulator.accepted
            attempts = self.accumulator.attempts
        if accepted == 0:
            raise EmptyResultError(
                "online aggregation budget expired before any sample was "
                "accepted; no partial estimate exists — retry with a larger "
                "deadline or attempt budget",
                deadline=deadline,
                attempts=attempts,
            )
        report.degraded = True
        return report

    def _reject_degenerate_union_count(self) -> None:
        """Refuse unfiltered COUNT(*) over a union with *estimated* parameters.

        Every sample's HT contribution is the constant ``|U|`` parameter, so
        the CLT interval collapses to zero width around whatever the union
        size *estimate* is — a nominal 95% interval with no coverage at all.
        Drawing more samples cannot help: the answer is exactly as good as
        the parameter.  With exact parameters (``FullJoinUnionEstimator``)
        the zero-width answer is the exact ``|U|`` and is allowed; otherwise
        point users at the union-size estimators, or at a filtered/grouped
        COUNT whose contributions actually vary.
        """
        spec = self.spec
        if spec.kind != "count" or spec.where is not None or spec.group_attributes:
            return
        parameters = getattr(self._union_sampler, "parameters", None)
        if parameters is not None and parameters.method == "full-join":
            return
        raise ValueError(
            "COUNT(*) over a union of joins just echoes the union-size "
            "parameter (every sample contributes the same |U|), so its "
            "confidence interval would be a zero-width lie around an "
            "estimate. Use the union-size estimators (`repro estimate`) for "
            "|U|, supply exact parameters, or add a where filter / group-by."
        )

    def _converged(self, report: AggregateReport, rel_error: float, min_accepted: int) -> bool:
        with self._lock:
            attempts = self.accumulator.attempts
            accepted = self.accumulator.accepted
        if attempts == 0:
            return False
        if accepted < min_accepted:
            # The zero-width/zero-estimate case (empty join) is genuinely done.
            return all(
                e.estimate == 0.0 and e.half_width == 0.0
                for e in report.estimates.values()
            ) and attempts >= min_accepted
        return all(
            e.half_width <= rel_error * abs(e.estimate)
            or (e.estimate == 0.0 and e.half_width == 0.0)
            for e in report.estimates.values()
        )

    def _current_versions(self) -> Tuple[int, ...]:
        versions: List[int] = []
        for query in self.queries:
            versions.extend(r.version for r in query.relations.values())
        return tuple(versions)

    def _sync_epoch(self) -> None:
        """Restart accumulators when the base relations mutated (new epoch).

        With ``parallelism > 1`` the whole shard fleet re-syncs: a stale
        epoch observed on *any* shard discards the accumulated state, so
        shards never contribute attempts from different database snapshots.
        """
        stale = False
        if self._join_sampler is not None:
            stale = self._join_sampler.refresh()
        elif self._union_shards:
            stale = any([shard.refresh() for shard in self._union_shards])
        elif self._union_sampler is not None:
            refresh = getattr(self._union_sampler, "refresh", None)
            if refresh is not None:
                stale = bool(refresh())
            elif self._current_versions() != self._db_versions:
                raise RuntimeError(
                    "base relations mutated but the provided union sampler has "
                    "no refresh(); rebuild the aggregator for the new snapshot"
                )
        else:  # wander join reads the delta-maintained indexes directly
            stale = self._current_versions() != self._db_versions
        if stale:
            self.accumulator.reset()
            self._union_consumed = 0
            self._union_shard_consumed = [0] * len(self._union_shard_consumed)
            # Cached contributions belonged to the old snapshot too: drop the
            # entry reference and start a fresh consume from block 0 of
            # whatever entry the new epoch resolves to.
            self._cache_entry = None
            self._cache_cursor = 0
            self.cached_samples = 0
            self.fresh_samples = 0
            self.epochs_restarted += 1
        self._db_versions = self._current_versions()

    def _step_join(self, size: int) -> None:
        """Serve cached blocks first, then draw fresh and ingest column-wise.

        With no cache (or a cold one) the fresh-draw path below is the byte
        exact PR 7 pipeline: the cache neither consumes RNG state nor changes
        batch sizes, so cache-disabled and cold-cache runs stay bit-identical
        to the uncached aggregator.
        """
        sampler = self._join_sampler
        assert sampler is not None
        total_weight = sampler.weight_function.total_weight
        if total_weight <= 0:
            # Empty join: every attempt would fail; account them directly.
            self.accumulator.observe([], attempts=size, weight=1.0)
            return
        served = self._consume_cache(total_weight, size)
        if served >= size:
            return
        attempts_before = sampler.stats.attempts
        blocks = [sampler.sample_block(size - served)]
        blocks.extend(sampler.pop_buffered_blocks())
        attempts = sampler.stats.attempts - attempts_before
        block = SampleBlock.concat(blocks)
        self.accumulator.ingest_block(
            block.value_columns(self.queries[0]), attempts=attempts, weight=total_weight
        )
        self.fresh_samples += len(block)
        self._publish_cache(block, attempts, total_weight)

    def _consume_cache(self, total_weight: float, size: int) -> int:
        """Ingest unseen cached blocks of this shape until ``size`` is met.

        Whole blocks only — a block's ``(attempts, weight)`` bookkeeping
        makes its contribution exactly the merge a parallel shard would
        deliver.  Each block is re-served through
        :meth:`~repro.sampling.blocks.SampleBlock.reweighted` at the
        *consumer's* current total weight (equal up to rounding by the epoch
        pin; the view removes even that drift).  Consumption stops at whole
        block granularity once the step's demand is covered — the cursor
        parks mid-stream and later steps resume from it, so a cheap query
        never pays to ingest a stream far deeper than its error target
        needs.  The accepted run is concatenated into one block before
        ingestion: one column gather and one accumulator pass instead of
        one per published chunk.  Returns samples served.
        """
        if self.cache is None:
            return 0
        query = self.queries[0]
        entry = self._cache_entry
        if entry is None or not entry.alive or entry.epoch != epoch_vector(query):
            entry = self.cache.entry(query, self._cache_weights)
            self._cache_entry = entry
            self._cache_cursor = 0
        blocks, _ = self.cache.read(entry, self._cache_cursor)
        served = 0
        views = []
        # Geometric gulp: drain at least as much as this aggregator has
        # already ingested, not just the step's ask.  Deep streams are
        # consumed in O(log n) consume/estimate rounds instead of being
        # nickel-and-dimed through the step schedule's batch cap.
        demand = max(size, self.cached_samples + self.fresh_samples)
        for block in blocks:
            if served >= demand:
                break
            self._cache_cursor += 1
            if block.weights is not None or not math.isclose(
                block.weight, total_weight, rel_tol=1e-9
            ):
                # Defensive: a block from another distribution must never be
                # pooled; skipping it is safe (its draws are simply unused).
                continue
            views.append(block.reweighted(total_weight))
            served += len(block)
        if views:
            merged = SampleBlock.concat(views)
            self.accumulator.ingest_block(
                merged.value_columns(query),
                attempts=merged.attempts,
                weight=merged.weight,
            )
        self.cached_samples += served
        return served

    def _publish_cache(self, block: SampleBlock, attempts: int, total_weight: float) -> None:
        """Share a fresh draw batch through the cache (if one is attached).

        The published block carries the step's true attempt count and shared
        weight; the cursor jumps past it so this aggregator never re-ingests
        its own contribution (invariant 3 in :mod:`repro.cache.store`).
        """
        if self.cache is None or self._cache_entry is None:
            return
        if block.weights is not None:
            return
        shared = SampleBlock(
            relation_order=block.relation_order,
            positions=block.positions,
            attempts=int(attempts),
            weight=float(total_weight),
        )
        self.cache.publish(self._cache_entry, shared)
        if self._cache_entry.alive:
            self._cache_cursor = len(self._cache_entry.blocks)

    def _step_wander(self, size: int) -> None:
        if self._walker_shards:
            quotas = _split_evenly(size, len(self._walker_shards))
            with ThreadPoolExecutor(max_workers=len(self._walker_shards)) as executor:
                blocks = list(
                    executor.map(
                        lambda pair: pair[0].walk_block(pair[1]),
                        zip(self._walker_shards, quotas),
                    )
                )
            # Ingest in shard order; the exactly-rounded accumulator makes
            # the estimates chunk-order-invariant anyway.
            for block in blocks:
                self._ingest_walk_block(block)
            return
        walker = self._walker
        assert walker is not None
        self._ingest_walk_block(walker.walk_block(size))

    def _ingest_walk_block(self, block: SampleBlock) -> None:
        self.accumulator.ingest_block(
            block.value_columns(self.queries[0]),
            attempts=block.attempts,
            weights=block.weights,
        )

    def _step_union(self, size: int) -> None:
        # Revisions/backtracking may rewrite history, so rebuild from the
        # sampler's full live sample list every step (cheap at AQP scales and
        # always consistent with the sampler's current ownership record).
        if self._union_shards:
            quotas = _split_evenly(size, len(self._union_shards))
            for i, quota in enumerate(quotas):
                self._union_shard_consumed[i] += quota
            with ThreadPoolExecutor(max_workers=len(self._union_shards)) as executor:
                results = list(
                    executor.map(
                        lambda pair: pair[0].sample(pair[1]),
                        zip(self._union_shards, self._union_shard_consumed),
                    )
                )
            self.accumulator.reset()
            for result in results:
                self.accumulator.observe(
                    [s.value for s in result.samples],
                    attempts=len(result.samples),
                    weight=float(result.parameters.union_size),
                )
            return
        sampler = self._union_sampler
        assert sampler is not None
        self._union_consumed += size
        result = sampler.sample(self._union_consumed)
        self.accumulator.reset()
        union_size = float(result.parameters.union_size)
        self.accumulator.observe(
            [s.value for s in result.samples],
            attempts=len(result.samples),
            weight=union_size,
        )


def _split_evenly(total: int, parts: int) -> List[int]:
    """Even split of ``total`` into ``parts`` quotas (first shards get +1)."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def planning_budget(rel_error: float, confidence: float = 0.95) -> int:
    """Expected accepted-sample demand of an ``until(rel_error)`` run.

    The CLT half-width shrinks as ``z·CV/√n``, so hitting a relative target
    needs roughly ``(z/rel_error)²·CV²`` samples; with a unit
    coefficient-of-variation prior that is ``(z/rel_error)²`` (~1.5k at the
    default 5% target, ~38k at 1%).  Feeding this to the planner matters:
    setup-heavy backends (exact weights) amortize over tight-error runs,
    while zero-setup backends (wander join) only win small budgets — pricing
    every run at a fixed 1024 samples mis-ranks them at the extremes.
    """
    if rel_error <= 0:
        raise ValueError("rel_error must be positive")
    z = z_value(confidence)
    return max(1024, int((z / rel_error) ** 2))


def aggregate(
    queries: Union[JoinQuery, Sequence[JoinQuery]],
    spec: AggregateSpec,
    rel_error: float = 0.05,
    confidence: float = 0.95,
    method: str = "auto",
    seed: RandomState = None,
    **kwargs: object,
) -> AggregateReport:
    """One-shot convenience wrapper: plan, sample until the target, report.

    The cost-based planner is primed with the sample demand the error target
    implies (:func:`planning_budget`) unless the caller fixes
    ``target_samples`` explicitly.
    """
    kwargs.setdefault("target_samples", planning_budget(rel_error, confidence))
    aggregator = OnlineAggregator(
        queries, spec, method=method, seed=seed, confidence=confidence, **kwargs
    )
    return aggregator.until(rel_error)


__all__ = ["OnlineAggregator", "aggregate", "planning_budget"]
