"""Streaming Horvitz–Thompson aggregate estimators over join/union samples.

The samplers in :mod:`repro.sampling` and :mod:`repro.core` produce *samples*;
this module turns them into approximate **aggregate answers with error bars**
(the online-aggregation layer the paper's samplers exist to serve).

The unifying view is attempt-level Horvitz–Thompson estimation.  Every draw
attempt ``i`` of an accept/reject sampler either fails (contribution 0) or
yields a join result ``t_i`` together with a known inverse inclusion weight
``w_i``:

* accept/reject backends (:class:`~repro.sampling.join_sampler.JoinSampler`
  with EW or EO weights): each attempt is accepted with probability ``1/W``
  per skeleton result, so ``w_i = W`` (the weight function's total weight);
* wander join: a successful walk carries probability ``p(t_i)``, so
  ``w_i = 1/p(t_i)``;
* union samplers: each returned sample is uniform over the set union ``U``,
  so ``w_i = |U|``.

For any per-result function ``g`` the mean of ``X_i = w_i · g(t_i)`` over all
attempts (failed attempts contribute 0) is an unbiased estimate of
``Σ_{t ∈ J} g(t)``, which covers COUNT (``g = 1``), SUM (``g`` = an output
attribute), filtered variants (``g`` masked by a predicate), and GROUP-BY
(``g`` masked by the group key).  AVG is the self-normalized (Hájek) ratio of
the SUM and COUNT estimators.  Confidence intervals come from the CLT over the
attempt-level contributions, or from a binomial-thinned bootstrap.

Aggregates over a **single join** follow SQL bag semantics (every join result
counts, duplicates included); aggregates over a **union of joins** follow the
paper's set semantics (each distinct output tuple of ``J_1 ∪ ... ∪ J_n``
counts once), because that is what the union samplers draw uniformly from.

Accumulators are mergeable: estimates are computed with exactly-rounded
summation (:func:`math.fsum`), so merging partial accumulators in *any*
chunking order yields bit-identical estimates — a property the test suite
verifies with Hypothesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sampling.wander_join import z_value
from repro.utils.rng import RandomState, ensure_rng

AGGREGATE_KINDS = ("count", "sum", "avg")

#: Group key used when no GROUP BY is requested.
GLOBAL_GROUP: Tuple = ()


@dataclass(frozen=True)
class AggregateSpec:
    """What to compute over the sampled join/union results.

    Attributes
    ----------
    kind:
        ``"count"``, ``"sum"`` or ``"avg"``.
    attribute:
        Output attribute the aggregate runs over (required for SUM/AVG,
        ignored for COUNT).
    where:
        Optional predicate over ``{output attribute: value}`` dicts; results
        failing it contribute nothing (``COUNT(*) FILTER (WHERE ...)``).
    group_by:
        Optional output attribute (or tuple of attributes) to group by.
    """

    kind: str
    attribute: Optional[str] = None
    where: Optional[Callable[[Mapping[str, object]], bool]] = None
    group_by: Optional[Tuple[str, ...] | str] = None

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise ValueError(f"kind must be one of {AGGREGATE_KINDS}, got {self.kind!r}")
        if self.kind in ("sum", "avg") and not self.attribute:
            raise ValueError(f"{self.kind} aggregate needs an attribute")

    @property
    def group_attributes(self) -> Tuple[str, ...]:
        if self.group_by is None:
            return ()
        if isinstance(self.group_by, str):
            return (self.group_by,)
        return tuple(self.group_by)

    def describe(self) -> str:
        parts = [self.kind.upper(), "(", self.attribute or "*", ")"]
        if self.group_by:
            parts += [" BY ", ",".join(self.group_attributes)]
        return "".join(parts)


@dataclass(frozen=True)
class AggregateEstimate:
    """One aggregate estimate with its confidence interval."""

    group: Tuple
    estimate: float
    ci_low: float
    ci_high: float
    confidence: float
    accepted: int
    attempts: int
    ci_method: str = "clt"

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_half_width(self) -> float:
        if self.estimate == 0:
            return float("inf")
        return self.half_width / abs(self.estimate)

    def covers(self, truth: float) -> bool:
        return self.ci_low <= truth <= self.ci_high

    def to_dict(self) -> Dict[str, object]:
        return {
            "group": list(self.group) if self.group else None,
            "estimate": self.estimate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "accepted": self.accepted,
            "attempts": self.attempts,
            "ci_method": self.ci_method,
        }


@dataclass
class AggregateReport:
    """Per-group estimates of one accumulator snapshot.

    ``degraded=True`` marks a *partial* answer: the job hit its deadline (or
    shards exhausted their retries under ``allow_partial``) and the report
    merges only the shards/steps that completed — still unbiased, just wider.
    ``completed_shards``/``planned_shards`` quantify the shortfall for
    parallel jobs; consumers should report the *achieved* relative error
    (:meth:`max_relative_half_width`), not the one that was requested.
    """

    spec: AggregateSpec
    estimates: Dict[Tuple, AggregateEstimate]
    attempts: int
    accepted: int
    confidence: float
    ci_method: str
    degraded: bool = False
    completed_shards: Optional[int] = None
    planned_shards: Optional[int] = None

    @property
    def overall(self) -> AggregateEstimate:
        """The global (non-grouped) estimate; for GROUP BY, the worst group
        would be queried individually via :attr:`estimates`."""
        if GLOBAL_GROUP in self.estimates:
            return self.estimates[GLOBAL_GROUP]
        # Grouped report: surface the widest interval (drives stopping rules).
        return max(self.estimates.values(), key=lambda e: e.half_width)

    def groups(self) -> List[Tuple]:
        return sorted(self.estimates, key=lambda g: tuple(map(str, g)))

    def max_relative_half_width(self) -> float:
        if not self.estimates:
            return float("inf")
        return max(e.relative_half_width for e in self.estimates.values())

    def to_dict(self) -> Dict[str, object]:
        achieved = self.max_relative_half_width()
        payload: Dict[str, object] = {
            "aggregate": self.spec.describe(),
            "confidence": self.confidence,
            "ci_method": self.ci_method,
            "attempts": self.attempts,
            "accepted": self.accepted,
            "degraded": self.degraded,
            "achieved_rel_error": None if math.isinf(achieved) else achieved,
            "groups": [self.estimates[g].to_dict() for g in self.groups()],
        }
        if self.completed_shards is not None:
            payload["completed_shards"] = self.completed_shards
            payload["planned_shards"] = self.planned_shards
        return payload


class _GroupData:
    """Accepted contributions of one group: inverse weights and g-values."""

    __slots__ = ("weights", "values")

    def __init__(self) -> None:
        self.weights: List[float] = []
        self.values: List[float] = []


class AggregateAccumulator:
    """Streaming, mergeable accumulator of attempt-level HT contributions.

    Parameters
    ----------
    spec:
        The aggregate to compute.
    schema:
        Output schema (attribute names, in tuple order) of the sampled values.
    """

    def __init__(self, spec: AggregateSpec, schema: Sequence[str]) -> None:
        self.spec = spec
        self.schema = tuple(schema)
        positions = {name: i for i, name in enumerate(self.schema)}
        if spec.attribute is not None and spec.attribute not in positions:
            raise ValueError(
                f"attribute {spec.attribute!r} not in output schema {self.schema}"
            )
        for attr in spec.group_attributes:
            if attr not in positions:
                raise ValueError(f"group attribute {attr!r} not in schema {self.schema}")
        self._value_pos = positions.get(spec.attribute) if spec.attribute else None
        self._group_pos = tuple(positions[a] for a in spec.group_attributes)
        self.attempts = 0
        self.accepted = 0
        self._groups: Dict[Tuple, _GroupData] = {}

    # ------------------------------------------------------------------ ingest
    def observe(
        self,
        values: Sequence[Tuple],
        attempts: int,
        weight: Optional[float] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Consume one chunk of accepted sample values.

        ``attempts`` is the number of draw attempts the chunk took (failed
        attempts contribute zero and only enter the denominator).  Inverse
        inclusion weights are either one shared ``weight`` (accept/reject and
        union backends) or per-sample ``weights`` (wander join: ``1/p(t)``).
        """
        if attempts < len(values):
            raise ValueError(
                f"attempts ({attempts}) cannot be below accepted samples ({len(values)})"
            )
        if (weight is None) == (weights is None):
            raise ValueError("pass exactly one of weight= or weights=")
        if weights is not None and len(weights) != len(values):
            raise ValueError("weights must align with values")
        self.attempts += int(attempts)
        where = self.spec.where
        for i, value in enumerate(values):
            self.accepted += 1
            if where is not None:
                row = dict(zip(self.schema, value))
                if not where(row):
                    continue
            w = float(weight) if weight is not None else float(weights[i])  # type: ignore[index]
            g = 1.0 if self._value_pos is None else float(value[self._value_pos])
            key = tuple(value[p] for p in self._group_pos)
            data = self._groups.get(key)
            if data is None:
                data = self._groups[key] = _GroupData()
            data.weights.append(w)
            data.values.append(g)

    def ingest_block(
        self,
        columns: Sequence[np.ndarray],
        attempts: int,
        weight: Optional[float] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Consume one chunk of accepted samples in columnar form.

        ``columns`` are per-output-attribute value arrays in schema order
        (:meth:`repro.sampling.blocks.SampleBlock.value_columns`); semantics
        otherwise match :meth:`observe`.  ``where`` filters, the aggregate
        value, and group keys are all evaluated with NumPy array ops — no
        per-row Python objects — and the per-sample contributions stored are
        **bit-identical** to what :meth:`observe` would store for the boxed
        equivalent of the block, so the exactly-rounded merge law is
        preserved: mixing ``observe`` and ``ingest_block`` chunks in any
        order yields the same estimates.

        A ``where`` callable may expose a vectorized twin as a ``columnar``
        attribute (``columnar(name -> array) -> bool mask``); plain row
        callables fall back to one Python pass over the zipped columns.
        """
        columns = [np.asarray(c) for c in columns]
        if len(columns) != len(self.schema):
            raise ValueError(
                f"expected {len(self.schema)} columns (schema {self.schema}), "
                f"got {len(columns)}"
            )
        k = len(columns[0]) if columns else 0
        if any(len(c) != k for c in columns):
            raise ValueError("block columns must share one length")
        if attempts < k:
            raise ValueError(
                f"attempts ({attempts}) cannot be below accepted samples ({k})"
            )
        if (weight is None) == (weights is None):
            raise ValueError("pass exactly one of weight= or weights=")
        w_arr = None
        if weights is not None:
            w_arr = np.asarray(weights, dtype=float)
            if len(w_arr) != k:
                raise ValueError("weights must align with the block columns")
        self.attempts += int(attempts)
        self.accepted += k
        if k == 0:
            return

        mask: Optional[np.ndarray] = None
        where = self.spec.where
        if where is not None:
            columnar = getattr(where, "columnar", None)
            if callable(columnar):
                named = dict(zip(self.schema, columns))
                mask = np.asarray(columnar(named), dtype=bool)
                if mask.shape != (k,):
                    raise ValueError("columnar where must return one bool per sample")
            else:
                rows = zip(*(c.tolist() for c in columns))
                mask = np.fromiter(
                    (bool(where(dict(zip(self.schema, row)))) for row in rows),
                    dtype=bool,
                    count=k,
                )
            if not bool(mask.any()):
                return

        if self._value_pos is None:
            g_arr = np.ones(k, dtype=float)
        else:
            g_arr = np.asarray(columns[self._value_pos], dtype=float)
        if mask is not None:
            g_arr = g_arr[mask]
            if w_arr is not None:
                w_arr = w_arr[mask]

        if not self._group_pos:
            data = self._groups.get(GLOBAL_GROUP)
            if data is None:
                data = self._groups[GLOBAL_GROUP] = _GroupData()
            data.values.extend(g_arr.tolist())
            if w_arr is None:
                data.weights.extend([float(weight)] * len(g_arr))
            else:
                data.weights.extend(w_arr.tolist())
            return

        group_cols = [
            columns[p] if mask is None else columns[p][mask] for p in self._group_pos
        ]
        if len(group_cols) == 1 and group_cols[0].dtype != object:
            # Single typed group column: unique + one stable argsort splits
            # the block into per-group runs without touching Python rows.
            uniq, inverse = np.unique(group_cols[0], return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            counts = np.bincount(inverse, minlength=len(uniq))
            bounds = np.concatenate([[0], np.cumsum(counts)])
            g_sorted = g_arr[order]
            w_sorted = w_arr[order] if w_arr is not None else None
            for gi, value in enumerate(uniq.tolist()):
                lo, hi = int(bounds[gi]), int(bounds[gi + 1])
                key = (value,)
                data = self._groups.get(key)
                if data is None:
                    data = self._groups[key] = _GroupData()
                data.values.extend(g_sorted[lo:hi].tolist())
                if w_sorted is None:
                    data.weights.extend([float(weight)] * (hi - lo))
                else:
                    data.weights.extend(w_sorted[lo:hi].tolist())
            return

        # Composite or object-typed keys: one Python pass to bucket rows.
        key_rows = list(zip(*(c.tolist() for c in group_cols)))
        g_list = g_arr.tolist()
        w_list = w_arr.tolist() if w_arr is not None else None
        shared = float(weight) if w_list is None else 0.0
        for i, key in enumerate(key_rows):
            data = self._groups.get(key)
            if data is None:
                data = self._groups[key] = _GroupData()
            data.values.append(g_list[i])
            data.weights.append(shared if w_list is None else w_list[i])

    def merge(self, other: "AggregateAccumulator") -> "AggregateAccumulator":
        """Fold another accumulator (same spec/schema) into this one."""
        if other.spec != self.spec or other.schema != self.schema:
            raise ValueError("can only merge accumulators with identical spec and schema")
        self.attempts += other.attempts
        self.accepted += other.accepted
        for key, data in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                mine = self._groups[key] = _GroupData()
            mine.weights.extend(data.weights)
            mine.values.extend(data.values)
        return self

    def reset(self) -> None:
        """Drop all state (start of a new mutation epoch)."""
        self.attempts = 0
        self.accepted = 0
        self._groups = {}

    # --------------------------------------------------------------- estimates
    def estimate(
        self,
        confidence: float = 0.95,
        ci_method: str = "clt",
        bootstrap_replicates: int = 200,
        seed: RandomState = None,
    ) -> AggregateReport:
        """Snapshot the current estimates with per-group confidence intervals."""
        if ci_method not in ("clt", "bootstrap"):
            raise ValueError("ci_method must be 'clt' or 'bootstrap'")
        estimates: Dict[Tuple, AggregateEstimate] = {}
        groups = self._groups or {GLOBAL_GROUP: _GroupData()}
        rng = ensure_rng(seed) if ci_method == "bootstrap" else None
        for key, data in groups.items():
            point, half = self._point_and_clt(data, confidence)
            if ci_method == "bootstrap" and data.weights:
                low, high = self._bootstrap_interval(
                    data, confidence, bootstrap_replicates, rng
                )
            else:
                low, high = point - half, point + half
            estimates[key] = AggregateEstimate(
                group=key,
                estimate=point,
                ci_low=low,
                ci_high=high,
                confidence=confidence,
                accepted=len(data.weights),
                attempts=self.attempts,
                ci_method=ci_method,
            )
        return AggregateReport(
            spec=self.spec,
            estimates=estimates,
            attempts=self.attempts,
            accepted=self.accepted,
            confidence=confidence,
            ci_method=ci_method,
        )

    # ---------------------------------------------------------------- internals
    def _point_and_clt(self, data: _GroupData, confidence: float) -> Tuple[float, float]:
        """Point estimate and CLT half-width for one group.

        All sums run through :func:`math.fsum` (exactly-rounded), so the result
        does not depend on the order contributions were ingested or merged.
        """
        m = self.attempts
        kind = self.spec.kind
        if m == 0:
            return 0.0, float("inf")
        z = z_value(confidence)
        if kind == "avg":
            sum_w = math.fsum(data.weights)
            if sum_w <= 0:
                return float("nan"), float("inf")
            sum_wg = math.fsum(w * g for w, g in zip(data.weights, data.values))
            ratio = sum_wg / sum_w
            if m < 2:
                return ratio, float("inf")
            # Linearized (delta-method) variance of the Hájek ratio: the
            # per-attempt residual w·(g − R) has exact mean zero, rejected
            # attempts contribute zero.
            ss = math.fsum(
                (w * (g - ratio)) ** 2 for w, g in zip(data.weights, data.values)
            )
            variance = ss / (m - 1)
            mean_w = sum_w / m
            half = z * math.sqrt(variance / m) / mean_w
            return ratio, half
        if kind == "count":
            contributions = data.weights
            s1 = math.fsum(contributions)
            s2 = math.fsum(w * w for w in contributions)
        else:  # sum
            s1 = math.fsum(w * g for w, g in zip(data.weights, data.values))
            s2 = math.fsum((w * g) ** 2 for w, g in zip(data.weights, data.values))
        point = s1 / m
        if m < 2:
            return point, float("inf")
        variance = max(s2 - s1 * s1 / m, 0.0) / (m - 1)
        half = z * math.sqrt(variance / m)
        return point, half

    def _bootstrap_interval(
        self,
        data: _GroupData,
        confidence: float,
        replicates: int,
        rng: np.random.Generator,
    ) -> Tuple[float, float]:
        """Percentile bootstrap over attempt-level contributions.

        Resampling ``m`` attempts with replacement is equivalent to drawing the
        number of accepted hits from ``Binomial(m, n/m)`` and then resampling
        that many accepted contributions — which avoids materializing the
        failed attempts.
        """
        m = self.attempts
        n = len(data.weights)
        w = np.asarray(data.weights, dtype=float)
        g = np.asarray(data.values, dtype=float)
        kind = self.spec.kind
        stats: List[float] = []
        hits = rng.binomial(m, n / m, size=replicates) if m > 0 else np.zeros(replicates, int)
        for k in hits:
            if k == 0:
                stats.append(0.0 if kind != "avg" else float("nan"))
                continue
            idx = rng.integers(0, n, size=int(k))
            if kind == "count":
                stats.append(float(w[idx].sum()) / m)
            elif kind == "sum":
                stats.append(float((w[idx] * g[idx]).sum()) / m)
            else:
                denom = float(w[idx].sum())
                stats.append(float((w[idx] * g[idx]).sum()) / denom if denom > 0 else float("nan"))
        arr = np.asarray([s for s in stats if not math.isnan(s)], dtype=float)
        if arr.size == 0:
            return float("nan"), float("nan")
        alpha = (1.0 - confidence) / 2.0
        return (
            float(np.quantile(arr, alpha)),
            float(np.quantile(arr, 1.0 - alpha)),
        )


def exact_aggregate(
    values: Sequence[Tuple],
    spec: AggregateSpec,
    schema: Sequence[str],
) -> Dict[Tuple, float]:
    """Ground-truth aggregate over fully materialized result values.

    ``values`` is the bag of join results (``execute_join``) for single-join
    semantics, or the distinct union set for union semantics.  Returns a
    group -> exact value map (key ``()`` when no GROUP BY), computed with
    :func:`math.fsum` so tests compare against an exactly-rounded reference.
    """
    schema = tuple(schema)
    positions = {name: i for i, name in enumerate(schema)}
    value_pos = positions[spec.attribute] if spec.attribute else None
    group_pos = tuple(positions[a] for a in spec.group_attributes)
    sums: Dict[Tuple, List[float]] = {}
    counts: Dict[Tuple, int] = {}
    for value in values:
        if spec.where is not None and not spec.where(dict(zip(schema, value))):
            continue
        key = tuple(value[p] for p in group_pos)
        g = 1.0 if value_pos is None else float(value[value_pos])
        sums.setdefault(key, []).append(g)
        counts[key] = counts.get(key, 0) + 1
    out: Dict[Tuple, float] = {}
    for key, gs in sums.items():
        if spec.kind == "count":
            out[key] = float(counts[key])
        elif spec.kind == "sum":
            out[key] = math.fsum(gs)
        else:
            out[key] = math.fsum(gs) / counts[key]
    if not out:
        out[GLOBAL_GROUP] = 0.0 if spec.kind != "avg" else float("nan")
    return out


__all__ = [
    "AGGREGATE_KINDS",
    "GLOBAL_GROUP",
    "AggregateSpec",
    "AggregateEstimate",
    "AggregateReport",
    "AggregateAccumulator",
    "exact_aggregate",
]
