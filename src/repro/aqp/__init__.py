"""Approximate query processing: aggregates with confidence intervals.

This package turns the uniform join/union samples produced by
:mod:`repro.sampling` and :mod:`repro.core` into approximate COUNT / SUM /
AVG / GROUP-BY answers with CLT and bootstrap confidence intervals, an
``until(rel_error, confidence)`` online-aggregation stopping rule, and a
cost-based planner that picks the sampler backend automatically
(``method="auto"``).  See ``docs/aqp.md`` for the estimator math.
"""

from repro.aqp.estimators import (
    AGGREGATE_KINDS,
    GLOBAL_GROUP,
    AggregateAccumulator,
    AggregateEstimate,
    AggregateReport,
    AggregateSpec,
    exact_aggregate,
)
from repro.aqp.online import OnlineAggregator, aggregate, planning_budget
from repro.aqp.planner import (
    BACKENDS,
    SamplerPlan,
    SamplerPlanner,
    choose_weights,
    supported_backends,
)

__all__ = [
    "AGGREGATE_KINDS",
    "GLOBAL_GROUP",
    "AggregateSpec",
    "AggregateEstimate",
    "AggregateReport",
    "AggregateAccumulator",
    "exact_aggregate",
    "OnlineAggregator",
    "aggregate",
    "planning_budget",
    "BACKENDS",
    "SamplerPlan",
    "SamplerPlanner",
    "supported_backends",
    "choose_weights",
]
