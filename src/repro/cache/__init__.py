"""Cross-query sample cache: re-consume materialized draw streams.

See :mod:`repro.cache.store` for the cache tier itself and ``docs/cache.md``
for the key structure, the reweighting math, and the epoch-invalidation
contract.
"""

from repro.cache.store import (
    CachedStream,
    SampleCache,
    epoch_vector,
    shape_key,
)

__all__ = ["CachedStream", "SampleCache", "epoch_vector", "shape_key"]
