"""The sample-cache tier: materialized ``SampleBlock`` streams, shared across requests.

Under real traffic most requests repeat with small variations — same join,
different aggregate, different filter, different group-by.  Every such
request today re-draws its sample stream from scratch even though the server
already paid for thousands of accepted samples over the *same* join shape.
This module caches those draws so later requests re-consume them.

Why this is statistically sound
-------------------------------

A cached block records exactly the Horvitz–Thompson bookkeeping a fresh
block carries: the number of draw *attempts* it consumed and the shared
inverse-inclusion weight ``W`` (the weight function's total weight).  The
attempt-level HT estimator is a plain mean over attempt contributions
``w·g(t)``, so pooling blocks from different seeded streams over the same
snapshot is the same merge the parallel shard coordinator already performs —
unbiased, with honest variance, *provided* three invariants hold:

1. **Whole blocks only.**  A block's attempt count belongs to the block as a
   unit; consuming half its samples while keeping the full attempt count (or
   vice versa) biases the estimate.  Consumers ingest a cached block wholly
   or not at all.
2. **One snapshot.**  Contributions are exchangeable only within one
   database epoch.  Every entry is pinned to the epoch vector (per-relation
   ``Relation.version``) it was drawn under; a lookup under any other vector
   is a miss and drops the stale entry.  ``drop_relation`` invalidates
   eagerly on mutation — and only entries touching the mutated relation,
   never the whole cache.
3. **No double-consumption within one estimate.**  A consumer tracks a
   cursor into the entry's block list and never re-ingests a block it has
   already merged (re-ingesting would correlate contributions and shrink the
   reported CI below its true width).  Distinct *requests* may share blocks
   freely — their answers are correlated with each other, but each answer's
   own CI is honest.

Key structure
-------------

Entries are keyed by :func:`shape_key` — the join's structural identity
(query name, relation names, equi-join conditions, output schema) plus the
weight-function string, i.e. the sampling *distribution* — never by the
aggregate, filter, or group-by, which are applied downstream by the
accumulator over the shared draw stream.  The epoch vector is held alongside
and checked on every lookup.

Eviction is LRU over entries, accounted in bytes (``SampleBlock.nbytes``),
bounded by ``max_bytes``.  Cached arrays are frozen read-only so a consumer
bug cannot corrupt other requests' answers.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.joins.query import JoinQuery
from repro.sampling.blocks import SampleBlock

#: default cache budget: enough for ~1M cached (sample × 4-relation) rows.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def shape_key(query: JoinQuery, weights: str) -> Tuple:
    """Structural identity of a sampling distribution over a join.

    Two requests share a cache entry exactly when they sample the same join
    tree with the same weight function: same relations, same equi-join
    conditions, same output schema.  The query *name* participates because a
    workload may register distinct filtered instances of the same base
    relations under different names (UQ1's regional partitions) — those are
    different populations and must never share draws.
    """
    conditions = tuple(
        sorted(
            (c.left_relation, c.left_attribute, c.right_relation, c.right_attribute)
            for c in query.conditions
        )
    )
    outputs = tuple(
        (out.name, out.relation, out.attribute) for out in query.output_attributes
    )
    return (query.name, tuple(sorted(query.relations)), conditions, outputs, weights)


def epoch_vector(query: JoinQuery) -> Tuple[Tuple[str, int], ...]:
    """Per-relation ``(name, version)`` pairs — the entry's snapshot pin."""
    return tuple(
        (name, relation.version) for name, relation in sorted(query.relations.items())
    )


class CachedStream:
    """One cache entry: an append-only block stream pinned to an epoch.

    Consumers hold a reference plus a cursor; all mutation goes through the
    owning :class:`SampleCache` (which holds the lock).  ``alive`` flips to
    ``False`` on eviction/invalidation — a dead entry serves nothing and
    swallows publishes, and consumers re-resolve through the cache.
    """

    __slots__ = (
        "key", "epoch", "relation_names", "blocks",
        "samples", "attempts", "nbytes", "alive", "last_used",
    )

    def __init__(self, key: Tuple, epoch: Tuple, relation_names: frozenset) -> None:
        self.key = key
        self.epoch = epoch
        self.relation_names = relation_names
        self.blocks: List[SampleBlock] = []
        self.samples = 0
        self.attempts = 0
        self.nbytes = 0
        self.alive = True
        self.last_used = 0


class SampleCache:
    """Bounded, thread-safe store of :class:`CachedStream` entries."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: Dict[Tuple, CachedStream] = {}
        self._bytes = 0
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_drops = 0

    # ------------------------------------------------------------------ lookup
    def entry(self, query: JoinQuery, weights: str) -> CachedStream:
        """The live entry for ``(query shape, weights)`` at the current epoch.

        A stale entry (any relation version moved since it was created) is
        dropped and replaced by a fresh empty one — the incremental half of
        the epoch protocol: only streams whose snapshot actually changed pay.
        """
        key = shape_key(query, weights)
        epoch = epoch_vector(query)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if existing.epoch == epoch:
                    self.hits += 1
                    self._touch(existing)
                    return existing
                self.stale_drops += 1
                self._drop(existing)
            self.misses += 1
            entry = CachedStream(
                key, epoch, frozenset(name for name, _ in epoch)
            )
            self._entries[key] = entry
            self._touch(entry)
            return entry

    def peek(self, query: JoinQuery, weights: str) -> Optional[CachedStream]:
        """The fresh-epoch entry if one exists — no creation, no counters.

        The admission controller's pricing probe: it must not perturb
        hit/miss statistics or LRU order.
        """
        with self._lock:
            existing = self._entries.get(shape_key(query, weights))
            if existing is not None and existing.epoch == epoch_vector(query):
                return existing
            return None

    # ------------------------------------------------------------ read/publish
    def read(self, entry: CachedStream, cursor: int) -> Tuple[List[SampleBlock], int]:
        """Blocks appended since ``cursor`` plus the advanced cursor.

        Returns whole blocks only (invariant 1); a dead entry yields nothing
        and leaves the cursor for the caller's re-resolve.
        """
        with self._lock:
            if not entry.alive or cursor >= len(entry.blocks):
                return [], cursor
            blocks = entry.blocks[cursor:]
            self._touch(entry)
            return blocks, len(entry.blocks)

    def publish(self, entry: CachedStream, block: SampleBlock) -> None:
        """Append a freshly drawn block to the stream; evict LRU if over budget.

        Publishing to a dead entry is a silent no-op: the request that drew
        the block still ingests it locally, the draws are simply not shared.
        """
        if len(block) == 0 and block.attempts == 0:
            return
        with self._lock:
            if not entry.alive:
                return
            entry.blocks.append(block.freeze())
            entry.samples += len(block)
            entry.attempts += int(block.attempts)
            size = block.nbytes
            entry.nbytes += size
            self._bytes += size
            self._touch(entry)
            while self._bytes > self.max_bytes and self._entries:
                victim = min(self._entries.values(), key=lambda e: e.last_used)
                self.evictions += 1
                self._drop(victim)

    # ------------------------------------------------------------ invalidation
    def drop_relation(self, name: str) -> int:
        """Invalidate every entry whose join touches relation ``name``.

        The eager half of the epoch protocol (the mutate handler calls this);
        entries over other relations keep serving untouched.  Returns the
        number of entries dropped.
        """
        with self._lock:
            victims = [
                entry for entry in self._entries.values()
                if name in entry.relation_names
            ]
            for entry in victims:
                self.invalidations += 1
                self._drop(entry)
            return len(victims)

    def clear(self) -> None:
        with self._lock:
            for entry in list(self._entries.values()):
                self._drop(entry)

    # ------------------------------------------------------------------- stats
    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats_dict(self) -> Dict[str, int]:
        """Counters for ``/stats`` and the CLI — plain ints, JSON-ready."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "blocks": sum(len(e.blocks) for e in self._entries.values()),
                "samples": sum(e.samples for e in self._entries.values()),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_drops": self.stale_drops,
            }

    # --------------------------------------------------------------- internals
    def _touch(self, entry: CachedStream) -> None:
        self._tick += 1
        entry.last_used = self._tick

    def _drop(self, entry: CachedStream) -> None:
        entry.alive = False
        self._bytes -= entry.nbytes
        entry.blocks = []
        entry.nbytes = 0
        self._entries.pop(entry.key, None)


__all__ = [
    "CachedStream",
    "SampleCache",
    "DEFAULT_MAX_BYTES",
    "epoch_vector",
    "shape_key",
]
