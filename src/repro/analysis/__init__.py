"""Analysis utilities: uniformity tests and estimation-error metrics."""

from repro.analysis.errors import (
    absolute_error,
    mean_ratio_error,
    overlap_errors,
    ratio_estimation_errors,
    relative_error,
    summarize_errors,
    union_size_error,
)
from repro.analysis.uniformity import (
    ChiSquareResult,
    chi_square_sf,
    chi_square_uniformity,
    frequency_table,
    max_absolute_deviation,
    serial_independence_statistic,
)

__all__ = [
    "absolute_error",
    "relative_error",
    "ratio_estimation_errors",
    "mean_ratio_error",
    "union_size_error",
    "overlap_errors",
    "summarize_errors",
    "ChiSquareResult",
    "chi_square_uniformity",
    "chi_square_sf",
    "frequency_table",
    "max_absolute_deviation",
    "serial_independence_statistic",
]
