"""Error metrics for parameter estimation experiments (Fig. 4 and Fig. 5a)."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.estimation.parameters import UnionParameters


def absolute_error(estimate: float, truth: float) -> float:
    """``|estimate − truth|``."""
    return abs(estimate - truth)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate − truth| / |truth|`` (infinite when the truth is zero)."""
    if truth == 0:
        return float("inf") if estimate != 0 else 0.0
    return abs(estimate - truth) / abs(truth)


def ratio_estimation_errors(
    estimated: UnionParameters, exact: UnionParameters
) -> Dict[str, float]:
    """Per-join absolute error of the ``|J_j|/|U|`` ratio (the Fig. 4 metric)."""
    return estimated.ratio_errors(exact)


def mean_ratio_error(estimated: UnionParameters, exact: UnionParameters) -> float:
    """Mean of the per-join ratio errors."""
    errors = ratio_estimation_errors(estimated, exact)
    if not errors:
        return 0.0
    return sum(errors.values()) / len(errors)


def union_size_error(estimated: UnionParameters, exact: UnionParameters) -> float:
    """Relative error of the union-size estimate."""
    return relative_error(estimated.union_size, exact.union_size)


def overlap_errors(
    estimated: UnionParameters, exact: UnionParameters
) -> Dict[frozenset, float]:
    """Relative error of every overlap estimate present in both parameter sets."""
    errors: Dict[frozenset, float] = {}
    for subset, exact_value in exact.overlaps.items():
        if subset in estimated.overlaps:
            errors[subset] = relative_error(estimated.overlaps[subset], exact_value)
    return errors


def summarize_errors(values: Sequence[float]) -> Dict[str, float]:
    """Minimum / mean / maximum of a sequence of error values."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


__all__ = [
    "absolute_error",
    "relative_error",
    "ratio_estimation_errors",
    "mean_ratio_error",
    "union_size_error",
    "overlap_errors",
    "summarize_errors",
]
