"""Statistical checks for sample uniformity and independence.

The framework's central guarantee (Theorem 1) is that accepted samples are
uniform over the set union and independent across draws.  These helpers turn
that guarantee into testable statements:

* :func:`chi_square_uniformity` — goodness-of-fit of observed sample counts
  against the uniform distribution over a known population;
* :func:`frequency_table` — observed counts per population element;
* :func:`max_absolute_deviation` — worst-case deviation of empirical
  frequencies from ``1/|U|``;
* :func:`serial_independence_statistic` — a lag-1 serial correlation check on
  the sequence of sampled values (independent draws should show none).

The chi-square p-value uses the Wilson–Hilferty normal approximation so the
library keeps its numpy-only dependency footprint; with ``scipy`` installed
the exact distribution is used instead.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from statistics import NormalDist
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

try:  # pragma: no cover - exercised only when scipy is present
    from scipy import stats as _scipy_stats
except Exception:  # pragma: no cover - fallback path
    _scipy_stats = None


@dataclass
class ChiSquareResult:
    """Result of a chi-square goodness-of-fit test."""

    statistic: float
    degrees_of_freedom: int
    p_value: float
    sample_size: int
    population_size: int

    def rejects_uniformity(self, alpha: float = 0.01) -> bool:
        """True when uniformity is rejected at significance level ``alpha``."""
        return self.p_value < alpha


def frequency_table(samples: Iterable[Hashable]) -> Dict[Hashable, int]:
    """Observed count of every sampled value."""
    return dict(Counter(samples))


def chi_square_uniformity(
    samples: Sequence[Hashable],
    population: Sequence[Hashable],
) -> ChiSquareResult:
    """Chi-square test of the samples against uniformity over ``population``.

    Values outside the population are counted against a dedicated "unknown"
    cell with expected count 0 — any such observation makes the statistic
    infinite, which is the correct verdict (the sampler produced an impossible
    tuple).
    """
    population_list = list(dict.fromkeys(population))
    if not population_list:
        raise ValueError("population must be non-empty")
    n = len(samples)
    if n == 0:
        raise ValueError("at least one sample is required")
    expected = n / len(population_list)
    counts = frequency_table(samples)
    unknown = sum(count for value, count in counts.items() if value not in set(population_list))
    if unknown:
        return ChiSquareResult(
            statistic=float("inf"),
            degrees_of_freedom=len(population_list) - 1,
            p_value=0.0,
            sample_size=n,
            population_size=len(population_list),
        )
    statistic = sum(
        (counts.get(value, 0) - expected) ** 2 / expected for value in population_list
    )
    dof = len(population_list) - 1
    return ChiSquareResult(
        statistic=statistic,
        degrees_of_freedom=dof,
        p_value=chi_square_sf(statistic, dof),
        sample_size=n,
        population_size=len(population_list),
    )


def chi_square_sf(statistic: float, degrees_of_freedom: int) -> float:
    """Survival function of the chi-square distribution.

    Uses scipy when available, otherwise the Wilson–Hilferty cube-root normal
    approximation, which is accurate enough for hypothesis testing at the
    sample sizes used in the tests.
    """
    if degrees_of_freedom <= 0:
        raise ValueError("degrees_of_freedom must be positive")
    if math.isinf(statistic):
        return 0.0
    if _scipy_stats is not None:
        return float(_scipy_stats.chi2.sf(statistic, degrees_of_freedom))
    k = float(degrees_of_freedom)
    z = ((statistic / k) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / math.sqrt(2.0 / (9.0 * k))
    return 1.0 - NormalDist().cdf(z)


def max_absolute_deviation(
    samples: Sequence[Hashable], population: Sequence[Hashable]
) -> float:
    """Largest deviation of empirical frequencies from the uniform ``1/|U|``."""
    population_list = list(dict.fromkeys(population))
    counts = frequency_table(samples)
    n = len(samples)
    if n == 0 or not population_list:
        raise ValueError("samples and population must be non-empty")
    uniform = 1.0 / len(population_list)
    return max(abs(counts.get(value, 0) / n - uniform) for value in population_list)


def serial_independence_statistic(samples: Sequence[Hashable]) -> float:
    """Lag-1 repetition rate of the sampled values, normalized by chance.

    For i.i.d. draws from a uniform distribution over ``m`` values, the
    probability that two consecutive draws coincide is ``1/m``; the returned
    statistic is the observed consecutive-repeat rate divided by that baseline
    (≈ 1 for independent samplers, substantially above 1 for sticky ones).
    """
    n = len(samples)
    if n < 2:
        return 1.0
    distinct = len(set(samples))
    if distinct <= 1:
        return float("inf")
    repeats = sum(1 for a, b in zip(samples, samples[1:]) if a == b)
    observed_rate = repeats / (n - 1)
    baseline = 1.0 / distinct
    return observed_rate / baseline


__all__ = [
    "ChiSquareResult",
    "frequency_table",
    "chi_square_uniformity",
    "chi_square_sf",
    "max_absolute_deviation",
    "serial_independence_statistic",
]
