"""Expected sampling-cost models.

Two models live here:

* the paper's **Theorem 2** draw-count bound for union sampling
  (:func:`expected_sampling_cost`): Theorem 2 bounds the expected number of
  draws Algorithm 1 needs to return ``N`` uniform, independent samples by

      ψ  ≤  Σ_j N_j log N_j   with   N_j = N · |J'_j| / |U|,

  which telescopes to ``N + N log N``;

* a **backend cost model** (:class:`BackendCostModel`,
  :func:`estimate_backend_costs`) that prices the single-join sampler
  backends — exact-weight, extended-Olken accept/reject, and wander join —
  from :class:`~repro.relational.statistics.ColumnStatistics`-derived
  quantities (the Olken bound and its average-degree refinement).  The
  :class:`~repro.aqp.planner.SamplerPlanner` minimizes these costs to pick a
  backend and batch size automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.result import SampleResult
from repro.estimation.parameters import UnionParameters
from repro.joins.join_tree import build_join_tree
from repro.joins.query import JoinQuery
from repro.sampling.olken import olken_refined_bound, olken_upper_bound


@dataclass(frozen=True)
class CostEstimate:
    """Expected-cost decomposition for a target sample size."""

    sample_size: int
    per_join_expected_samples: Dict[str, float]
    per_join_expected_draws: Dict[str, float]
    expected_total_draws: float
    theorem2_bound: float

    @property
    def amplification(self) -> float:
        """Expected draws per returned sample."""
        if self.sample_size == 0:
            return 0.0
        return self.expected_total_draws / self.sample_size


def expected_sampling_cost(parameters: UnionParameters, sample_size: int) -> CostEstimate:
    """Evaluate the Theorem-2 cost model for ``sample_size`` target samples."""
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    probabilities = parameters.selection_probabilities(use_cover=True)
    per_join_samples: Dict[str, float] = {}
    per_join_draws: Dict[str, float] = {}
    total = 0.0
    for name in parameters.join_order:
        expected_samples = sample_size * probabilities[name]
        per_join_samples[name] = expected_samples
        # Coupon-collector style term N_j log N_j (0 for N_j <= 1).
        draws = expected_samples * math.log(expected_samples) if expected_samples > 1 else expected_samples
        per_join_draws[name] = draws
        total += draws
    bound = sample_size + sample_size * math.log(sample_size) if sample_size > 1 else float(sample_size)
    return CostEstimate(
        sample_size=sample_size,
        per_join_expected_samples=per_join_samples,
        per_join_expected_draws=per_join_draws,
        expected_total_draws=total,
        theorem2_bound=bound,
    )


def observed_cost(result: SampleResult) -> Dict[str, float]:
    """Observed cost counters of a finished sampler run, in Theorem-2 terms."""
    accepted = max(len(result), 1)
    return {
        "samples": float(len(result)),
        "iterations": float(result.stats.iterations),
        "draws": float(result.stats.total_draws),
        "draws_per_sample": result.stats.total_draws / accepted,
        "iterations_per_sample": result.stats.iterations / accepted,
    }


# --------------------------------------------------------------------- backends
@dataclass(frozen=True)
class BackendCostModel:
    """Unit costs of the single-join sampler backends.

    The constants are calibrated against the **columnar block pipeline**
    (``BENCH_pipeline.json`` / ``BENCH_batch_engine.json``): alias-table
    draws put a batched accept/reject attempt and a wander-join walk both in
    the few-hundred-nanosecond range, so the decision is dominated by the
    setup terms (the EW weight build plus per-level alias/plan construction
    vs. the EO statistics pass vs. wander's zero setup) and by the per-sample
    inflation factors (rejection rate, walk failure rate, HT design effect).
    They only need to be *relatively* right: the planner compares backends
    against each other, it never predicts absolute wall-clock.
    """

    #: one batched accept/reject attempt (alias root draw + per-level descent)
    attempt_seconds: float = 3.5e-7
    #: one batched wander-join walk (uniform alias hops)
    walk_seconds: float = 3.0e-7
    #: EW sampler setup per base-relation row: bottom-up segment-sum weight
    #: build plus level-plan and per-segment alias-table construction
    weight_build_seconds_per_row: float = 1.2e-6
    #: EO sampler setup per row: ColumnStatistics / max-degree passes
    stats_seconds_per_row: float = 4.0e-7
    #: residual-condition survival prior for cyclic skeletons (unknown a
    #: priori; only used to keep cyclic costs comparable across backends)
    cyclic_survival_prior: float = 0.25
    #: variance-inflation prior of the non-uniform wander-join HT estimator
    #: vs. uniform samples.  Walk weights are heavy-tailed on skewed joins
    #: (a walk's HT weight is the product of the degrees along its path), so
    #: the inflation grows as the error target tightens — measured ~3x at
    #: rel_error=0.05 and >10x at 0.01 on the TPC-H bench workloads.  The
    #: prior sits at the pessimistic end: wander join's niche is cheap
    #: setup (huge databases, small sample budgets), and mispricing it
    #: cheap on tight-error aggregation is the expensive mistake.
    ht_design_effect: float = 10.0


DEFAULT_COST_MODEL = BackendCostModel()


def acceptance_ratio(query: JoinQuery) -> float:
    """Estimated accept/reject acceptance rate under extended-Olken weights.

    The true rate is ``|J| / W_eo``; the planner proxies ``|J|`` with the
    average-degree refinement of the Olken bound (§5.1), i.e. the ratio of
    average to maximum degrees along the join tree.  Clamped to ``(0, 1]``.
    """
    bound = olken_upper_bound(query)
    if bound <= 0:
        return 1.0  # empty join: every backend is instantly "done"
    refined = olken_refined_bound(query)
    return min(max(refined / bound, 1e-9), 1.0)


def walk_success_ratio(query: JoinQuery) -> float:
    """Estimated probability that one wander-join walk completes.

    Per join edge, the fraction of parent rows with at least one joinable
    child row (one vectorized CSR slot lookup over the delta-maintained
    indexes — the structures the samplers build anyway); the walk succeeds
    when every hop finds a child, so the per-edge fractions multiply.  This
    deliberately ignores *which* parent the walk is at (hops are uniform,
    dangling rows are what kill walks in practice), which keeps the estimate
    O(rows) while tracking the measured success rate closely on the TPC-H
    workloads.  Clamped to ``[1e-9, 1]``.
    """
    tree = build_join_tree(query)
    pairs = []

    def collect(node, parent):
        pairs.append((node, parent))
        for child in node.children:
            collect(child, node)

    collect(tree.root, None)
    product = 1.0
    for node, parent in pairs:
        if parent is None:
            continue
        parent_rel = query.relation(parent.relation)
        if len(parent_rel) == 0:
            return 1e-9
        child_rel = query.relation(node.relation)
        csr = child_rel.sorted_index_on_columns(node.child_attributes)
        slots = csr.slots_for(parent_rel.join_key_array(node.parent_attributes))
        joinable = slots >= 0
        if bool(joinable.any()):
            degrees = np.diff(csr.offsets)
            alive = np.zeros(len(slots), dtype=bool)
            alive[joinable] = degrees[slots[joinable]] > 0
            fraction = float(alive.mean())
        else:
            fraction = 0.0
        product *= max(fraction, 1e-9)
    return min(max(product, 1e-9), 1.0)


def estimate_backend_costs(
    query: JoinQuery,
    sample_size: int,
    model: Optional[BackendCostModel] = None,
    acceptance: Optional[float] = None,
    walk_success: Optional[float] = None,
    backends: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Expected seconds for each single-join backend to produce ``sample_size``
    accepted samples (wander join: walks of equivalent estimator value).

    ``acceptance``/``walk_success`` accept precomputed ratios so a planner
    that already derived them does not pay the statistics passes twice, and
    ``backends`` restricts which entries are priced at all — the statistics
    behind an entry are only computed when that entry is requested (planning
    itself must stay cheap relative to the sampling it prices; pricing a
    backend the capability matrix already excluded would be pure waste).

    * ``exact-weight`` pays the O(rows) weight/plan/alias build, then accepts
      every attempt (up to residual survival on cyclic skeletons);
    * ``olken`` pays a cheaper statistics pass but accepts only
      ``acceptance_ratio`` of its attempts;
    * ``wander-join`` has zero setup; walks complete at
      :func:`walk_success_ratio` (a dangling-row model — much higher than the
      accept/reject acceptance ratio), but the surviving walks are
      *non-uniform*, so the model charges the ``ht_design_effect`` prior: a
      skewed join needs proportionally more walks for the same estimator
      variance.
    """
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    model = model or DEFAULT_COST_MODEL
    wanted = set(backends) if backends is not None else {"exact-weight", "olken", "wander-join"}
    rows = sum(len(r) for r in query.relations.values())
    survival = model.cyclic_survival_prior if query.is_cyclic else 1.0
    n = float(sample_size)
    costs: Dict[str, float] = {}
    if "exact-weight" in wanted:
        costs["exact-weight"] = (
            rows * model.weight_build_seconds_per_row + n / survival * model.attempt_seconds
        )
    if "olken" in wanted:
        if acceptance is None:
            acceptance = acceptance_ratio(query)
        costs["olken"] = (
            rows * model.stats_seconds_per_row
            + n / (acceptance * survival) * model.attempt_seconds
        )
    if "wander-join" in wanted:
        if walk_success is None:
            walk_success = walk_success_ratio(query)
        costs["wander-join"] = (
            n * model.ht_design_effect / (walk_success * survival) * model.walk_seconds
        )
    return costs


__all__ = [
    "CostEstimate",
    "expected_sampling_cost",
    "observed_cost",
    "BackendCostModel",
    "DEFAULT_COST_MODEL",
    "acceptance_ratio",
    "walk_success_ratio",
    "estimate_backend_costs",
]
