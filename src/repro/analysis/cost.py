"""Expected sampling-cost model (Theorem 2 of the paper).

Theorem 2 bounds the expected number of draws Algorithm 1 needs to return
``N`` uniform, independent samples by

    ψ  ≤  Σ_j N_j log N_j   with   N_j = N · |J'_j| / |U|,

which telescopes to ``N + N log N``.  These helpers evaluate both forms from a
set of :class:`~repro.estimation.parameters.UnionParameters` so experiments
and tests can compare the observed draw counts of a sampler run against the
analytical bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.result import SampleResult
from repro.estimation.parameters import UnionParameters


@dataclass(frozen=True)
class CostEstimate:
    """Expected-cost decomposition for a target sample size."""

    sample_size: int
    per_join_expected_samples: Dict[str, float]
    per_join_expected_draws: Dict[str, float]
    expected_total_draws: float
    theorem2_bound: float

    @property
    def amplification(self) -> float:
        """Expected draws per returned sample."""
        if self.sample_size == 0:
            return 0.0
        return self.expected_total_draws / self.sample_size


def expected_sampling_cost(parameters: UnionParameters, sample_size: int) -> CostEstimate:
    """Evaluate the Theorem-2 cost model for ``sample_size`` target samples."""
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    probabilities = parameters.selection_probabilities(use_cover=True)
    per_join_samples: Dict[str, float] = {}
    per_join_draws: Dict[str, float] = {}
    total = 0.0
    for name in parameters.join_order:
        expected_samples = sample_size * probabilities[name]
        per_join_samples[name] = expected_samples
        # Coupon-collector style term N_j log N_j (0 for N_j <= 1).
        draws = expected_samples * math.log(expected_samples) if expected_samples > 1 else expected_samples
        per_join_draws[name] = draws
        total += draws
    bound = sample_size + sample_size * math.log(sample_size) if sample_size > 1 else float(sample_size)
    return CostEstimate(
        sample_size=sample_size,
        per_join_expected_samples=per_join_samples,
        per_join_expected_draws=per_join_draws,
        expected_total_draws=total,
        theorem2_bound=bound,
    )


def observed_cost(result: SampleResult) -> Dict[str, float]:
    """Observed cost counters of a finished sampler run, in Theorem-2 terms."""
    accepted = max(len(result), 1)
    return {
        "samples": float(len(result)),
        "iterations": float(result.stats.iterations),
        "draws": float(result.stats.total_draws),
        "draws_per_sample": result.stats.total_draws / accepted,
        "iterations_per_sample": result.stats.iterations / accepted,
    }


__all__ = ["CostEstimate", "expected_sampling_cost", "observed_cost"]
