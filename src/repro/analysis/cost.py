"""Expected sampling-cost models.

Two models live here:

* the paper's **Theorem 2** draw-count bound for union sampling
  (:func:`expected_sampling_cost`): Theorem 2 bounds the expected number of
  draws Algorithm 1 needs to return ``N`` uniform, independent samples by

      ψ  ≤  Σ_j N_j log N_j   with   N_j = N · |J'_j| / |U|,

  which telescopes to ``N + N log N``;

* a **backend cost model** (:class:`BackendCostModel`,
  :func:`estimate_backend_costs`) that prices the single-join sampler
  backends — exact-weight, extended-Olken accept/reject, and wander join —
  from :class:`~repro.relational.statistics.ColumnStatistics`-derived
  quantities (the Olken bound and its average-degree refinement).  The
  :class:`~repro.aqp.planner.SamplerPlanner` minimizes these costs to pick a
  backend and batch size automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.result import SampleResult
from repro.estimation.parameters import UnionParameters
from repro.joins.query import JoinQuery
from repro.sampling.olken import olken_refined_bound, olken_upper_bound


@dataclass(frozen=True)
class CostEstimate:
    """Expected-cost decomposition for a target sample size."""

    sample_size: int
    per_join_expected_samples: Dict[str, float]
    per_join_expected_draws: Dict[str, float]
    expected_total_draws: float
    theorem2_bound: float

    @property
    def amplification(self) -> float:
        """Expected draws per returned sample."""
        if self.sample_size == 0:
            return 0.0
        return self.expected_total_draws / self.sample_size


def expected_sampling_cost(parameters: UnionParameters, sample_size: int) -> CostEstimate:
    """Evaluate the Theorem-2 cost model for ``sample_size`` target samples."""
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    probabilities = parameters.selection_probabilities(use_cover=True)
    per_join_samples: Dict[str, float] = {}
    per_join_draws: Dict[str, float] = {}
    total = 0.0
    for name in parameters.join_order:
        expected_samples = sample_size * probabilities[name]
        per_join_samples[name] = expected_samples
        # Coupon-collector style term N_j log N_j (0 for N_j <= 1).
        draws = expected_samples * math.log(expected_samples) if expected_samples > 1 else expected_samples
        per_join_draws[name] = draws
        total += draws
    bound = sample_size + sample_size * math.log(sample_size) if sample_size > 1 else float(sample_size)
    return CostEstimate(
        sample_size=sample_size,
        per_join_expected_samples=per_join_samples,
        per_join_expected_draws=per_join_draws,
        expected_total_draws=total,
        theorem2_bound=bound,
    )


def observed_cost(result: SampleResult) -> Dict[str, float]:
    """Observed cost counters of a finished sampler run, in Theorem-2 terms."""
    accepted = max(len(result), 1)
    return {
        "samples": float(len(result)),
        "iterations": float(result.stats.iterations),
        "draws": float(result.stats.total_draws),
        "draws_per_sample": result.stats.total_draws / accepted,
        "iterations_per_sample": result.stats.iterations / accepted,
    }


# --------------------------------------------------------------------- backends
@dataclass(frozen=True)
class BackendCostModel:
    """Unit costs of the single-join sampler backends.

    The constants are calibrated against ``BENCH_batch_engine.json`` (batched
    accept/reject draws and wander-join walks both run at a few hundred
    thousand per second; the bottom-up EW weight build processes on the order
    of ten million rows per second).  They only need to be *relatively* right:
    the planner compares backends against each other, it never predicts
    absolute wall-clock.
    """

    #: one batched accept/reject attempt (root draw + per-level descent)
    attempt_seconds: float = 3.0e-6
    #: one batched wander-join walk
    walk_seconds: float = 3.0e-6
    #: EW weight build, per base-relation row (segment sums, bottom-up)
    weight_build_seconds_per_row: float = 1.5e-7
    #: per-edge ColumnStatistics / max-degree lookup for the EO caps
    stats_seconds_per_row: float = 2.0e-8
    #: residual-condition survival prior for cyclic skeletons (unknown a
    #: priori; only used to keep cyclic costs comparable across backends)
    cyclic_survival_prior: float = 0.25


DEFAULT_COST_MODEL = BackendCostModel()


def acceptance_ratio(query: JoinQuery) -> float:
    """Estimated accept/reject acceptance rate under extended-Olken weights.

    The true rate is ``|J| / W_eo``; the planner proxies ``|J|`` with the
    average-degree refinement of the Olken bound (§5.1), i.e. the ratio of
    average to maximum degrees along the join tree.  Clamped to ``(0, 1]``.
    """
    bound = olken_upper_bound(query)
    if bound <= 0:
        return 1.0  # empty join: every backend is instantly "done"
    refined = olken_refined_bound(query)
    return min(max(refined / bound, 1e-9), 1.0)


def estimate_backend_costs(
    query: JoinQuery,
    sample_size: int,
    model: Optional[BackendCostModel] = None,
) -> Dict[str, float]:
    """Expected seconds for each single-join backend to produce ``sample_size``
    accepted samples (wander join: successful walks).

    * ``exact-weight`` pays an O(rows) weight build, then accepts every
      attempt (up to residual survival on cyclic skeletons);
    * ``olken`` has near-zero setup but accepts only ``acceptance_ratio``
      of its attempts;
    * ``wander-join`` has zero setup; walks succeed at roughly the same
      degree ratio, and the surviving walks are *non-uniform*, so the model
      charges the degree-skew design effect a second time (a skewed join
      needs proportionally more walks for the same estimator variance).
    """
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    model = model or DEFAULT_COST_MODEL
    rows = sum(len(r) for r in query.relations.values())
    acceptance = acceptance_ratio(query)
    survival = model.cyclic_survival_prior if query.is_cyclic else 1.0
    n = float(sample_size)
    return {
        "exact-weight": rows * model.weight_build_seconds_per_row
        + n / survival * model.attempt_seconds,
        "olken": rows * model.stats_seconds_per_row
        + n / (acceptance * survival) * model.attempt_seconds,
        "wander-join": n / (acceptance * acceptance * survival) * model.walk_seconds,
    }


__all__ = [
    "CostEstimate",
    "expected_sampling_cost",
    "observed_cost",
    "BackendCostModel",
    "DEFAULT_COST_MODEL",
    "acceptance_ratio",
    "estimate_backend_costs",
]
