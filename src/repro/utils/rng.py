"""Random number generation helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralizes the conversion so that experiments are reproducible while
library users keep a familiar ``seed=`` keyword.

The aliasing contract
---------------------

:func:`ensure_rng` returns a *passed-in generator unchanged*.  That is the
right behaviour for threading one stream through a sequential pipeline, but it
means that handing the **same** ``Generator`` (or the same **integer seed**)
to two sibling components makes them consume the **same stream**: their draws
interleave (shared generator) or repeat verbatim (shared int seed), silently
correlating samplers that the estimator math assumes are independent.

The rules every call site in this library follows — and that user code should
follow too:

* one component, one stream: a component may thread ``self.rng`` through its
  *own* sequential steps, but must never hand ``self.rng`` itself to two
  sub-components that draw independently;
* sub-streams are **derived**, not shared: use :func:`spawn_rngs` (child
  ``Generator`` objects) or :func:`shard_seed_sequences` (picklable
  :class:`numpy.random.SeedSequence` children for parallel workers) so each
  sub-component gets a statistically independent stream from one root seed;
* reproducibility lives at the root: deriving children from an ``int`` seed
  is deterministic, so experiments stay replayable without stream sharing.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

RandomState = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed-like value.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a
        :class:`numpy.random.SeedSequence` (the picklable derived children
        :func:`shard_seed_sequences` hands to parallel shards), or an
        existing generator (returned unchanged so that callers can thread
        one generator through a whole pipeline).

    .. warning::
       Because generators pass through unchanged, giving the *same* generator
       (or the same ``int`` seed) to two components aliases their streams —
       see the module docstring.  Derive independent sub-streams with
       :func:`spawn_rngs` or :func:`shard_seed_sequences` instead.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from one seed.

    Child streams are statistically independent, which keeps parallel
    components (for example one sampler per join in a union) from sharing a
    stream and accidentally correlating their draws.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(count)]


def shard_seed_sequences(seed: RandomState, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent, *picklable* child seeds for parallel shards.

    Unlike :func:`spawn_rngs` (which returns live ``Generator`` objects) this
    returns :class:`numpy.random.SeedSequence` children, which pickle cheaply
    and reproduce the exact same stream in a worker process as they would in
    a thread: ``np.random.default_rng(seq)`` on either side of the process
    boundary yields identical draws.  The children depend only on ``seed``
    and ``count`` — not on how many workers later execute the shards — which
    is what makes parallel runs bit-identical across worker counts.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(count))
    if isinstance(seed, np.random.Generator):
        # Derive one entropy value from the generator's own stream so a
        # threaded root generator still produces independent shard seeds.
        entropy = int(seed.integers(0, 2**63 - 1))
        return list(np.random.SeedSequence(entropy).spawn(count))
    return list(np.random.SeedSequence(seed).spawn(count))


def keyed_rng(seed: int, *key: int) -> np.random.Generator:
    """Deterministic generator for a hierarchical ``(seed, k1, k2, ...)`` key.

    The stream depends only on the root seed and the key — never on call
    order — which is what lets the fault-injection harness and the retry
    backoff jitter stay deterministic no matter which worker, thread, or
    retry attempt asks first.  Keys must be non-negative integers (shard
    ids, attempt counters); the root seed is masked into the non-negative
    range ``SeedSequence`` requires.
    """
    parts = [int(seed) & (2**63 - 1)]
    for k in key:
        k = int(k)
        if k < 0:
            raise ValueError(f"key components must be non-negative, got {k}")
        parts.append(k)
    return np.random.default_rng(np.random.SeedSequence(parts))


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence[object],
    weights: Iterable[float],
) -> object:
    """Pick one element of ``items`` with probability proportional to ``weights``.

    Raises ``ValueError`` when all weights are zero or any weight is negative.
    """
    w = np.asarray(list(weights), dtype=float)
    if len(w) != len(items):
        raise ValueError("items and weights must have the same length")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    idx = rng.choice(len(items), p=w / total)
    return items[int(idx)]


def bernoulli(rng: np.random.Generator, probability: float) -> bool:
    """Return ``True`` with the given probability (clamped to [0, 1])."""
    p = min(max(probability, 0.0), 1.0)
    return bool(rng.random() < p)


class BatchedCategorical:
    """Draws from a fixed categorical distribution in batches.

    The union samplers select one join per iteration from a distribution that
    only changes when parameters are refined; drawing those selections one
    multinomial batch at a time amortizes the per-draw RNG and normalization
    cost.  All-zero (or empty) weights fall back to a uniform choice, matching
    the scalar ``_select_join`` behaviour.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        items: Sequence[object],
        weights: Iterable[float],
        batch_size: int = 256,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._rng = rng
        self._items = list(items)
        if not self._items:
            raise ValueError("at least one item is required")
        w = np.asarray([max(float(x), 0.0) for x in weights], dtype=float)
        if len(w) != len(self._items):
            raise ValueError("items and weights must have the same length")
        total = w.sum()
        self._probabilities = w / total if total > 0 else None
        self._batch_size = batch_size
        self._queue: list[object] = []

    def draw(self) -> object:
        """One item, drawn with probability proportional to its weight."""
        if not self._queue:
            if self._probabilities is None:
                indices = self._rng.integers(0, len(self._items), size=self._batch_size)
            else:
                indices = self._rng.choice(
                    len(self._items), size=self._batch_size, p=self._probabilities
                )
            self._queue = [self._items[int(i)] for i in indices]
            self._queue.reverse()  # pop() consumes in draw order
        return self._queue.pop()


__all__ = [
    "RandomState",
    "ensure_rng",
    "keyed_rng",
    "spawn_rngs",
    "shard_seed_sequences",
    "weighted_choice",
    "bernoulli",
    "BatchedCategorical",
]
