"""Lightweight timers used for the runtime-breakdown experiments (Fig. 5f-h).

The samplers need to attribute wall-clock time to phases (parameter
estimation, accepted answers, rejected answers, reuse phase).  The
:class:`PhaseTimer` accumulates seconds per named phase; :class:`Stopwatch`
is a simple context manager for one measurement.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Measure one elapsed interval.

    Use either as a context manager or with explicit ``start``/``stop``.
    """

    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> "Stopwatch":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulate elapsed seconds per named phase.

    Example
    -------
    >>> timer = PhaseTimer()
    >>> with timer.phase("warmup"):
    ...     pass
    >>> "warmup" in timer.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated total for ``name``."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never recorded)."""
        return self.totals.get(name, 0.0)

    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self.totals.values())

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        """Return a new timer with the phase totals of both timers."""
        merged = PhaseTimer(dict(self.totals))
        for name, seconds in other.totals.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)


__all__ = ["Stopwatch", "PhaseTimer"]
