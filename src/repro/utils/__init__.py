"""Shared utilities: seeded random number generation and phase timers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import PhaseTimer, Stopwatch

__all__ = ["ensure_rng", "spawn_rngs", "PhaseTimer", "Stopwatch"]
