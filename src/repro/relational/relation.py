"""In-memory relations.

A :class:`Relation` is a named, schema-typed bag of rows stored as Python
tuples.  It provides column access, hash indexes on demand (see
:mod:`repro.relational.index`), and cached per-column statistics (see
:mod:`repro.relational.statistics`) — the three capabilities every algorithm
in the paper relies on:

* the join samplers walk hash indexes (`joinable tuples` lookups),
* the histogram-based overlap estimator reads degree statistics,
* the ground-truth executor scans rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.relational.columnar import ColumnStore
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import Attribute, Schema
from repro.relational.statistics import ColumnStatistics

Row = Tuple


class Relation:
    """A named in-memory relation.

    Parameters
    ----------
    name:
        Relation name (unique within a :class:`~repro.joins.query.JoinQuery`).
    schema:
        The relation's :class:`Schema`, or a sequence of attribute names.
    rows:
        Iterable of row tuples; each row must have ``len(schema)`` fields.
    """

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        rows: Iterable[Sequence] = (),
    ) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._rows: list[Row] = []
        self._indexes: Dict[str, HashIndex] = {}
        self._sorted_indexes: Dict[str, SortedIndex] = {}
        self._statistics: Dict[str, ColumnStatistics] = {}
        self._columns: Optional[ColumnStore] = None
        width = len(self.schema)
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row {tup!r} has {len(tup)} fields, schema expects {width}"
                )
            self._rows.append(tup)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_dicts(
        cls,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        records: Iterable[Mapping[str, object]],
    ) -> "Relation":
        """Build a relation from dict-shaped records."""
        schema_obj = schema if isinstance(schema, Schema) else Schema(schema)
        rows = [tuple(rec[a] for a in schema_obj.names) for rec in records]
        return cls(name, schema_obj, rows)

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Sequence],
        dtypes: Optional[Mapping[str, str]] = None,
    ) -> "Relation":
        """Build a relation from a mapping of column name -> values."""
        names = list(columns)
        if not names:
            raise ValueError("at least one column is required")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")
        dtypes = dtypes or {}
        schema = Schema([Attribute(n, dtypes.get(n, "int")) for n in names])
        rows = list(zip(*(columns[n] for n in names))) if lengths != {0} else []
        return cls(name, schema, rows)

    # ----------------------------------------------------------------- basics
    @property
    def rows(self) -> Sequence[Row]:
        return self._rows

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self.schema.names

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, |R|={len(self)}, attrs={list(self.schema.names)})"

    def row(self, index: int) -> Row:
        """Row at position ``index``."""
        return self._rows[index]

    def column(self, name: str) -> list:
        """All values of attribute ``name`` (in row order, duplicates kept)."""
        pos = self.schema.position(name)
        return [r[pos] for r in self._rows]

    def value(self, index: int, attribute: str) -> object:
        """Value of ``attribute`` in the row at ``index``."""
        return self._rows[index][self.schema.position(attribute)]

    def project_row(self, index: int, attributes: Sequence[str]) -> Row:
        """Projection of one row onto ``attributes``."""
        positions = self.schema.positions(attributes)
        row = self._rows[index]
        return tuple(row[p] for p in positions)

    # ------------------------------------------------------------- mutations
    def _invalidate(self) -> None:
        """Drop all caches derived from the row storage."""
        self._indexes.clear()
        self._sorted_indexes.clear()
        self._statistics.clear()
        if self._columns is not None:
            self._columns.invalidate()

    def append(self, row: Sequence) -> None:
        """Append a row.  Invalidates indexes and statistics."""
        tup = tuple(row)
        if len(tup) != len(self.schema):
            raise ValueError(
                f"row {tup!r} has {len(tup)} fields, schema expects {len(self.schema)}"
            )
        self._rows.append(tup)
        self._invalidate()

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Append many rows: validate them all, then invalidate caches once."""
        width = len(self.schema)
        new_rows = []
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row {tup!r} has {len(tup)} fields, schema expects {width}"
                )
            new_rows.append(tup)
        if new_rows:
            self._rows.extend(new_rows)
            self._invalidate()

    # -------------------------------------------------- indexes & statistics
    def index_on(self, attribute: str) -> HashIndex:
        """Hash index on ``attribute``, built lazily and cached."""
        if attribute not in self._indexes:
            pos = self.schema.position(attribute)
            self._indexes[attribute] = HashIndex.build(
                (row[pos] for row in self._rows), attribute
            )
        return self._indexes[attribute]

    def statistics_on(self, attribute: str) -> ColumnStatistics:
        """Column statistics (histogram, max/avg degree) for ``attribute``."""
        if attribute not in self._statistics:
            pos = self.schema.position(attribute)
            self._statistics[attribute] = ColumnStatistics.from_values(
                attribute, (row[pos] for row in self._rows)
            )
        return self._statistics[attribute]

    def index_on_columns(self, attributes: Sequence[str]) -> HashIndex:
        """Hash index keyed by the tuple of values of several attributes.

        Used for composite (multi-attribute) equi-join conditions.  For a
        single attribute this delegates to :meth:`index_on` so that single and
        composite keys share one cache entry per attribute set.
        """
        attrs = tuple(attributes)
        if len(attrs) == 1:
            return self.index_on(attrs[0])
        cache_key = "\x00".join(attrs)
        if cache_key not in self._indexes:
            positions = self.schema.positions(attrs)
            self._indexes[cache_key] = HashIndex.build(
                (tuple(row[p] for p in positions) for row in self._rows), cache_key
            )
        return self._indexes[cache_key]

    def sorted_index_on_columns(self, attributes: Sequence[str]) -> SortedIndex:
        """CSR index keyed by the (possibly composite) attribute tuple.

        Built lazily from the corresponding hash index and cached; used by the
        batched sampling engine for whole-batch joinability lookups.
        """
        attrs = tuple(attributes)
        cache_key = "\x00".join(attrs)
        if cache_key not in self._sorted_indexes:
            self._sorted_indexes[cache_key] = SortedIndex.from_hash_index(
                self.index_on_columns(attrs)
            )
        return self._sorted_indexes[cache_key]

    # --------------------------------------------------------------- columnar
    @property
    def columns(self) -> ColumnStore:
        """Lazy per-attribute column arrays backing the batched engine."""
        if self._columns is None:
            self._columns = ColumnStore(self.schema, self._rows)
        return self._columns

    def column_array(self, attribute: str) -> np.ndarray:
        """Column values of ``attribute`` as a NumPy array (cached)."""
        return self.columns.array(attribute)

    def join_key_array(self, attributes: Sequence[str]) -> np.ndarray:
        """Per-row join-key array over ``attributes`` (cached).

        Single attributes yield the plain column array; composite keys yield
        an object array of tuples, matching :meth:`index_on_columns` keys.
        """
        return self.columns.key_array(attributes)

    def statistics_on_columns(self, attributes: Sequence[str]) -> ColumnStatistics:
        """Column statistics over the composite key formed by ``attributes``."""
        attrs = tuple(attributes)
        if len(attrs) == 1:
            return self.statistics_on(attrs[0])
        cache_key = "\x00".join(attrs)
        if cache_key not in self._statistics:
            positions = self.schema.positions(attrs)
            self._statistics[cache_key] = ColumnStatistics.from_values(
                cache_key,
                (tuple(row[p] for p in positions) for row in self._rows),
            )
        return self._statistics[cache_key]

    def max_degree(self, attribute: str) -> int:
        """Maximum value frequency in ``attribute`` (``M_A(R)`` in the paper)."""
        return self.statistics_on(attribute).max_degree

    def degree(self, attribute: str, value: object) -> int:
        """Frequency of ``value`` in ``attribute`` (``d_A(v, R)`` in the paper)."""
        return self.statistics_on(attribute).degree(value)

    # ------------------------------------------------------------ derivations
    def project(self, attributes: Sequence[str], name: Optional[str] = None) -> "Relation":
        """New relation projected onto ``attributes`` (duplicates preserved)."""
        positions = self.schema.positions(attributes)
        rows = [tuple(r[p] for p in positions) for r in self._rows]
        return Relation(name or f"{self.name}_proj", self.schema.project(attributes), rows)

    def select(self, predicate, name: Optional[str] = None) -> "Relation":
        """New relation containing rows satisfying ``predicate``.

        ``predicate`` is either a callable taking ``(row, schema)`` or an
        object with an ``evaluate(row, schema)`` method (see
        :mod:`repro.relational.predicates`).
        """
        evaluate = getattr(predicate, "evaluate", None)
        if evaluate is None:
            evaluate = predicate
        rows = [r for r in self._rows if evaluate(r, self.schema)]
        return Relation(name or f"{self.name}_sel", self.schema, rows)

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Relation":
        """New relation with attributes renamed according to ``mapping``."""
        return Relation(name or self.name, self.schema.rename(dict(mapping)), self._rows)

    def sample_row(self, rng) -> Row:
        """A uniformly random row (the relation must be non-empty)."""
        if not self._rows:
            raise ValueError(f"relation {self.name!r} is empty")
        return self._rows[int(rng.integers(0, len(self._rows)))]

    def distinct(self, name: Optional[str] = None) -> "Relation":
        """New relation with duplicate rows removed (first occurrence kept)."""
        seen: set[Row] = set()
        rows = []
        for r in self._rows:
            if r not in seen:
                seen.add(r)
                rows.append(r)
        return Relation(name or f"{self.name}_distinct", self.schema, rows)


__all__ = ["Relation", "Row"]
