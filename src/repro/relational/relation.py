"""In-memory relations.

A :class:`Relation` is a named, schema-typed bag of rows stored as Python
tuples.  It provides column access, hash indexes on demand (see
:mod:`repro.relational.index`), and cached per-column statistics (see
:mod:`repro.relational.statistics`) — the three capabilities every algorithm
in the paper relies on:

* the join samplers walk hash indexes (`joinable tuples` lookups),
* the histogram-based overlap estimator reads degree statistics,
* the ground-truth executor scans rows.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.relational.columnar import ColumnStore
from repro.relational.delta import RelationDelta
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import Attribute, Schema
from repro.relational.statistics import ColumnStatistics

Row = Tuple

#: Delta maintenance pays O(Δ · bucket) Python work per cache; once a batch
#: touches more than this fraction of the relation a full rebuild-on-demand is
#: cheaper, so `_commit_delta` falls back to wholesale invalidation.
DELTA_REBUILD_FRACTION = 0.5
#: Small relations always take the delta path (rebuilds are cheap either way,
#: and tests exercise the incremental code on hand-sized data).
DELTA_REBUILD_MIN_ROWS = 64


class Relation:
    """A named in-memory relation.

    Parameters
    ----------
    name:
        Relation name (unique within a :class:`~repro.joins.query.JoinQuery`).
    schema:
        The relation's :class:`Schema`, or a sequence of attribute names.
    rows:
        Iterable of row tuples; each row must have ``len(schema)`` fields.
    """

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        rows: Iterable[Sequence] = (),
    ) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._version = 0
        #: inserted rows whose cache maintenance is deferred: consecutive
        #: appends coalesce into ONE delta, applied on next cache access, so
        #: row-at-a-time ingest stays O(1) per append instead of paying one
        #: array copy per row (see _flush_pending)
        self._pending_inserts: list[Row] = []
        self._rows: list[Row] = []
        self._indexes: Dict[str, HashIndex] = {}
        self._sorted_indexes: Dict[str, SortedIndex] = {}
        self._statistics: Dict[str, ColumnStatistics] = {}
        self._columns: Optional[ColumnStore] = None
        width = len(self.schema)
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row {tup!r} has {len(tup)} fields, schema expects {width}"
                )
            self._rows.append(tup)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_dicts(
        cls,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        records: Iterable[Mapping[str, object]],
    ) -> "Relation":
        """Build a relation from dict-shaped records."""
        schema_obj = schema if isinstance(schema, Schema) else Schema(schema)
        rows = [tuple(rec[a] for a in schema_obj.names) for rec in records]
        return cls(name, schema_obj, rows)

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Sequence],
        dtypes: Optional[Mapping[str, str]] = None,
    ) -> "Relation":
        """Build a relation from a mapping of column name -> values."""
        names = list(columns)
        if not names:
            raise ValueError("at least one column is required")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")
        dtypes = dtypes or {}
        schema = Schema([Attribute(n, dtypes.get(n, "int")) for n in names])
        rows = list(zip(*(columns[n] for n in names))) if lengths != {0} else []
        return cls(name, schema, rows)

    # ----------------------------------------------------------------- basics
    @property
    def rows(self) -> Sequence[Row]:
        return self._rows

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self.schema.names

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, |R|={len(self)}, attrs={list(self.schema.names)})"

    def row(self, index: int) -> Row:
        """Row at position ``index``."""
        return self._rows[index]

    def column(self, name: str) -> list:
        """All values of attribute ``name`` (in row order, duplicates kept)."""
        pos = self.schema.position(name)
        return [r[pos] for r in self._rows]

    def value(self, index: int, attribute: str) -> object:
        """Value of ``attribute`` in the row at ``index``."""
        return self._rows[index][self.schema.position(attribute)]

    def project_row(self, index: int, attributes: Sequence[str]) -> Row:
        """Projection of one row onto ``attributes``."""
        positions = self.schema.positions(attributes)
        row = self._rows[index]
        return tuple(row[p] for p in positions)

    # ------------------------------------------------------------- mutations
    @property
    def version(self) -> int:
        """Monotone epoch counter, bumped once per effective mutation batch.

        Consumers holding state derived from the relation (weight functions,
        sampler plans, buffered draws) compare this counter against the value
        they captured at build time to detect staleness; see
        :meth:`~repro.sampling.join_sampler.JoinSampler.refresh` and
        ``docs/updates.md``.  No-op mutations (empty ``extend``, a delete
        matching nothing, an update assigning identical values) are provably
        cache-preserving and do **not** bump the version.
        """
        return self._version

    def _invalidate(self) -> None:
        """Drop all caches derived from the row storage."""
        # Queued insert patches die with the caches: rebuilds read full rows.
        self._pending_inserts.clear()
        self._indexes.clear()
        self._sorted_indexes.clear()
        self._statistics.clear()
        if self._columns is not None:
            self._columns.invalidate()

    def append(self, row: Sequence) -> None:
        """Append a row; cache maintenance is deferred and coalesced.

        The row lands in row storage (and bumps the version) immediately, but
        the O(Δ)-with-an-array-copy cache patch is queued: consecutive
        appends/extends merge into one delta applied on the next cache
        access, so 'for row in rows: rel.append(row)' costs one patch total.
        """
        tup = tuple(row)
        if len(tup) != len(self.schema):
            raise ValueError(
                f"row {tup!r} has {len(tup)} fields, schema expects {len(self.schema)}"
            )
        self._rows.append(tup)
        self._version += 1
        if self._has_caches():
            self._pending_inserts.append(tup)

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Append many rows: validate them all, then queue one cache patch.

        An empty iterable is a true no-op: caches and the version counter are
        untouched, so downstream consumers provably see no staleness.
        """
        width = len(self.schema)
        new_rows = []
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row {tup!r} has {len(tup)} fields, schema expects {width}"
                )
            new_rows.append(tup)
        if not new_rows:
            return
        self._rows.extend(new_rows)
        self._version += 1
        if self._has_caches():
            self._pending_inserts.extend(new_rows)

    def _has_caches(self) -> bool:
        return bool(
            self._indexes
            or self._sorted_indexes
            or self._statistics
            or self._columns is not None
        )

    def _flush_pending(self) -> None:
        """Apply the coalesced insert delta queued by append/extend."""
        if not self._pending_inserts:
            return
        pending = self._pending_inserts
        self._pending_inserts = []
        start = len(self._rows) - len(pending)
        self._apply_cached_delta(
            RelationDelta(
                old_size=start,
                new_size=len(self._rows),
                inserted=tuple(range(start, len(self._rows))),
            ),
            tuple(pending),
        )

    def delete_rows(self, positions: Iterable[int]) -> int:
        """Delete the rows at the given positions; returns the count removed.

        Deletion uses *swap-remove*: surviving rows from the tail are moved
        into the holes so that row storage stays dense (positions in
        ``[0, len)`` always address live rows — no tombstones).  The relocations
        are reported to every cache through the resulting delta.
        """
        unique = sorted({int(p) for p in positions})
        if not unique:
            return 0
        self._flush_pending()  # positions refer to rows the caches must know
        size = len(self._rows)
        if unique[0] < 0 or unique[-1] >= size:
            raise IndexError(
                f"delete positions out of range for relation {self.name!r} "
                f"(|R|={size}): {unique[0]}..{unique[-1]}"
            )
        count = len(unique)
        new_size = size - count
        deleted = tuple((p, self._rows[p]) for p in unique)
        doomed = set(unique)
        holes = [p for p in unique if p < new_size]
        tail_survivors = [p for p in range(new_size, size) if p not in doomed]
        moved = tuple(zip(tail_survivors, holes))
        for old, new in moved:
            self._rows[new] = self._rows[old]
        del self._rows[new_size:]
        self._commit_delta(
            RelationDelta(
                old_size=size, new_size=new_size, deleted=deleted, moved=moved
            ),
            (),
        )
        return count

    def delete_where(self, predicate) -> int:
        """Delete every row satisfying ``predicate``; returns the count removed.

        ``predicate`` follows the :meth:`select` protocol: a callable taking
        ``(row, schema)`` or an object with an ``evaluate(row, schema)`` method.
        """
        evaluate = getattr(predicate, "evaluate", None) or predicate
        return self.delete_rows(
            p for p, row in enumerate(self._rows) if evaluate(row, self.schema)
        )

    def update_rows(
        self, positions: Iterable[int], assignments: Mapping[str, object]
    ) -> int:
        """Overwrite attributes of the rows at ``positions`` in place.

        ``assignments`` maps attribute name to either a new value or a callable
        ``old_value -> new_value``.  Rows whose values do not actually change
        are skipped, so a no-op update preserves caches and the version
        counter.  Returns the number of rows changed.
        """
        resolved = [
            (self.schema.position(attr), value) for attr, value in assignments.items()
        ]
        self._flush_pending()  # positions refer to rows the caches must know
        size = len(self._rows)
        changed: list[Tuple[int, Row, Row]] = []
        for position in sorted({int(p) for p in positions}):
            if position < 0 or position >= size:
                raise IndexError(
                    f"update position {position} out of range for relation "
                    f"{self.name!r} (|R|={size})"
                )
            old = self._rows[position]
            fields = list(old)
            for field_pos, value in resolved:
                fields[field_pos] = value(old[field_pos]) if callable(value) else value
            new = tuple(fields)
            if new != old:
                changed.append((position, old, new))
        if not changed:
            return 0
        for position, _, new in changed:
            self._rows[position] = new
        self._commit_delta(
            RelationDelta(old_size=size, new_size=size, replaced=tuple(changed)),
            (),
        )
        return len(changed)

    def update(self, predicate, assignments: Mapping[str, object]) -> int:
        """Update every row satisfying ``predicate`` (see :meth:`update_rows`)."""
        evaluate = getattr(predicate, "evaluate", None) or predicate
        return self.update_rows(
            (p for p, row in enumerate(self._rows) if evaluate(row, self.schema)),
            assignments,
        )

    # ------------------------------------------------------ delta maintenance
    def _commit_delta(self, delta: RelationDelta, inserted_rows: Tuple[Row, ...]) -> None:
        """Record one mutation batch and maintain the derived caches."""
        self._version += 1
        if self._has_caches():
            self._apply_cached_delta(delta, inserted_rows)

    def _apply_cached_delta(
        self, delta: RelationDelta, inserted_rows: Tuple[Row, ...]
    ) -> None:
        """Patch every already-built cache with one delta.

        Small batches patch in O(Δ); batches touching more than
        ``DELTA_REBUILD_FRACTION`` of the relation fall back to wholesale
        invalidation (rebuild-on-demand wins there — see docs/updates.md).
        Caches that were never built stay unbuilt.
        """
        threshold = max(
            DELTA_REBUILD_MIN_ROWS,
            int(DELTA_REBUILD_FRACTION * max(delta.old_size, 1)),
        )
        if delta.touched > threshold:
            self._invalidate()
            return
        self._maintain_indexes(delta, inserted_rows)
        self._maintain_statistics(delta, inserted_rows)
        if self._columns is not None:
            self._columns.apply_delta(delta, inserted_rows)

    def _key_projector(self, attrs: Sequence[str]) -> Callable[[Row], object]:
        """Row -> index-key function matching ``index_on_columns`` keys."""
        positions = self.schema.positions(attrs)
        if len(positions) == 1:
            single = positions[0]
            return lambda row: row[single]
        return lambda row: tuple(row[p] for p in positions)

    def _key_changes(
        self,
        cache_key: str,
        delta: RelationDelta,
        inserted_rows: Tuple[Row, ...],
    ) -> Tuple[list, list]:
        """``(removed, added)`` key/position pairs of one delta under the
        projection named by ``cache_key`` (replacements whose key does not
        change are dropped — shared by index, CSR, and statistics upkeep)."""
        keyf = self._key_projector(cache_key.split("\x00"))
        removed = [(keyf(row), pos) for pos, row in delta.deleted]
        added = [(keyf(row), pos) for pos, row in zip(delta.inserted, inserted_rows)]
        for pos, old_row, new_row in delta.replaced:
            old_key, new_key = keyf(old_row), keyf(new_row)
            if old_key != new_key:
                removed.append((old_key, pos))
                added.append((new_key, pos))
        return removed, added

    def _maintain_indexes(
        self, delta: RelationDelta, inserted_rows: Tuple[Row, ...]
    ) -> None:
        for cache_key, index in self._indexes.items():
            keyf = self._key_projector(cache_key.split("\x00"))
            removed, added = self._key_changes(cache_key, delta, inserted_rows)
            moved = [
                (keyf(self._rows[new]), old, new) for old, new in delta.moved
            ]
            index.apply_delta(removed, moved, added)
        for cache_key, csr in self._sorted_indexes.items():
            removed, added = self._key_changes(cache_key, delta, inserted_rows)
            csr.apply_delta(removed, list(delta.moved), added, delta.old_size)

    def _maintain_statistics(
        self, delta: RelationDelta, inserted_rows: Tuple[Row, ...]
    ) -> None:
        for cache_key, stats in self._statistics.items():
            removed, added = self._key_changes(cache_key, delta, inserted_rows)
            stats.apply_delta(
                [key for key, _ in removed], [key for key, _ in added]
            )

    # -------------------------------------------------- indexes & statistics
    def index_on(self, attribute: str) -> HashIndex:
        """Hash index on ``attribute``, built lazily and cached."""
        self._flush_pending()
        if attribute not in self._indexes:
            pos = self.schema.position(attribute)
            self._indexes[attribute] = HashIndex.build(
                (row[pos] for row in self._rows), attribute
            )
        return self._indexes[attribute]

    def statistics_on(self, attribute: str) -> ColumnStatistics:
        """Column statistics (histogram, max/avg degree) for ``attribute``."""
        self._flush_pending()
        if attribute not in self._statistics:
            pos = self.schema.position(attribute)
            self._statistics[attribute] = ColumnStatistics.from_values(
                attribute, (row[pos] for row in self._rows)
            )
        return self._statistics[attribute]

    def index_on_columns(self, attributes: Sequence[str]) -> HashIndex:
        """Hash index keyed by the tuple of values of several attributes.

        Used for composite (multi-attribute) equi-join conditions.  For a
        single attribute this delegates to :meth:`index_on` so that single and
        composite keys share one cache entry per attribute set.
        """
        attrs = tuple(attributes)
        if len(attrs) == 1:
            return self.index_on(attrs[0])
        self._flush_pending()
        cache_key = "\x00".join(attrs)
        if cache_key not in self._indexes:
            positions = self.schema.positions(attrs)
            self._indexes[cache_key] = HashIndex.build(
                (tuple(row[p] for p in positions) for row in self._rows), cache_key
            )
        return self._indexes[cache_key]

    def sorted_index_on_columns(self, attributes: Sequence[str]) -> SortedIndex:
        """CSR index keyed by the (possibly composite) attribute tuple.

        Built lazily from the corresponding hash index and cached; used by the
        batched sampling engine for whole-batch joinability lookups.
        """
        self._flush_pending()
        attrs = tuple(attributes)
        cache_key = "\x00".join(attrs)
        if cache_key not in self._sorted_indexes:
            self._sorted_indexes[cache_key] = SortedIndex.from_hash_index(
                self.index_on_columns(attrs)
            )
        return self._sorted_indexes[cache_key]

    # --------------------------------------------------------------- columnar
    @property
    def columns(self) -> ColumnStore:
        """Lazy per-attribute column arrays backing the batched engine."""
        self._flush_pending()
        if self._columns is None:
            self._columns = ColumnStore(self.schema, self._rows)
        return self._columns

    def column_array(self, attribute: str) -> np.ndarray:
        """Column values of ``attribute`` as a NumPy array (cached)."""
        return self.columns.array(attribute)

    def join_key_array(self, attributes: Sequence[str]) -> np.ndarray:
        """Per-row join-key array over ``attributes`` (cached).

        Single attributes yield the plain column array; composite keys yield
        an object array of tuples, matching :meth:`index_on_columns` keys.
        """
        return self.columns.key_array(attributes)

    def cache_nbytes(self) -> Dict[str, int]:
        """Resident bytes of the array-backed caches (dtype-audit accounting).

        Covers the columnar store and the CSR indexes — the structures the
        batched engine gathers through, and the ones the smallest-safe-dtype
        selection shrinks.  Hash indexes and row tuples are Python objects
        and are not meaningfully measured by array bytes.
        """
        return {
            "columns": self._columns.nbytes if self._columns is not None else 0,
            "csr_indexes": sum(csr.nbytes for csr in self._sorted_indexes.values()),
        }

    def statistics_on_columns(self, attributes: Sequence[str]) -> ColumnStatistics:
        """Column statistics over the composite key formed by ``attributes``."""
        attrs = tuple(attributes)
        if len(attrs) == 1:
            return self.statistics_on(attrs[0])
        self._flush_pending()
        cache_key = "\x00".join(attrs)
        if cache_key not in self._statistics:
            positions = self.schema.positions(attrs)
            self._statistics[cache_key] = ColumnStatistics.from_values(
                cache_key,
                (tuple(row[p] for p in positions) for row in self._rows),
            )
        return self._statistics[cache_key]

    def max_degree(self, attribute: str) -> int:
        """Maximum value frequency in ``attribute`` (``M_A(R)`` in the paper)."""
        return self.statistics_on(attribute).max_degree

    def degree(self, attribute: str, value: object) -> int:
        """Frequency of ``value`` in ``attribute`` (``d_A(v, R)`` in the paper)."""
        return self.statistics_on(attribute).degree(value)

    # ------------------------------------------------------------ derivations
    def project(self, attributes: Sequence[str], name: Optional[str] = None) -> "Relation":
        """New relation projected onto ``attributes`` (duplicates preserved)."""
        positions = self.schema.positions(attributes)
        rows = [tuple(r[p] for p in positions) for r in self._rows]
        return Relation(name or f"{self.name}_proj", self.schema.project(attributes), rows)

    def select(self, predicate, name: Optional[str] = None) -> "Relation":
        """New relation containing rows satisfying ``predicate``.

        ``predicate`` is either a callable taking ``(row, schema)`` or an
        object with an ``evaluate(row, schema)`` method (see
        :mod:`repro.relational.predicates`).
        """
        evaluate = getattr(predicate, "evaluate", None)
        if evaluate is None:
            evaluate = predicate
        rows = [r for r in self._rows if evaluate(r, self.schema)]
        return Relation(name or f"{self.name}_sel", self.schema, rows)

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Relation":
        """New relation with attributes renamed according to ``mapping``."""
        return Relation(name or self.name, self.schema.rename(dict(mapping)), self._rows)

    def sample_row(self, rng) -> Row:
        """A uniformly random row (the relation must be non-empty)."""
        if not self._rows:
            raise ValueError(f"relation {self.name!r} is empty")
        return self._rows[int(rng.integers(0, len(self._rows)))]

    def distinct(self, name: Optional[str] = None) -> "Relation":
        """New relation with duplicate rows removed (first occurrence kept)."""
        seen: set[Row] = set()
        rows = []
        for r in self._rows:
            if r not in seen:
                seen.add(r)
                rows.append(r)
        return Relation(name or f"{self.name}_distinct", self.schema, rows)


__all__ = ["Relation", "Row"]
