"""Columnar backing for relations.

The batched sampling engine operates on whole batches of rows at once, which
needs per-attribute NumPy arrays (gather parent keys, project survivors) next
to the row-major tuples that the scalar code paths keep using.
:class:`ColumnStore` builds those arrays lazily, one attribute at a time, and
also materializes composite join keys as object arrays of tuples so that
multi-attribute equi-joins go through the same batched machinery.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def as_column_array(values: Sequence[object]) -> np.ndarray:
    """1-D array over a column's values, falling back to ``object`` dtype.

    Homogeneous numeric/string columns become typed arrays (fast vectorized
    comparisons); anything NumPy would reshape, reject, or silently coerce
    (tuples, mixed types — ``np.asarray([1, "x"])`` stringifies the int) is
    stored as an object array so row identity is preserved.  Integer columns
    are stored in the smallest safe signed dtype for their value range
    (NumPy's int64 default quadruples resident bytes for typical key
    columns); widening on concatenation is automatic, and replacements that
    no longer fit trigger a rebuild (see :meth:`ColumnStore._patched`).
    """
    if len({type(v) for v in values}) > 1:
        return _object_array(values)
    try:
        array = np.asarray(values)
    except (ValueError, TypeError):
        array = _object_array(values)
    if array.ndim != 1 or array.dtype.kind in ("O", "V"):
        array = _object_array(values)
    return shrink_integer_array(array)


def shrink_integer_array(array: np.ndarray) -> np.ndarray:
    """Downcast a signed integer array to the smallest dtype holding its range.

    int8 is deliberately skipped (the savings on tiny columns are noise);
    non-integer and empty arrays pass through unchanged.
    """
    if array.dtype.kind != "i" or array.size == 0 or array.dtype.itemsize <= 2:
        return array
    lo, hi = int(array.min()), int(array.max())
    for candidate in (np.int16, np.int32):
        info = np.iinfo(candidate)
        if info.min <= lo and hi <= info.max:
            return array.astype(candidate)
    return array


def _object_array(values: Sequence[object]) -> np.ndarray:
    array = np.empty(len(values), dtype=object)
    array[:] = list(values)
    return array


def concat_column_arrays(base: np.ndarray, tail: np.ndarray) -> np.ndarray:
    """Concatenate two column arrays preserving row identity.

    Same-kind arrays concatenate natively (NumPy widens string widths and
    numeric precision as needed); anything else — object arrays or kind
    mismatches such as an int column receiving a string — falls back to one
    object array, matching what :func:`as_column_array` would build from the
    combined values.
    """
    if (
        base.dtype == object
        or tail.dtype == object
        or base.dtype.kind != tail.dtype.kind
    ):
        out = np.empty(len(base) + len(tail), dtype=object)
        out[: len(base)] = base.tolist()
        out[len(base) :] = tail.tolist()
        return out
    return np.concatenate([base, tail])


def tuple_key_array(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Object array of per-row key tuples from several column arrays."""
    if not columns:
        raise ValueError("at least one column is required")
    rows = list(zip(*(column.tolist() for column in columns)))
    array = np.empty(len(rows), dtype=object)
    array[:] = rows
    return array


class ColumnStore:
    """Lazy per-attribute column arrays for one relation.

    The store is invalidated wholesale when the relation mutates; arrays are
    rebuilt from the row tuples on next access.
    """

    __slots__ = ("_schema", "_rows", "_arrays", "_key_arrays")

    def __init__(self, schema, rows: List[Tuple]) -> None:
        self._schema = schema
        self._rows = rows
        self._arrays: Dict[str, np.ndarray] = {}
        self._key_arrays: Dict[Tuple[str, ...], np.ndarray] = {}

    def array(self, attribute: str) -> np.ndarray:
        """Column array of ``attribute`` (row order, duplicates kept)."""
        if attribute not in self._arrays:
            position = self._schema.position(attribute)
            self._arrays[attribute] = as_column_array(
                [row[position] for row in self._rows]
            )
        return self._arrays[attribute]

    def key_array(self, attributes: Sequence[str]) -> np.ndarray:
        """Per-row join-key array for one or several attributes.

        A single attribute returns its column array; composite keys return an
        object array of tuples matching the keys of
        :meth:`~repro.relational.relation.Relation.index_on_columns`.
        """
        attrs = tuple(attributes)
        if len(attrs) == 1:
            return self.array(attrs[0])
        if attrs not in self._key_arrays:
            self._key_arrays[attrs] = tuple_key_array(
                [self.array(a) for a in attrs]
            )
        return self._key_arrays[attrs]

    def gather(self, attribute: str, positions: np.ndarray) -> list:
        """Python-typed values of ``attribute`` at the given row positions."""
        return self.array(attribute)[positions].tolist()

    def invalidate(self) -> None:
        self._arrays.clear()
        self._key_arrays.clear()

    @property
    def nbytes(self) -> int:
        """Resident bytes of the materialized column/key arrays.

        Object arrays report pointer storage only (the boxed values live on
        the heap); typed arrays report their full buffer — the number the
        dtype audit shrinks.
        """
        return int(
            sum(a.nbytes for a in self._arrays.values())
            + sum(a.nbytes for a in self._key_arrays.values())
        )

    # ------------------------------------------------------------- maintenance
    def apply_delta(self, delta, inserted_rows: Sequence[Tuple]) -> None:
        """Patch every cached array in place of a full rebuild.

        Deletions/moves become one vectorized gather + truncation, insertions
        one concatenation, replacements one fancy assignment.  An array whose
        dtype cannot safely hold a replacement value (e.g. a wider string into
        a fixed-width ``<U`` column) is dropped and rebuilt lazily on next
        access — correctness first, incrementality where it is safe.
        """
        for attribute in list(self._arrays):
            position = self._schema.position(attribute)
            patched = self._patched(
                self._arrays[attribute],
                delta,
                lambda row, p=position: row[p],
                inserted_rows,
            )
            if patched is None:
                del self._arrays[attribute]
            else:
                self._arrays[attribute] = patched
        for attrs in list(self._key_arrays):
            positions = self._schema.positions(attrs)
            patched = self._patched(
                self._key_arrays[attrs],
                delta,
                lambda row, ps=positions: tuple(row[p] for p in ps),
                inserted_rows,
            )
            if patched is None:
                del self._key_arrays[attrs]
            else:
                self._key_arrays[attrs] = patched

    def _patched(self, base, delta, project, inserted_rows):
        """One array patched by ``delta``; None when it must be rebuilt."""
        survivors = delta.new_size - len(delta.inserted)
        arr = base
        if delta.deleted or delta.moved:
            arr = base.copy()
            if delta.moved:
                arr[[new for _, new in delta.moved]] = base[
                    [old for old, _ in delta.moved]
                ]
            arr = arr[:survivors]
        replacements = [
            (position, project(new_row))
            for position, old_row, new_row in delta.replaced
            if project(old_row) != project(new_row)
        ]
        if replacements:
            if arr is base:
                arr = base.copy()
            if arr.dtype == object:
                for position, value in replacements:
                    arr[position] = value
            else:
                values = as_column_array([v for _, v in replacements])
                if values.dtype == object or not np.can_cast(
                    values.dtype, arr.dtype, casting="safe"
                ):
                    return None  # dtype cannot hold the new values: rebuild
                arr[[p for p, _ in replacements]] = values
        if delta.inserted:
            tail = as_column_array([project(row) for row in inserted_rows])
            arr = concat_column_arrays(arr, tail)
        return arr


__all__ = [
    "ColumnStore",
    "as_column_array",
    "concat_column_arrays",
    "shrink_integer_array",
    "tuple_key_array",
]
