"""Delta records for incremental relation maintenance.

A :class:`RelationDelta` describes one mutation batch of a
:class:`~repro.relational.relation.Relation` precisely enough for every
derived structure (hash indexes, CSR indexes, column arrays, statistics) to
update itself in O(Δ) instead of rebuilding from scratch:

* ``inserted`` — post-state positions of rows appended by the batch;
* ``deleted`` — ``(pre-state position, row)`` pairs removed by the batch;
* ``moved`` — ``(old position, new position)`` pairs for surviving rows that
  the *swap-remove* deletion scheme relocated to keep the row storage dense
  (no tombstones: every position in ``[0, new_size)`` always holds a live
  row, so position-based samplers keep working unchanged);
* ``replaced`` — ``(position, old row, new row)`` for in-place updates.

Deletion never produces move chains: the surviving rows of the tail segment
``[new_size, old_size)`` are mapped directly onto the holes left in
``[0, new_size)``, so each ``moved`` pair is independent and the whole batch
can be applied with one vectorized remap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

Row = Tuple


@dataclass(frozen=True)
class RelationDelta:
    """One mutation batch applied to a relation (see module docstring)."""

    old_size: int
    new_size: int
    inserted: Tuple[int, ...] = ()
    deleted: Tuple[Tuple[int, Row], ...] = ()
    moved: Tuple[Tuple[int, int], ...] = ()
    replaced: Tuple[Tuple[int, Row, Row], ...] = ()

    @property
    def touched(self) -> int:
        """Number of rows the batch changes (moves excluded: they only
        relocate surviving rows and cost one vectorized remap)."""
        return len(self.inserted) + len(self.deleted) + len(self.replaced)

    @property
    def is_noop(self) -> bool:
        return self.touched == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelationDelta({self.old_size}->{self.new_size}, "
            f"+{len(self.inserted)}, -{len(self.deleted)}, "
            f"~{len(self.replaced)}, moved={len(self.moved)})"
        )


__all__ = ["RelationDelta"]
