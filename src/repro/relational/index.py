"""Hash and CSR indexes over relation columns.

The paper replaces the B-tree indexes assumed by Zhao et al. with hash tables
that record, for every join-attribute value, the positions of the rows holding
that value ("we use hash tables for relations to maintain tuples' joinability
information", §3.2).  :class:`HashIndex` is exactly that structure; it backs

* joinability lookups during join sampling and random walks,
* degree lookups (`d_A(v, R)`) during weight computation,
* membership probes of the random-walk overlap estimator.

:class:`SortedIndex` is the columnar companion used by the batched sampling
engine: the same value -> positions mapping laid out as one contiguous
positions array plus a CSR offsets array, so that "joinable rows for a batch
of parent keys" is a handful of NumPy gathers instead of per-row dict lookups.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


def smallest_index_dtype(max_value: int) -> np.dtype:
    """Smallest signed integer dtype that can hold row indices up to ``max_value``.

    Index arrays (CSR row positions and offsets) default to int64 under
    NumPy, which doubles-to-quadruples resident bytes for the relations this
    engine actually holds in memory.  Signed dtypes are required throughout
    (lookups use -1 sentinels); int8 is skipped — the savings on sub-128-row
    relations are noise while the cast churn is not.
    """
    if max_value <= np.iinfo(np.int16).max:
        return np.dtype(np.int16)
    if max_value <= np.iinfo(np.int32).max:
        return np.dtype(np.int32)
    return np.dtype(np.intp)


class HashIndex:
    """Value -> row-position index for one attribute of a relation."""

    __slots__ = ("attribute", "_buckets", "_max_degree", "_total_rows")

    def __init__(self, attribute: str, buckets: Dict[object, Sequence[int]]) -> None:
        self.attribute = attribute
        # Buckets are stored as tuples so that lookups hand out read-only
        # views: callers cannot corrupt the index by mutating a result.
        self._buckets: Dict[object, Tuple[int, ...]] = {
            value: tuple(positions) for value, positions in buckets.items()
        }
        # None means "recompute on next access" (set when a delta shrinks the
        # bucket that held the maximum).
        self._max_degree: Optional[int] = max(
            (len(v) for v in self._buckets.values()), default=0
        )
        self._total_rows = sum(len(v) for v in self._buckets.values())

    @classmethod
    def build(cls, values: Iterable[object], attribute: str = "") -> "HashIndex":
        """Build an index from the column's values in row order."""
        buckets: Dict[object, List[int]] = defaultdict(list)
        for position, value in enumerate(values):
            buckets[value].append(position)
        return cls(attribute, buckets)

    # ----------------------------------------------------------------- lookups
    def positions(self, value: object) -> Tuple[int, ...]:
        """Row positions whose attribute equals ``value`` (empty if none)."""
        return self._buckets.get(value, ())

    def degree(self, value: object) -> int:
        """Number of rows whose attribute equals ``value``."""
        return len(self._buckets.get(value, ()))

    def __contains__(self, value: object) -> bool:
        return value in self._buckets

    def __len__(self) -> int:
        """Number of distinct values."""
        return len(self._buckets)

    def values(self) -> Iterator[object]:
        """Iterate over the distinct indexed values."""
        return iter(self._buckets)

    def items(self) -> Iterator[Tuple[object, Tuple[int, ...]]]:
        """Iterate over ``(value, positions)`` pairs."""
        return iter(self._buckets.items())

    # ------------------------------------------------------------- maintenance
    def apply_delta(
        self,
        removed: Sequence[Tuple[object, int]],
        moved: Sequence[Tuple[object, int, int]],
        added: Sequence[Tuple[object, int]],
    ) -> None:
        """Apply one mutation batch without rebuilding the whole index.

        ``removed``/``added`` carry ``(key value, row position)`` pairs;
        ``moved`` carries ``(key value, old position, new position)`` for rows
        relocated by the swap-remove deletion scheme.  Only the buckets of
        affected key values are rebuilt — O(Δ · bucket) work — and the cached
        maximum degree is invalidated lazily when the maximal bucket shrinks.
        """
        # key value -> (positions to drop, old -> new remap, positions to add)
        changes: Dict[object, Tuple[set, Dict[int, int], List[int]]] = {}

        def slot(value: object) -> Tuple[set, Dict[int, int], List[int]]:
            entry = changes.get(value)
            if entry is None:
                entry = (set(), {}, [])
                changes[value] = entry
            return entry

        for value, position in removed:
            slot(value)[0].add(position)
        for value, old, new in moved:
            slot(value)[1][old] = new
        for value, position in added:
            slot(value)[2].append(position)

        for value, (drop, remap, add) in changes.items():
            bucket = self._buckets.get(value, ())
            if drop or remap:
                if len(bucket) >= 1024:
                    # Large buckets (low-cardinality columns) take a
                    # vectorized path: the per-element Python loop would cost
                    # milliseconds per bucket, np.isin microseconds.
                    arr = np.fromiter(bucket, dtype=np.intp, count=len(bucket))
                    if drop:
                        arr = arr[
                            ~np.isin(
                                arr,
                                np.fromiter(drop, dtype=np.intp, count=len(drop)),
                            )
                        ]
                    if remap:
                        hits = np.isin(
                            arr,
                            np.fromiter(remap, dtype=np.intp, count=len(remap)),
                        )
                        if hits.any():
                            arr[hits] = np.fromiter(
                                (remap[p] for p in arr[hits].tolist()),
                                dtype=np.intp,
                                count=int(hits.sum()),
                            )
                    kept = arr.tolist()
                else:
                    kept = [remap.get(p, p) for p in bucket if p not in drop]
                if len(kept) != len(bucket) - len(drop):
                    raise KeyError(
                        f"delta removes positions {drop!r} not all present "
                        f"under key {value!r} of index {self.attribute!r}"
                    )
                new_bucket = tuple(kept) + tuple(add)
            else:
                new_bucket = bucket + tuple(add)
            if (
                self._max_degree is not None
                and len(new_bucket) < len(bucket) == self._max_degree
            ):
                self._max_degree = None  # the maximal bucket shrank
            if new_bucket:
                self._buckets[value] = new_bucket
                if self._max_degree is not None:
                    self._max_degree = max(self._max_degree, len(new_bucket))
            else:
                self._buckets.pop(value, None)
        self._total_rows += len(added) - len(removed)

    # -------------------------------------------------------------- statistics
    @property
    def max_degree(self) -> int:
        """Maximum number of rows sharing one value (``M_A(R)``)."""
        if self._max_degree is None:
            self._max_degree = max(
                (len(v) for v in self._buckets.values()), default=0
            )
        return self._max_degree

    @property
    def total_rows(self) -> int:
        """Total number of indexed rows (cached at build time)."""
        return self._total_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashIndex(attribute={self.attribute!r}, distinct={len(self)}, "
            f"max_degree={self.max_degree})"
        )


class SortedIndex:
    """CSR layout of a :class:`HashIndex`: positions grouped by key.

    Attributes
    ----------
    row_positions:
        One contiguous int array holding the row positions of every key,
        grouped key-by-key.
    offsets:
        CSR offsets of length ``n_keys + 1``: the positions of key slot ``i``
        are ``row_positions[offsets[i]:offsets[i + 1]]``.  Every slot is
        non-empty at build time (a key only exists if some row holds it);
        deletions may leave zero-degree slots behind until the next lazy
        compaction, and every consumer treats those as "no joinable rows".

    Key values map to slots either through a vectorized ``searchsorted`` over
    a sorted key array (homogeneous numeric/string keys) or through a plain
    dict (tuples and mixed types).
    """

    __slots__ = (
        "attribute",
        "row_positions",
        "offsets",
        "_slot_of",
        "_sorted_keys",
        "_sorted_slots",
    )

    def __init__(
        self,
        attribute: str,
        keys: Sequence[object],
        row_positions: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.attribute = attribute
        self.row_positions = np.asarray(row_positions)
        self.offsets = np.asarray(offsets)
        self._adopt_arrays(self.row_positions, self.offsets)
        # Invariant: dict insertion order equals slot order (maintained by
        # apply_delta when keys are added or slots are compacted away).
        self._slot_of: Dict[object, int] = {key: i for i, key in enumerate(keys)}
        self._sorted_keys: np.ndarray | None = None
        self._sorted_slots: np.ndarray | None = None
        self._rebuild_sorted_lookup()

    def _adopt_arrays(self, row_positions: np.ndarray, offsets: np.ndarray) -> None:
        """Store the CSR arrays in the smallest safe index dtype, read-only.

        The dtype audit runs on every (re)build and delta: row positions are
        bounded by the relation size, offsets by the total indexed rows, so
        both shrink to int16/int32 whenever they fit — halving (or better)
        the resident bytes the batched engine gathers through.  Lookups hand
        out views of these arrays; keeping them read-only preserves the
        HashIndex invariant that callers cannot corrupt the index.
        """
        bound = int(offsets[-1]) if len(offsets) else 0
        if row_positions.size:
            bound = max(bound, int(row_positions.max()) + 1)
        dtype = smallest_index_dtype(bound)
        self.row_positions = np.asarray(row_positions, dtype=dtype)
        self.offsets = np.asarray(offsets, dtype=dtype)
        self.row_positions.setflags(write=False)
        self.offsets.setflags(write=False)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the CSR arrays (the dtype-audit accounting)."""
        return int(self.row_positions.nbytes + self.offsets.nbytes)

    def _rebuild_sorted_lookup(self) -> None:
        """(Re)build the vectorized key -> slot lookup arrays."""
        keys = list(self._slot_of)
        self._sorted_keys = None
        self._sorted_slots = None
        if keys and len({type(k) for k in keys}) == 1:
            # Mixed-type keys must stay on the dict path: np.asarray would
            # silently stringify them and corrupt the searchsorted lookup.
            try:
                key_array = np.asarray(keys)
            except (ValueError, TypeError):  # pragma: no cover - exotic keys
                key_array = np.empty(0, dtype=object)
            if key_array.ndim == 1 and key_array.dtype != object:
                order = np.argsort(key_array, kind="stable")
                self._sorted_keys = key_array[order]
                self._sorted_slots = np.asarray(order, dtype=np.intp)

    @classmethod
    def from_hash_index(cls, index: HashIndex) -> "SortedIndex":
        """CSR view of an existing hash index (shares no mutable state)."""
        keys: List[object] = []
        degrees: List[int] = []
        chunks: List[Tuple[int, ...]] = []
        for value, positions in index.items():
            keys.append(value)
            degrees.append(len(positions))
            chunks.append(positions)
        offsets = np.zeros(len(keys) + 1, dtype=np.intp)
        if degrees:
            offsets[1:] = np.cumsum(degrees)
        flat = np.fromiter(
            (p for chunk in chunks for p in chunk), dtype=np.intp, count=int(offsets[-1])
        )
        return cls(index.attribute, keys, flat, offsets)

    # ------------------------------------------------------------------- slots
    @property
    def n_keys(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_rows(self) -> int:
        return int(self.offsets[-1]) if len(self.offsets) else 0

    def slot(self, value: object) -> int:
        """Slot id of ``value`` (-1 when absent)."""
        return self._slot_of.get(value, -1)

    def slots_for(self, values: Sequence[object] | np.ndarray) -> np.ndarray:
        """Slot ids for a batch of key values (-1 where absent).

        Homogeneous non-object key columns resolve through one vectorized
        ``searchsorted``; tuple/mixed keys fall back to dict lookups in a
        single ``fromiter`` pass.
        """
        if self._sorted_keys is not None and isinstance(values, np.ndarray):
            if values.dtype != object and values.ndim == 1:
                n = len(self._sorted_keys)
                idx = np.searchsorted(self._sorted_keys, values)
                idx_clipped = np.minimum(idx, n - 1)
                found = self._sorted_keys[idx_clipped] == values
                slots = np.where(found, self._sorted_slots[idx_clipped], -1)
                return np.asarray(slots, dtype=np.intp)
        get = self._slot_of.get
        return np.fromiter(
            (get(v, -1) for v in values), dtype=np.intp, count=len(values)
        )

    # ----------------------------------------------------------------- lookups
    def positions(self, value: object) -> np.ndarray:
        """Row positions for one key value (empty array when absent)."""
        slot = self.slot(value)
        if slot < 0:
            return self.row_positions[:0]
        return self.row_positions[self.offsets[slot] : self.offsets[slot + 1]]

    def degree(self, value: object) -> int:
        slot = self.slot(value)
        if slot < 0:
            return 0
        return int(self.offsets[slot + 1] - self.offsets[slot])

    def degrees(self) -> np.ndarray:
        """Per-slot degrees (length ``n_keys``)."""
        return np.diff(self.offsets)

    def __contains__(self, value: object) -> bool:
        return value in self._slot_of

    def __len__(self) -> int:
        return self.n_keys

    # ------------------------------------------------------------- maintenance
    def apply_delta(
        self,
        removed: Sequence[Tuple[object, int]],
        moved: Sequence[Tuple[int, int]],
        added: Sequence[Tuple[object, int]],
        old_row_count: int,
    ) -> None:
        """Apply one mutation batch to the CSR layout.

        ``removed``/``added`` carry ``(key value, row position)`` pairs
        (pre-state positions for removals, post-state for additions);
        ``moved`` carries ``(old position, new position)`` remaps from the
        swap-remove deletion scheme.  Python-level work is O(Δ + affected
        segment sizes); array surgery is a handful of vectorized
        ``np.delete``/``np.insert``/gather calls.  Slots whose segment empties
        survive as zero-degree slots until enough of them accumulate to be
        worth one O(n_keys) compaction pass.  Fresh arrays are produced rather
        than mutated, so previously handed-out views stay internally
        consistent.
        """
        # Writable scratch copies, widened to intp for the surgery (inserted
        # positions may exceed the current shrunk dtype's range); the final
        # _adopt_arrays picks the smallest dtype that fits the new state.
        row_positions = np.array(self.row_positions, dtype=np.intp)
        offsets = np.array(self.offsets, dtype=np.intp)
        n_keys = len(offsets) - 1

        if removed:
            by_slot: Dict[int, List[int]] = {}
            for key, position in removed:
                slot = self._slot_of.get(key, -1)
                if slot < 0:
                    raise KeyError(
                        f"delta removes key {key!r} absent from CSR index "
                        f"{self.attribute!r}"
                    )
                by_slot.setdefault(slot, []).append(position)
            del_counts = np.zeros(n_keys, dtype=np.intp)
            entry_chunks: List[np.ndarray] = []
            for slot, positions in by_slot.items():
                start, end = int(offsets[slot]), int(offsets[slot + 1])
                segment = row_positions[start:end]
                if len(positions) == 1:
                    hits = np.nonzero(segment == positions[0])[0]
                else:
                    hits = np.nonzero(np.isin(segment, positions))[0]
                if hits.size != len(positions):
                    raise KeyError(
                        f"delta removes positions {positions!r} not all "
                        f"indexed under slot {slot} of CSR index "
                        f"{self.attribute!r}"
                    )
                entry_chunks.append(start + hits)
                del_counts[slot] = hits.size
            row_positions = np.delete(row_positions, np.concatenate(entry_chunks))
            offsets[1:] -= np.cumsum(del_counts)

        if moved and row_positions.size:
            remap = np.arange(old_row_count, dtype=np.intp)
            remap[[old for old, _ in moved]] = [new for _, new in moved]
            row_positions = remap[row_positions]

        new_key_added = False
        if added:
            ins_counts = np.zeros(n_keys, dtype=np.intp)
            ins_ops: List[Tuple[int, int, int]] = []
            pending_new: Dict[object, List[int]] = {}
            for key, position in added:
                slot = self._slot_of.get(key, -1)
                if slot >= 0:
                    ins_ops.append((int(offsets[slot + 1]), slot, position))
                    ins_counts[slot] += 1
                else:
                    pending_new.setdefault(key, []).append(position)
            if ins_ops:
                # Distinct slots can share one insertion index when empty
                # slots sit between them; ordering by (index, slot) keeps each
                # value inside its own slot's segment.
                ins_ops.sort(key=lambda op: (op[0], op[1]))
                row_positions = np.insert(
                    row_positions,
                    [op[0] for op in ins_ops],
                    [op[2] for op in ins_ops],
                )
                offsets[1:] += np.cumsum(ins_counts)
            if pending_new:
                new_key_added = True
                chunks: List[int] = []
                tail_offsets: List[int] = []
                total = int(offsets[-1])
                for key, positions in pending_new.items():
                    self._slot_of[key] = n_keys + len(tail_offsets)
                    total += len(positions)
                    tail_offsets.append(total)
                    chunks.extend(positions)
                row_positions = np.concatenate(
                    [row_positions, np.asarray(chunks, dtype=np.intp)]
                )
                offsets = np.concatenate(
                    [offsets, np.asarray(tail_offsets, dtype=np.intp)]
                )

        # Lazy compaction: emptied slots are tolerated (every consumer treats
        # a zero-degree slot as "no joinable rows") and reclaimed wholesale
        # only once they pile up — compaction costs O(n_keys) for the slot
        # dict, so paying it per emptied key would thrash under delete-heavy
        # streams of unique keys.
        degrees = np.diff(offsets)
        empty_slots = int((degrees == 0).sum())
        compacted = empty_slots > max(16, len(degrees) // 4)
        if compacted:
            keep = degrees > 0
            offsets = np.concatenate(
                [np.zeros(1, dtype=np.intp), np.cumsum(degrees[keep])]
            )
            # row_positions is already correct: empty segments hold no entries.
            self._slot_of = {
                key: i
                for i, key in enumerate(
                    key for key, alive in zip(self._slot_of, keep) if alive
                )
            }

        self._adopt_arrays(row_positions, offsets)
        if compacted or new_key_added:
            self._rebuild_sorted_lookup()

    # ------------------------------------------------------------ aggregation
    def segment_sums(self, row_values: np.ndarray) -> np.ndarray:
        """Per-key sums of ``row_values`` (indexed by row position).

        Equivalent to ``[row_values[positions].sum() for each key]`` but
        computed with one gather and one ``np.add.reduceat``.  Slots emptied
        by deletions (and not yet compacted) sum to exactly 0.
        """
        if self.n_keys == 0:
            return np.zeros(0, dtype=float)
        gathered = np.asarray(row_values, dtype=float)[self.row_positions]
        starts = self.offsets[:-1]
        nonempty = self.offsets[1:] > starts
        if bool(nonempty.all()):
            return np.add.reduceat(gathered, starts)
        # reduceat misreads zero-length segments, so run it over the
        # non-empty starts only (their segments stay contiguous: empty slots
        # contribute no elements) and scatter back around zero-filled slots.
        sums = np.zeros(self.n_keys, dtype=float)
        if bool(nonempty.any()):
            sums[nonempty] = np.add.reduceat(gathered, starts[nonempty])
        return sums

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortedIndex(attribute={self.attribute!r}, keys={self.n_keys}, "
            f"rows={self.total_rows})"
        )


__all__ = ["HashIndex", "SortedIndex"]
