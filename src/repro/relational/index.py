"""Hash indexes over relation columns.

The paper replaces the B-tree indexes assumed by Zhao et al. with hash tables
that record, for every join-attribute value, the positions of the rows holding
that value ("we use hash tables for relations to maintain tuples' joinability
information", §3.2).  :class:`HashIndex` is exactly that structure; it backs

* joinability lookups during join sampling and random walks,
* degree lookups (`d_A(v, R)`) during weight computation,
* membership probes of the random-walk overlap estimator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Tuple


class HashIndex:
    """Value -> row-position index for one attribute of a relation."""

    __slots__ = ("attribute", "_buckets", "_max_degree")

    def __init__(self, attribute: str, buckets: Dict[object, List[int]]) -> None:
        self.attribute = attribute
        self._buckets = buckets
        self._max_degree = max((len(v) for v in buckets.values()), default=0)

    @classmethod
    def build(cls, values: Iterable[object], attribute: str = "") -> "HashIndex":
        """Build an index from the column's values in row order."""
        buckets: Dict[object, List[int]] = defaultdict(list)
        for position, value in enumerate(values):
            buckets[value].append(position)
        return cls(attribute, dict(buckets))

    # ----------------------------------------------------------------- lookups
    def positions(self, value: object) -> List[int]:
        """Row positions whose attribute equals ``value`` (empty list if none)."""
        return self._buckets.get(value, [])

    def degree(self, value: object) -> int:
        """Number of rows whose attribute equals ``value``."""
        return len(self._buckets.get(value, ()))

    def __contains__(self, value: object) -> bool:
        return value in self._buckets

    def __len__(self) -> int:
        """Number of distinct values."""
        return len(self._buckets)

    def values(self) -> Iterator[object]:
        """Iterate over the distinct indexed values."""
        return iter(self._buckets)

    def items(self) -> Iterator[Tuple[object, List[int]]]:
        """Iterate over ``(value, positions)`` pairs."""
        return iter(self._buckets.items())

    # -------------------------------------------------------------- statistics
    @property
    def max_degree(self) -> int:
        """Maximum number of rows sharing one value (``M_A(R)``)."""
        return self._max_degree

    @property
    def total_rows(self) -> int:
        """Total number of indexed rows."""
        return sum(len(v) for v in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashIndex(attribute={self.attribute!r}, distinct={len(self)}, "
            f"max_degree={self.max_degree})"
        )


__all__ = ["HashIndex"]
